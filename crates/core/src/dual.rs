//! The structured dual QP of Eq. (16), solved without materializing the
//! feature map.
//!
//! The paper reformulates the multi-hyperplane primal through the feature
//! map Φ of Eq. (7): `Φ(x_it)` has a copy of `x_it/√(T/λ)` in a shared
//! block and another copy in user `t`'s private block, and
//! `w' = (√(T/λ)·w0, w_1−w0, …, w_T−w0)` (Eq. 8). This file exploits the
//! block structure instead of building those `(T+1)·d`-dimensional vectors:
//! for aggregated constraints `z_kt` living in user blocks,
//!
//! ```text
//! ⟨z_kt, z_k′t′⟩ = (λ/T + [t = t′]) · ⟨s_kt, s_k′t′⟩
//! ```
//!
//! with `s_kt ∈ R^d` from Eq. (17). The dual variables `γ_kt ≥ 0` satisfy
//! one capped-sum constraint per user, `Σ_k γ_kt ≤ T/2λ`, and the KKT
//! stationarity condition recovers the primal as `w0 = (λ/T)·Σ γ·s` and
//! `v_t = Σ_{k∈Ω_t} γ_kt·s_kt`.

use crate::error::CoreError;
use crate::problem::{slack_for, Constraint};
use plos_ckpt::{CkptError, DualEntry, DualState};
use plos_linalg::{Matrix, Vector};
use plos_opt::{GroupedQp, QpSolverOptions};

/// Incremental solver for the Eq. (16) dual over growing working sets.
///
/// Constraints are appended as the cutting-plane loop discovers them; the
/// Gram matrix of `⟨s_i, s_j⟩` inner products is cached so each new
/// constraint costs one row of dot products.
#[derive(Debug, Clone)]
pub struct DualSolver {
    lambda: f64,
    t_count: usize,
    dim: usize,
    /// `(owning user, constraint)` in insertion order.
    entries: Vec<(usize, Constraint)>,
    /// Whether the matching entry is a *hard* constraint (no slack, no cap):
    /// used for the class-balance constraints.
    hard: Vec<bool>,
    /// Cached `⟨s_i, s_j⟩` for `j <= i` (lower triangle, row-indexed).
    dots: Vec<Vec<f64>>,
    /// Warm-start point carried across solves.
    warm: Vector,
}

/// Primal variables recovered from a dual solve.
#[derive(Debug, Clone)]
pub struct DualSolution {
    /// Global hyperplane `w0`.
    pub w0: Vector,
    /// Personal biases `v_t`.
    pub vs: Vec<Vector>,
    /// Per-user slacks `ξ_t` implied by the working sets.
    pub xis: Vec<f64>,
    /// Dual objective value of Eq. (16) (in the Eq.-9 scale).
    pub dual_objective: f64,
}

impl DualSolver {
    /// Creates an empty solver for `t_count` users in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda <= 0`, `t_count == 0`, or `dim == 0`.
    pub fn new(lambda: f64, t_count: usize, dim: usize) -> Self {
        assert!(lambda > 0.0, "lambda must be positive");
        assert!(t_count > 0, "need at least one user");
        assert!(dim > 0, "dimension must be positive");
        DualSolver {
            lambda,
            t_count,
            dim,
            entries: Vec::new(),
            hard: Vec::new(),
            dots: Vec::new(),
            warm: Vector::zeros(0),
        }
    }

    /// Number of constraints accumulated so far.
    pub fn num_constraints(&self) -> usize {
        self.entries.len()
    }

    /// Appends one cutting-plane constraint owned by user `t` (soft: shares
    /// the user's slack `ξ_t` and counts toward the dual cap).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or the constraint has the wrong
    /// dimension.
    pub fn add_constraint(&mut self, t: usize, k: Constraint) {
        self.push_entry(t, k, false);
    }

    /// Appends one *hard* constraint for user `t` — no slack and an
    /// unbounded (non-negative) dual multiplier. Used for the class-balance
    /// constraints `±x̄·w_t ≥ −ℓ`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or the constraint has the wrong
    /// dimension.
    pub fn add_hard_constraint(&mut self, t: usize, k: Constraint) {
        self.push_entry(t, k, true);
    }

    fn push_entry(&mut self, t: usize, k: Constraint, hard: bool) {
        assert!(t < self.t_count, "user index out of range");
        assert_eq!(k.s.len(), self.dim, "constraint dimension mismatch");
        // The O(n·d) Gram row of the new constraint against every existing
        // one is computed in parallel blocks; block results are concatenated
        // in submission order, so the row is identical at any pool size.
        let pool = plos_exec::Pool::current();
        let mut row: Vec<f64> = pool.par_chunks(&self.entries, 64, |_start, chunk| {
            chunk.iter().map(|(_, existing)| existing.s.dot(&k.s)).collect()
        });
        row.push(k.s.norm_squared());
        self.dots.push(row);
        self.entries.push((t, k));
        self.hard.push(hard);
        // Extend the warm start with a zero for the new variable.
        let mut warm = std::mem::take(&mut self.warm).into_inner();
        warm.resize(self.entries.len(), 0.0);
        self.warm = Vector::from(warm);
    }

    /// Solves the dual over the current working sets and recovers the primal
    /// variables. With no constraints the solution is the trivial
    /// `w0 = 0, v = 0, ξ = 0`.
    ///
    /// # Errors
    ///
    /// Propagates QP construction and solver failures (non-finite inputs,
    /// shape mismatches) as [`CoreError::Opt`].
    // Allowed: `entries`, `hard` and the lower-triangular Gram cache `dots`
    // grow in lock step in `push_entry` (row `i` has length `i + 1`), and
    // `vs` is sized `t_count` with every owner index checked against
    // `t_count` on insertion, so all indices below are in bounds by
    // construction.
    #[allow(clippy::indexing_slicing)]
    pub fn solve(&mut self, opts: &QpSolverOptions) -> Result<DualSolution, CoreError> {
        let n = self.entries.len();
        if n == 0 {
            return Ok(DualSolution {
                w0: Vector::zeros(self.dim),
                vs: vec![Vector::zeros(self.dim); self.t_count],
                xis: vec![0.0; self.t_count],
                dual_objective: 0.0,
            });
        }
        let coupling = self.lambda / self.t_count as f64;
        let mut q = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let same_user = self.entries[i].0 == self.entries[j].0;
                let base = self.dots[i][j];
                let value = (coupling + if same_user { 1.0 } else { 0.0 }) * base;
                q[(i, j)] = value;
                q[(j, i)] = value;
            }
        }
        let b: Vector = self.entries.iter().map(|(_, k)| k.c).collect();
        // One capped-sum group per user: Σ_k γ_kt ≤ T/2λ.
        let cap = self.t_count as f64 / (2.0 * self.lambda);
        let groups: Vec<(Vec<usize>, f64)> = (0..self.t_count)
            .map(|t| {
                let members: Vec<usize> = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(i, (owner, _))| *owner == t && !self.hard[*i])
                    .map(|(i, _)| i)
                    .collect();
                (members, cap)
            })
            .filter(|(members, _)| !members.is_empty())
            .collect();
        let qp = GroupedQp::new(q, b, groups)?;
        let sol = qp.solve_warm(self.warm.clone(), opts)?;
        self.warm = sol.gamma.clone();

        // KKT recovery: w0 = (λ/T) Σ γ s, v_t = Σ_{k∈Ω_t} γ s.
        let mut w0 = Vector::zeros(self.dim);
        let mut vs = vec![Vector::zeros(self.dim); self.t_count];
        for (gamma_i, (t, k)) in sol.gamma.iter().zip(&self.entries) {
            if *gamma_i != 0.0 {
                w0.axpy(coupling * gamma_i, &k.s);
                vs[*t].axpy(*gamma_i, &k.s);
            }
        }
        let xis: Vec<f64> = (0..self.t_count)
            .map(|t| {
                let w_t = &w0 + &vs[t];
                // Hard constraints carry no slack.
                let mine: Vec<Constraint> = self
                    .entries
                    .iter()
                    .enumerate()
                    .filter(|(i, (owner, _))| *owner == t && !self.hard[*i])
                    .map(|(_, (_, k))| k.clone())
                    .collect();
                slack_for(&mine, &w_t)
            })
            .collect();
        Ok(DualSolution { w0, vs, xis, dual_objective: -sol.objective })
    }

    /// Exports the working set and warm start for checkpointing. The Gram
    /// cache is *not* exported — [`DualSolver::from_state`] recomputes it
    /// deterministically, keeping checkpoints small and the digest honest.
    pub fn export_state(&self, fingerprint: u64) -> DualState {
        DualState {
            fingerprint,
            lambda: self.lambda,
            t_count: self.t_count,
            dim: self.dim,
            entries: self
                .entries
                .iter()
                .zip(&self.hard)
                .map(|((owner, k), hard)| DualEntry {
                    owner: *owner,
                    s: k.s.clone(),
                    c: k.c,
                    hard: *hard,
                })
                .collect(),
            warm: self.warm.as_slice().to_vec(),
        }
    }

    /// Rebuilds a solver from a checkpointed state. The Gram cache is
    /// recomputed through the same `push_entry` path as the original run,
    /// so a subsequent [`DualSolver::solve`] is bit-identical to one on the
    /// uninterrupted solver.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ckpt`] when the state is internally inconsistent
    /// (bad scalars, out-of-range owner, wrong constraint dimension,
    /// mismatched warm-start length).
    pub fn from_state(state: DualState) -> Result<DualSolver, CoreError> {
        if !(state.lambda > 0.0 && state.lambda.is_finite()) {
            return Err(CkptError::Malformed { detail: "dual lambda out of range".into() }.into());
        }
        if state.t_count == 0 || state.dim == 0 {
            return Err(CkptError::Malformed { detail: "dual t_count/dim zero".into() }.into());
        }
        if state.warm.len() != state.entries.len() {
            return Err(CkptError::Malformed {
                detail: "dual warm-start length disagrees with working set".into(),
            }
            .into());
        }
        let mut solver = DualSolver::new(state.lambda, state.t_count, state.dim);
        for entry in state.entries {
            if entry.owner >= state.t_count {
                return Err(
                    CkptError::Malformed { detail: "dual owner out of range".into() }.into()
                );
            }
            if entry.s.len() != state.dim {
                return Err(CkptError::Malformed {
                    detail: "dual constraint dimension mismatch".into(),
                }
                .into());
            }
            solver.push_entry(entry.owner, Constraint { s: entry.s, c: entry.c }, entry.hard);
        }
        solver.warm = Vector::from(state.warm);
        Ok(solver)
    }

    /// The PLOS primal objective in the scale of problem (4):
    /// `‖w0‖² + (λ/T)Σ‖v_t‖² + Σξ_t`.
    pub fn primal_objective(&self, sol: &DualSolution) -> f64 {
        let coupling = self.lambda / self.t_count as f64;
        sol.w0.norm_squared()
            + coupling * sol.vs.iter().map(Vector::norm_squared).sum::<f64>()
            + sol.xis.iter().sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> QpSolverOptions {
        QpSolverOptions::default()
    }

    #[test]
    fn empty_solver_returns_trivial_solution() {
        let mut solver = DualSolver::new(1.0, 3, 2);
        let sol = solver.solve(&opts()).unwrap();
        assert_eq!(sol.w0, Vector::zeros(2));
        assert_eq!(sol.vs.len(), 3);
        assert_eq!(sol.xis, vec![0.0; 3]);
        assert_eq!(sol.dual_objective, 0.0);
    }

    #[test]
    fn single_constraint_single_user_matches_hand_solution() {
        // T = 1, λ = 1: coupling = 1, cap = 0.5.
        // One constraint s = (1, 0), c = 1.
        // Q = (1 + 1)·1 = 2, b = 1 ⇒ unconstrained γ* = 0.5, exactly at cap.
        let mut solver = DualSolver::new(1.0, 1, 2);
        solver.add_constraint(0, Constraint { s: Vector::from(vec![1.0, 0.0]), c: 1.0 });
        let sol = solver.solve(&opts()).unwrap();
        // w0 = coupling·γ·s = 0.5·(1,0)·1 = (0.5, 0); v0 = γ·s = (0.5, 0).
        assert!((sol.w0[0] - 0.5).abs() < 1e-6);
        assert!((sol.vs[0][0] - 0.5).abs() < 1e-6);
        // w_t = (1, 0): slack = c − s·w = 0.
        assert!(sol.xis[0].abs() < 1e-6);
    }

    #[test]
    fn strong_duality_holds_on_random_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        for trial in 0..10 {
            let t_count = rng.gen_range(1..4);
            let dim = rng.gen_range(1..4);
            let lambda = rng.gen_range(0.5..4.0);
            let mut solver = DualSolver::new(lambda, t_count, dim);
            for t in 0..t_count {
                for _ in 0..rng.gen_range(1..4) {
                    let s: Vector = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    let c = rng.gen_range(0.0..1.5);
                    solver.add_constraint(t, Constraint { s, c });
                }
            }
            let sol = solver.solve(&opts()).unwrap();
            // In the Eq.-9 scale, primal = ½‖w′‖² + (T/2λ)Σξ and equals the
            // dual optimum at the exact solution. Our primal_objective is
            // (2λ/T)× that scale.
            let primal_scaled = solver.primal_objective(&sol) * t_count as f64 / (2.0 * lambda);
            assert!(
                (primal_scaled - sol.dual_objective).abs() < 1e-4,
                "trial {trial}: primal {primal_scaled} vs dual {}",
                sol.dual_objective
            );
        }
    }

    #[test]
    fn large_lambda_shrinks_personal_biases() {
        // Same constraint for two users; large λ forces w_t ≈ w0.
        let k = Constraint { s: Vector::from(vec![1.0]), c: 1.0 };
        let solve_with = |lambda: f64| {
            let mut solver = DualSolver::new(lambda, 2, 1);
            solver.add_constraint(0, k.clone());
            solver.add_constraint(1, k.clone());
            solver.solve(&opts()).unwrap()
        };
        let tight = solve_with(1000.0);
        let loose = solve_with(0.01);
        let bias_norm = |sol: &DualSolution| {
            sol.vs.iter().map(Vector::norm).sum::<f64>() / sol.w0.norm().max(1e-12)
        };
        assert!(bias_norm(&tight) < 0.01, "tight {}", bias_norm(&tight));
        assert!(bias_norm(&loose) > bias_norm(&tight));
    }

    #[test]
    fn gram_cache_matches_naive_reconstruction() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut solver = DualSolver::new(2.0, 2, 3);
        let mut constraints = Vec::new();
        for i in 0..5 {
            let s: Vector = (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let k = Constraint { s, c: 0.5 };
            constraints.push(k.clone());
            solver.add_constraint(i % 2, k);
        }
        for i in 0..5 {
            for j in 0..=i {
                assert!(
                    (solver.dots[i][j] - constraints[i].s.dot(&constraints[j].s)).abs() < 1e-12
                );
            }
        }
    }

    #[test]
    fn warm_start_grows_with_constraints() {
        let mut solver = DualSolver::new(1.0, 1, 1);
        solver.add_constraint(0, Constraint { s: Vector::from(vec![1.0]), c: 1.0 });
        let _ = solver.solve(&opts()).unwrap();
        solver.add_constraint(0, Constraint { s: Vector::from(vec![0.5]), c: 0.2 });
        let sol = solver.solve(&opts()).unwrap();
        assert_eq!(solver.num_constraints(), 2);
        assert!(sol.w0.is_finite());
    }

    #[test]
    fn export_import_round_trip_preserves_solve_bit_for_bit() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let mut original = DualSolver::new(2.5, 3, 4);
        for t in 0..3 {
            for _ in 0..3 {
                let s: Vector = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
                original.add_constraint(t, Constraint { s, c: rng.gen_range(0.0..1.0) });
            }
        }
        // A solve populates the warm start that the checkpoint must carry.
        let _ = original.solve(&opts()).unwrap();

        let state = original.export_state(0xfeed);
        assert_eq!(state.fingerprint, 0xfeed);
        let mut restored = DualSolver::from_state(state).unwrap();
        assert_eq!(restored.num_constraints(), original.num_constraints());

        let a = original.solve(&opts()).unwrap();
        let b = restored.solve(&opts()).unwrap();
        let bits = |v: &Vector| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.w0), bits(&b.w0));
        for (va, vb) in a.vs.iter().zip(&b.vs) {
            assert_eq!(bits(va), bits(vb));
        }
        assert_eq!(a.dual_objective.to_bits(), b.dual_objective.to_bits());
    }

    #[test]
    fn inconsistent_dual_states_rejected() {
        let base = DualSolver::new(1.0, 2, 2);
        let good = base.export_state(0);
        assert!(DualSolver::from_state(good.clone()).is_ok());

        let mut bad_owner = good.clone();
        bad_owner.entries.push(plos_ckpt::DualEntry {
            owner: 9,
            s: Vector::zeros(2),
            c: 0.0,
            hard: false,
        });
        bad_owner.warm.push(0.0);
        assert!(matches!(DualSolver::from_state(bad_owner), Err(CoreError::Ckpt(_))));

        let mut bad_dim = good.clone();
        bad_dim.entries.push(plos_ckpt::DualEntry {
            owner: 0,
            s: Vector::zeros(5),
            c: 0.0,
            hard: false,
        });
        bad_dim.warm.push(0.0);
        assert!(matches!(DualSolver::from_state(bad_dim), Err(CoreError::Ckpt(_))));

        let mut bad_warm = good.clone();
        bad_warm.warm.push(1.0);
        assert!(matches!(DualSolver::from_state(bad_warm), Err(CoreError::Ckpt(_))));

        let mut bad_lambda = good;
        bad_lambda.lambda = f64::NAN;
        assert!(matches!(DualSolver::from_state(bad_lambda), Err(CoreError::Ckpt(_))));
    }

    #[test]
    #[should_panic(expected = "user index out of range")]
    fn bad_user_index_rejected() {
        let mut solver = DualSolver::new(1.0, 1, 1);
        solver.add_constraint(5, Constraint { s: Vector::from(vec![1.0]), c: 1.0 });
    }

    #[test]
    #[should_panic(expected = "constraint dimension mismatch")]
    fn bad_dimension_rejected() {
        let mut solver = DualSolver::new(1.0, 1, 2);
        solver.add_constraint(0, Constraint { s: Vector::from(vec![1.0]), c: 1.0 });
    }
}
