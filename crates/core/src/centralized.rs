//! Centralized PLOS — Algorithm 1.
//!
//! The trainer alternates two nested loops exactly as the paper describes:
//!
//! 1. **CCCP** (outer): fix the sign pattern `sign(w_t⁽ᵏ⁾·x)` of every
//!    unlabeled sample, turning problem (9) into the convex problem (11);
//!    stop when the true objective `L` stabilizes (step 7).
//! 2. **Cutting plane** (inner): grow per-user working sets `Ω_t` with the
//!    most violated constraints (Eq. 14) and re-solve the dual QP (Eq. 16)
//!    until no constraint is violated by more than `ε` (steps 4–6).
//!
//! The dual is solved by [`DualSolver`], which exploits the feature-map
//! block structure; the global SVM used to initialize `w'⁽⁰⁾` comes from
//! `plos-ml`.

use crate::checkpoint::{self, CheckpointPolicy};
use crate::config::PlosConfig;
use crate::dual::DualSolver;
use crate::error::CoreError;
use crate::model::PersonalizedModel;
use crate::problem::{self, Prepared};
use crate::wire_u32;
use plos_ckpt::{CentralizedPhase, CentralizedState, CkptError, KIND_CENTRALIZED};
use plos_linalg::Vector;
use plos_ml::svm::{LinearSvm, SvmParams};
use plos_opt::{Cccp, History};
use plos_sensing::dataset::MultiUserDataset;
use rand::{Rng, SeedableRng};

/// The centralized trainer.
#[derive(Debug, Clone)]
pub struct CentralizedPlos {
    config: PlosConfig,
    ckpt: Option<CheckpointPolicy>,
}

/// Detailed training output: the model plus convergence diagnostics.
#[derive(Debug, Clone)]
pub struct CentralizedFit {
    /// The trained model.
    pub model: PersonalizedModel,
    /// True objective `L` after each CCCP round.
    pub history: History,
    /// CCCP rounds performed.
    pub cccp_rounds: usize,
    /// Cutting-plane rounds summed over all CCCP rounds.
    pub cutting_rounds: usize,
    /// Constraints accumulated over all CCCP rounds.
    pub constraints_added: usize,
    /// Whether the CCCP objective converged before the round cap.
    pub converged: bool,
}

/// State carried between CCCP rounds.
#[derive(Clone)]
struct CccpState {
    w0: Vector,
    vs: Vec<Vector>,
    signs: Vec<Vec<f64>>,
}

/// Where a checkpointed run re-enters `fit_detailed`.
enum ResumePoint {
    /// No (usable) checkpoint: run from the top.
    Fresh,
    /// Continue the CCCP outer loop from a mid-run snapshot.
    MidCccp(Box<CentralizedState>),
    /// CCCP finished; continue refinement from a mid-run snapshot.
    MidRefine(Box<CentralizedState>, u32),
}

/// Shape check on a restored snapshot: the fingerprint already binds the
/// cohort and dimension, so a mismatch here means a buggy writer, but the
/// trainer still refuses to index out of bounds on corrupt input.
fn validate_restored(st: &CentralizedState, t_count: usize, dim: usize) -> Result<(), CoreError> {
    if st.vectors.len() != t_count
        || st.w0.len() != dim
        || st.vectors.iter().any(|v| v.len() != dim)
    {
        return Err(CkptError::Malformed {
            detail: format!(
                "centralized checkpoint shape disagrees with the dataset \
                 ({} vectors, dim {}; expected {t_count} of dim {dim})",
                st.vectors.len(),
                st.w0.len()
            ),
        }
        .into());
    }
    Ok(())
}

impl CentralizedPlos {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PlosConfig) -> Self {
        config.validate();
        CentralizedPlos { config, ckpt: None }
    }

    /// Returns a copy that checkpoints after every CCCP and refinement
    /// round under `policy`, and resumes from an existing snapshot with
    /// bit-parity. Without this (or the `PLOS_CKPT_DIR` environment
    /// variable) the trainer never touches the filesystem.
    #[must_use]
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> Self {
        self.ckpt = Some(policy);
        self
    }

    /// Trains on a masked multi-user dataset, returning the personalized
    /// model.
    ///
    /// # Errors
    ///
    /// Propagates QP and SVM failures from [`Self::fit_detailed`].
    pub fn fit(&self, dataset: &MultiUserDataset) -> Result<PersonalizedModel, CoreError> {
        Ok(self.fit_detailed(dataset)?.model)
    }

    /// Trains and returns convergence diagnostics alongside the model.
    ///
    /// # Errors
    ///
    /// Propagates failures of the dual QP solves, the refinement CCCP runs,
    /// and the SVM initialization as [`CoreError`].
    // Allowed: every per-user buffer indexed below (`vs`, `xis`, `signs`,
    // `w_ts`) is created with length `t_count` and `t` ranges over
    // `prepared.users` of that same length, so the indices are in bounds by
    // construction.
    #[allow(clippy::indexing_slicing)]
    pub fn fit_detailed(&self, dataset: &MultiUserDataset) -> Result<CentralizedFit, CoreError> {
        let _span = plos_obs::Span::enter("centralized_fit");
        let prepared = problem::prepare(dataset, self.config.bias);
        let t_count = prepared.users.len();
        let dim = prepared.dim;
        // Per-user work below (constraint search, sign refresh, refinement)
        // fans out on the fork-join pool; results come back in user order,
        // so training output is bit-identical at any pool size.
        let pool = plos_exec::Pool::current();

        // Checkpoint policy: explicit builder setting first, `PLOS_CKPT_DIR`
        // fallback. A valid snapshot resumes the run; a damaged one is a
        // typed error, never a silent fresh start.
        let policy = self.ckpt.clone().or_else(CheckpointPolicy::from_env);
        let fingerprint = checkpoint::run_fingerprint(KIND_CENTRALIZED, t_count, dim, &self.config);
        let mut session = policy.as_ref().map(|p| p.session("centralized"));
        let resume = match &session {
            Some(sess) => match sess.load()? {
                Some(file) => {
                    let st = CentralizedState::decode(&file)?;
                    checkpoint::check_fingerprint(st.fingerprint, fingerprint)?;
                    validate_restored(&st, t_count, dim)?;
                    plos_obs::emit(
                        "checkpoint_resume",
                        &[
                            ("kind", "centralized".into()),
                            ("cccp_rounds", u64::from(st.cccp_rounds).into()),
                        ],
                    );
                    match st.phase {
                        CentralizedPhase::Cccp => ResumePoint::MidCccp(Box::new(st)),
                        CentralizedPhase::Refine { rounds_done } => {
                            ResumePoint::MidRefine(Box::new(st), rounds_done)
                        }
                    }
                }
                None => ResumePoint::Fresh,
            },
            None => ResumePoint::Fresh,
        };

        let mut cutting_rounds = 0usize;
        let mut constraints_added = 0usize;

        let cccp = Cccp { tol: self.config.cccp_tol, max_rounds: self.config.max_cccp_rounds };
        let (mut w0, mut w_ts, mut history, cccp_round_count, cccp_converged, refine_start) =
            match resume {
                ResumePoint::MidRefine(st, rounds_done) => {
                    // CCCP already finished when the snapshot was taken; its
                    // `vectors` hold the per-user hyperplanes mid-refinement.
                    let st = *st;
                    cutting_rounds = st.cutting_rounds as usize;
                    constraints_added = st.constraints_added as usize;
                    (
                        st.w0,
                        st.vectors,
                        History::from_values(st.history),
                        st.cccp_rounds as usize,
                        st.cccp_converged,
                        rounds_done as usize,
                    )
                }
                other => {
                    let (init, prior) = match other {
                        ResumePoint::MidCccp(st) => {
                            let st = *st;
                            cutting_rounds = st.cutting_rounds as usize;
                            constraints_added = st.constraints_added as usize;
                            // Signs are not checkpointed: re-derive the
                            // linearization point exactly as the round closure
                            // does at the end of every CCCP round.
                            let signs: Vec<Vec<f64>> = pool.par_map(&prepared.users, |t, u| {
                                problem::compute_signs(u, &(&st.w0 + &st.vectors[t]))
                            });
                            (
                                CccpState { w0: st.w0, vs: st.vectors, signs },
                                History::from_values(st.history),
                            )
                        }
                        _ => {
                            // Initialization of w'(0): a global SVM over all
                            // observed labels gives the sign pattern CCCP
                            // linearizes around first.
                            let w0_init = self.initial_hyperplane(&prepared)?;
                            let init_signs: Vec<Vec<f64>> = pool
                                .par_map(&prepared.users, |_t, u| {
                                    problem::compute_signs(u, &w0_init)
                                });
                            (
                                CccpState {
                                    w0: w0_init,
                                    vs: vec![Vector::zeros(dim); t_count],
                                    signs: init_signs,
                                },
                                History::new(),
                            )
                        }
                    };
                    let result = self.run_cccp_loop(
                        &cccp,
                        init,
                        prior,
                        &prepared,
                        fingerprint,
                        &mut session,
                        &mut cutting_rounds,
                        &mut constraints_added,
                    )?;
                    let w0 = result.state.w0;
                    let w_ts: Vec<Vector> = result.state.vs.iter().map(|v| &w0 + v).collect();
                    let rounds = result.history.len();
                    (w0, w_ts, result.history, rounds, result.converged, 0usize)
                }
            };
        // Refinement: block-coordinate descent on the true objective with
        // multi-start per-user CCCP. Each user step exactly minimizes its
        // block `(λ/T)‖w_t − w0‖² + loss_t(w_t)` over the candidate local
        // optima; the w0 step is the closed-form minimizer of
        // `‖w0‖² + (λ/T)Σ‖w_t − w0‖²`, so the objective never increases.
        // A resumed run re-enters at `refine_start`; seeds depend only on
        // the absolute round index, so the replayed rounds are identical.
        let mu = 2.0 * self.config.lambda / t_count as f64;
        for round in refine_start..self.config.refine_rounds {
            // Within a round every user's block step depends only on the
            // round-start `w0` and its own `w_t`, so the per-user CCCP runs
            // are independent; per-user seeds are derived from (round, t)
            // exactly as in the sequential schedule.
            let updates = pool.par_map_indexed(&prepared.users, |t, user| {
                let base_signs = problem::compute_signs(user, &w_ts[t]);
                let seed = self.config.seed.wrapping_add(
                    0x5851_f42d_4c95_7f2d_u64.wrapping_mul((round * t_count + t + 1) as u64),
                );
                let sol = crate::prox::prox_cccp_multistart(
                    user,
                    &w0,
                    mu,
                    base_signs,
                    seed,
                    &self.config,
                )?;
                // Keep the incumbent when no candidate beats it — this is
                // what makes the refinement pass monotone.
                let incumbent = crate::prox::prox_objective(user, &w0, mu, &w_ts[t], &self.config);
                Ok::<Option<Vector>, CoreError>((sol.objective < incumbent).then_some(sol.w))
            })?;
            for (w_t, update) in w_ts.iter_mut().zip(updates) {
                if let Some(w) = update {
                    *w_t = w;
                }
            }
            // Closed-form w0 block update.
            let mut mean = Vector::zeros(dim);
            for w_t in &w_ts {
                mean += w_t;
            }
            mean.scale_mut(1.0 / t_count as f64);
            w0 = mean.scaled(self.config.lambda / (1.0 + self.config.lambda));
            let vs: Vec<Vector> = w_ts.iter().map(|w_t| w_t - &w0).collect();
            let objective = problem::objective(&prepared, &w0, &vs, &self.config);
            history.push(objective);
            plos_obs::emit(
                "refine_round",
                &[("round", (round + 1).into()), ("objective", objective.into())],
            );
            if let Some(sess) = session.as_mut() {
                let snapshot = CentralizedState {
                    fingerprint,
                    phase: CentralizedPhase::Refine { rounds_done: wire_u32(round + 1) },
                    w0: w0.clone(),
                    vectors: w_ts.clone(),
                    history: history.values().to_vec(),
                    cccp_rounds: wire_u32(cccp_round_count),
                    cccp_converged,
                    cutting_rounds: cutting_rounds as u64,
                    constraints_added: constraints_added as u64,
                };
                sess.save(&snapshot.encode())?;
            }
        }
        let vs: Vec<Vector> = w_ts.iter().map(|w_t| w_t - &w0).collect();

        let model = PersonalizedModel::new(w0, vs, self.config.bias);
        // The run completed: drop the snapshot so the next run starts fresh.
        if let Some(sess) = &session {
            sess.clear()?;
        }
        Ok(CentralizedFit {
            model,
            cccp_rounds: cccp_round_count,
            history,
            cutting_rounds,
            constraints_added,
            converged: cccp_converged,
        })
    }

    /// The CCCP outer loop with per-round checkpointing. `prior` carries the
    /// objective history of rounds a previous (interrupted) process already
    /// completed; with an empty prior this is the uninterrupted path.
    // Allowed: per-user buffers are indexed by `t` over `prepared.users`,
    // all sized `t_count` by construction (see `fit_detailed`).
    #[allow(clippy::indexing_slicing, clippy::too_many_arguments)]
    fn run_cccp_loop(
        &self,
        cccp: &Cccp,
        init: CccpState,
        prior: History,
        prepared: &Prepared,
        fingerprint: u64,
        session: &mut Option<crate::checkpoint::CkptSession>,
        cutting_rounds: &mut usize,
        constraints_added: &mut usize,
    ) -> Result<plos_opt::CccpResult<CccpState>, CoreError> {
        let t_count = prepared.users.len();
        let dim = prepared.dim;
        let pool = plos_exec::Pool::current();
        // The CCCP driver's closure cannot propagate errors; park the first
        // failure here and report a flat objective so the driver stops at
        // its convergence check, then surface the error after the run.
        let mut solve_err: Option<CoreError> = None;
        let mut saved_history: Vec<f64> = prior.values().to_vec();
        let result = cccp.run_with_history(init, prior, |state| {
            if solve_err.is_some() {
                return (state.clone(), 0.0);
            }
            // Fresh working sets: constraints depend on the sign pattern.
            // The hard class-balance constraints are installed first — they
            // rule out the degenerate all-on-one-side margin solutions.
            let mut solver = DualSolver::new(self.config.lambda, t_count, dim);
            for (t, user) in prepared.users.iter().enumerate() {
                for k in problem::balance_constraints(user, self.config.balance) {
                    solver.add_hard_constraint(t, k);
                }
            }
            let mut solution = match solver.solve(&self.config.qp) {
                Ok(s) => s,
                Err(e) => {
                    solve_err = Some(e);
                    return (state.clone(), 0.0);
                }
            };
            for round in 0..self.config.max_cutting_rounds {
                *cutting_rounds += 1;
                let mut any_added = false;
                let mut max_violation = 0.0_f64;
                // Per-user most-violated-constraint search (Eq. 14) is
                // independent given the current iterate — fan it out, then
                // install the findings in user order.
                let searched = pool.par_map(&prepared.users, |t, user| {
                    let w_t = &solution.w0 + &solution.vs[t];
                    problem::most_violated_constraint(
                        user,
                        &state.signs[t],
                        &w_t,
                        solution.xis[t],
                        &self.config,
                    )
                });
                for (t, (constraint, violation)) in searched.into_iter().enumerate() {
                    max_violation = max_violation.max(violation);
                    if violation > self.config.eps {
                        solver.add_constraint(t, constraint);
                        *constraints_added += 1;
                        any_added = true;
                    }
                }
                plos_obs::emit(
                    "cutting_round",
                    &[
                        ("round", (round + 1).into()),
                        ("working_set", solver.num_constraints().into()),
                        ("max_violation", max_violation.into()),
                    ],
                );
                if !any_added {
                    break;
                }
                solution = match solver.solve(&self.config.qp) {
                    Ok(s) => s,
                    Err(e) => {
                        solve_err = Some(e);
                        return (state.clone(), 0.0);
                    }
                };
            }

            // Refresh the linearization point and report the true objective.
            let new_signs: Vec<Vec<f64>> = pool.par_map(&prepared.users, |t, u| {
                problem::compute_signs(u, &(&solution.w0 + &solution.vs[t]))
            });
            let objective = problem::objective(prepared, &solution.w0, &solution.vs, &self.config);
            saved_history.push(objective);
            if let Some(sess) = session.as_mut() {
                let snapshot = CentralizedState {
                    fingerprint,
                    phase: CentralizedPhase::Cccp,
                    w0: solution.w0.clone(),
                    vectors: solution.vs.clone(),
                    history: saved_history.clone(),
                    cccp_rounds: wire_u32(saved_history.len()),
                    // Convergence is re-derived from the history on resume.
                    cccp_converged: false,
                    cutting_rounds: *cutting_rounds as u64,
                    constraints_added: *constraints_added as u64,
                };
                if let Err(e) = sess.save(&snapshot.encode()) {
                    solve_err = Some(e);
                    return (state.clone(), 0.0);
                }
            }
            (CccpState { w0: solution.w0, vs: solution.vs, signs: new_signs }, objective)
        });
        if let Some(e) = solve_err {
            return Err(e);
        }
        Ok(result)
    }

    /// Global-SVM initialization over all observed labels; falls back to a
    /// deterministic pseudo-random unit vector when no user provides labels
    /// (pure maximum-margin clustering).
    fn initial_hyperplane(&self, prepared: &Prepared) -> Result<Vector, CoreError> {
        let mut xs: Vec<Vector> = Vec::new();
        let mut ys: Vec<i8> = Vec::new();
        for user in &prepared.users {
            for &(i, y) in &user.labeled {
                if let Some(x) = user.features.get(i) {
                    xs.push(x.clone());
                    ys.push(if y > 0.0 { 1 } else { -1 });
                }
            }
        }
        let has_both_classes = ys.contains(&1) && ys.contains(&-1);
        if !xs.is_empty() && has_both_classes {
            // Features are already bias-augmented; disable the SVM's own
            // augmentation.
            let params = SvmParams { c: 1.0, bias: None, ..SvmParams::default() };
            return Ok(LinearSvm::new(params).fit(&xs, &ys)?.weights().clone());
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
        let mut w: Vector = (0..prepared.dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = w.norm();
        if norm > 0.0 {
            w.scale_mut(1.0 / norm);
        }
        Ok(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::{LabelMask, UserData};
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    fn small_synthetic(users: usize, providers: usize, rate: f64) -> MultiUserDataset {
        let spec = SyntheticSpec {
            num_users: users,
            points_per_class: 30,
            max_rotation: std::f64::consts::FRAC_PI_4,
            flip_prob: 0.05,
        };
        generate_synthetic(&spec, 11)
            .mask_labels(&LabelMask::providers(providers, 0.2_f64.max(rate)), 5)
    }

    fn accuracy(model: &PersonalizedModel, dataset: &MultiUserDataset) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (t, u) in dataset.users().iter().enumerate() {
            for (x, &y) in u.features.iter().zip(&u.truth) {
                if model.predict(t, x) == y {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn learns_separable_multi_user_problem() {
        let dataset = small_synthetic(4, 2, 0.2);
        let fit = CentralizedPlos::new(PlosConfig::fast()).fit_detailed(&dataset).unwrap();
        let acc = accuracy(&fit.model, &dataset);
        assert!(acc > 0.78, "accuracy {acc}");
        assert!(fit.constraints_added > 0);
        assert!(fit.cccp_rounds >= 1);
    }

    #[test]
    fn cccp_objective_is_monotone_decreasing() {
        let dataset = small_synthetic(3, 2, 0.3);
        let fit = CentralizedPlos::new(PlosConfig::fast()).fit_detailed(&dataset).unwrap();
        assert!(
            fit.history.is_monotone_decreasing(1e-3),
            "objective history {:?}",
            fit.history.values()
        );
    }

    #[test]
    fn benefits_users_without_labels() {
        // Three users labeled, one unlabeled but aligned with the others.
        // Uses its own dataset seed: the property needs a draw where the
        // unlabeled user's rotation actually stays near the cohort (the
        // spec allows rotations up to 45°, which occasionally produces a
        // legitimately misaligned user).
        let spec = SyntheticSpec {
            num_users: 4,
            points_per_class: 30,
            max_rotation: std::f64::consts::FRAC_PI_4,
            flip_prob: 0.05,
        };
        let dataset = generate_synthetic(&spec, 23).mask_labels(&LabelMask::providers(3, 0.3), 5);
        let model = CentralizedPlos::new(PlosConfig::fast()).fit(&dataset).unwrap();
        for t in dataset.non_providers() {
            let u = dataset.user(t);
            let preds = model.predict_batch(t, &u.features);
            let acc = preds.iter().zip(&u.truth).filter(|(p, y)| p == y).count() as f64
                / u.num_samples() as f64;
            // Clustering symmetry: accept either labeling orientation for a
            // label-free user, but the split itself must be right.
            let acc = acc.max(1.0 - acc);
            assert!(acc > 0.8, "unlabeled user {t} accuracy {acc}");
        }
    }

    #[test]
    fn zero_label_dataset_still_trains() {
        // Pure maximum-margin clustering: no user provides labels.
        let spec =
            SyntheticSpec { num_users: 2, points_per_class: 25, max_rotation: 0.1, flip_prob: 0.0 };
        let dataset = generate_synthetic(&spec, 3);
        let model = CentralizedPlos::new(PlosConfig::fast()).fit(&dataset).unwrap();
        // The margin split should align with the true classes up to sign.
        let u = dataset.user(0);
        let preds = model.predict_batch(0, &u.features);
        let acc = preds.iter().zip(&u.truth).filter(|(p, y)| p == y).count() as f64 / 50.0;
        let acc = acc.max(1.0 - acc);
        assert!(acc > 0.8, "clustering accuracy {acc}");
    }

    #[test]
    fn single_user_degenerates_to_semi_supervised_svm() {
        let features = vec![
            Vector::from(vec![2.0, 0.1]),
            Vector::from(vec![2.5, -0.2]),
            Vector::from(vec![-2.0, 0.3]),
            Vector::from(vec![-2.2, 0.0]),
        ];
        let mut user = UserData::new(features, vec![1, 1, -1, -1]);
        user.observed = vec![Some(1), None, Some(-1), None];
        let dataset = MultiUserDataset::new(vec![user]);
        let model = CentralizedPlos::new(PlosConfig::fast()).fit(&dataset).unwrap();
        for (x, &y) in dataset.user(0).features.iter().zip(&dataset.user(0).truth) {
            assert_eq!(model.predict(0, x), y);
        }
    }

    #[test]
    fn large_lambda_approaches_global_model() {
        let dataset = small_synthetic(4, 2, 0.3);
        let config = PlosConfig { lambda: 1e5, ..PlosConfig::fast() };
        let model = CentralizedPlos::new(config).fit(&dataset).unwrap();
        for t in 0..4 {
            assert!(
                model.personalization_ratio(t) < 0.05,
                "user {t} deviates: {}",
                model.personalization_ratio(t)
            );
        }
    }

    #[test]
    fn small_lambda_allows_personalization() {
        // Strong rotation makes users genuinely different; tiny λ lets the
        // biases absorb that difference.
        let spec = SyntheticSpec {
            num_users: 3,
            points_per_class: 25,
            max_rotation: std::f64::consts::PI * 0.75,
            flip_prob: 0.0,
        };
        let dataset = generate_synthetic(&spec, 7).mask_labels(&LabelMask::providers(3, 0.3), 2);
        let config = PlosConfig { lambda: 0.5, ..PlosConfig::fast() };
        let model = CentralizedPlos::new(config).fit(&dataset).unwrap();
        let max_ratio = (0..3).map(|t| model.personalization_ratio(t)).fold(0.0_f64, f64::max);
        assert!(max_ratio > 0.05, "no personalization happened: {max_ratio}");
    }

    #[test]
    fn deterministic_given_config_and_data() {
        let dataset = small_synthetic(3, 2, 0.3);
        let m1 = CentralizedPlos::new(PlosConfig::fast()).fit(&dataset).unwrap();
        let m2 = CentralizedPlos::new(PlosConfig::fast()).fit(&dataset).unwrap();
        assert_eq!(m1, m2);
    }

    fn model_bits(model: &PersonalizedModel) -> Vec<u64> {
        let mut bits: Vec<u64> = model.global_hyperplane().iter().map(|c| c.to_bits()).collect();
        for v in model.personal_biases() {
            bits.extend(v.iter().map(|c| c.to_bits()));
        }
        bits
    }

    #[test]
    fn killed_and_resumed_run_matches_uninterrupted_bit_for_bit() {
        use crate::checkpoint::CheckpointPolicy;
        let dataset = small_synthetic(3, 2, 0.3);
        let config = PlosConfig::fast();
        let reference = CentralizedPlos::new(config.clone()).fit_detailed(&dataset).unwrap();

        let dir =
            std::env::temp_dir().join(format!("plos-centralized-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Kill the run after each possible checkpoint count and resume it;
        // every seam must reproduce the reference model exactly.
        for kill_after in 1..=2u32 {
            let killed = CentralizedPlos::new(config.clone())
                .with_checkpointing(CheckpointPolicy::new(&dir).abort_after(kill_after))
                .fit_detailed(&dataset);
            assert!(
                matches!(killed, Err(CoreError::Interrupted { .. })),
                "kill switch must fire, got {killed:?}"
            );
            let resumed = CentralizedPlos::new(config.clone())
                .with_checkpointing(CheckpointPolicy::new(&dir))
                .fit_detailed(&dataset)
                .unwrap();
            assert_eq!(
                model_bits(&resumed.model),
                model_bits(&reference.model),
                "resume after {kill_after} checkpoint(s) diverged"
            );
            assert_eq!(resumed.history.values(), reference.history.values());
            assert_eq!(resumed.cccp_rounds, reference.cccp_rounds);
            assert_eq!(resumed.converged, reference.converged);
            // Successful completion clears the snapshot for the next seam.
            assert!(!dir.join("centralized.ckpt").exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_checkpoint_is_rejected_not_ignored() {
        use crate::checkpoint::CheckpointPolicy;
        let dataset = small_synthetic(3, 2, 0.3);
        let dir =
            std::env::temp_dir().join(format!("plos-centralized-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PlosConfig::fast();
        let killed = CentralizedPlos::new(config.clone())
            .with_checkpointing(CheckpointPolicy::new(&dir).abort_after(1))
            .fit_detailed(&dataset);
        assert!(matches!(killed, Err(CoreError::Interrupted { .. })));

        // A different seed is a different run: the stale snapshot must be
        // refused with a typed error rather than silently resumed.
        let other = PlosConfig { seed: config.seed + 99, ..config };
        let resumed = CentralizedPlos::new(other)
            .with_checkpointing(CheckpointPolicy::new(&dir))
            .fit_detailed(&dataset);
        assert!(
            matches!(resumed, Err(CoreError::Ckpt(_))),
            "expected a checkpoint context error, got {resumed:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
