//! Distributed PLOS — Algorithm 2, over the simulated device network.
//!
//! One server thread (the caller) and `T` device threads communicate only
//! through [`plos_net`] messages; raw samples never leave the device
//! closures. Per CCCP round the server drives the ADMM loop:
//!
//! * **scatter** `Broadcast { w0, u_t }` to every device,
//! * devices solve the local QP of Eq. (22) ([`LocalSolver`]) and **gather**
//!   back `ClientUpdate { w_t, v_t, ξ_t }`,
//! * the server applies the closed-form updates of Eq. (23) and stops the
//!   loop on the residual criterion of Eq. (24),
//! * when the objective `L` stops improving the server either advances CCCP
//!   (`CccpAdvance`, devices re-linearize around their own `w_t`) or sends
//!   `Shutdown`.

use crate::config::PlosConfig;
use crate::error::CoreError;
use crate::local::LocalSolver;
use crate::model::PersonalizedModel;
use crate::problem;
use parking_lot::Mutex;
use plos_linalg::Vector;
use plos_net::{star, Endpoint, Message, TrafficStats};
use plos_opt::History;
use plos_sensing::dataset::MultiUserDataset;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

/// The distributed trainer.
#[derive(Debug, Clone)]
pub struct DistributedPlos {
    config: PlosConfig,
}

/// Everything the paper's Sec. VI-E experiments measure about a distributed
/// run.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// Per-user traffic (client-side view): what each phone sent/received.
    pub per_user_traffic: Vec<TrafficStats>,
    /// Total ADMM iterations across all CCCP rounds.
    pub admm_iterations: usize,
    /// CCCP rounds performed.
    pub cccp_rounds: usize,
    /// Objective `L` after each CCCP round (Eq. 23).
    pub history: History,
    /// Whether the CCCP objective converged before the round cap.
    pub converged: bool,
    /// Cumulative local-solve compute time per user, as measured on the
    /// simulation host (rescale with [`plos_net::DeviceProfile`] for
    /// device-equivalent time).
    pub per_user_compute: Vec<Duration>,
    /// Server-side compute time (aggregation only, excluding waiting).
    pub server_compute: Duration,
    /// End-to-end wall-clock time of the run.
    pub wall_clock: Duration,
}

impl DistributedReport {
    /// The slowest device's cumulative compute time — the quantity that
    /// bounds distributed running time, since devices compute in parallel
    /// (Sec. VI-E, "the total running time is determined by the smartphone
    /// that processes the most amount of data").
    pub fn max_client_compute(&self) -> Duration {
        self.per_user_compute.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Mean per-user traffic in kilobytes (Fig. 13's unit).
    pub fn mean_user_kb(&self) -> f64 {
        if self.per_user_traffic.is_empty() {
            return 0.0;
        }
        self.per_user_traffic.iter().map(TrafficStats::total_kb).sum::<f64>()
            / self.per_user_traffic.len() as f64
    }
}

/// What each device thread hands back when it shuts down.
struct ClientOutcome {
    stats: TrafficStats,
    compute: Duration,
}

impl DistributedPlos {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PlosConfig) -> Self {
        config.validate();
        DistributedPlos { config }
    }

    /// Trains over the simulated device network and returns the model plus
    /// the measurement report.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] when the dataset has no users.
    /// Local solve failures on a device degrade that device to the consensus
    /// update instead of aborting the protocol.
    // Allowed: the slot map is created with one entry per device index and
    // the network runs each device closure exactly once per index, so the
    // take-once expect cannot fail.
    #[allow(clippy::expect_used)]
    pub fn fit(
        &self,
        dataset: &MultiUserDataset,
    ) -> Result<(PersonalizedModel, DistributedReport), CoreError> {
        let started = Instant::now();
        let prepared = problem::prepare(dataset, self.config.bias);
        let t_count = prepared.users.len();
        if t_count == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let dim = prepared.dim;

        // Hand each device thread its own data through a take-once slot map
        // (the closure is shared across threads).
        let slots: Mutex<Vec<Option<LocalSolver>>> = Mutex::new(
            prepared
                .users
                .iter()
                .enumerate()
                .map(|(t, u)| {
                    // Salt each device's seed so refinement restarts differ
                    // across users.
                    let mut cfg = self.config.clone();
                    cfg.seed = cfg.seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    Some(LocalSolver::new(u.clone(), cfg, t_count))
                })
                .collect(),
        );

        let network = star(t_count);
        let config = self.config.clone();
        let (server_out, client_outs) = network.run_clients(
            |server_ends| self.server_loop(server_ends, dim, t_count),
            |t, endpoint| {
                let solver = slots.lock().get_mut(t).and_then(Option::take);
                let solver = solver.expect("each device slot is taken exactly once");
                Self::client_loop(&config, t, solver, endpoint)
            },
        );

        let (model, mut report) = server_out;
        report.per_user_traffic = client_outs.iter().map(|c| c.stats).collect();
        report.per_user_compute = client_outs.iter().map(|c| c.compute).collect();
        report.wall_clock = started.elapsed();
        Ok((model, report))
    }

    /// The device thread: answer broadcasts with local solves until
    /// shutdown.
    fn client_loop(
        _config: &PlosConfig,
        user: usize,
        mut solver: LocalSolver,
        endpoint: Endpoint,
    ) -> ClientOutcome {
        let user = user as u32;
        let mut compute = Duration::ZERO;
        loop {
            match endpoint.recv() {
                Ok(Message::Broadcast { round, w0, u_t }) => {
                    if round == 0 {
                        // Init round: contribute a local hyperplane if this
                        // device has labels of both classes.
                        let start = Instant::now();
                        let w_init =
                            solver.initial_hyperplane().unwrap_or_else(|| Vector::zeros(w0.len()));
                        compute += start.elapsed();
                        let reply = Message::ClientUpdate {
                            round,
                            user,
                            w_t: w_init,
                            v_t: Vector::zeros(w0.len()),
                            xi_t: 0.0,
                        };
                        if endpoint.send(&reply).is_err() {
                            break;
                        }
                    } else {
                        let start = Instant::now();
                        // A failed local solve degrades this device to the
                        // consensus update rather than poisoning the
                        // protocol: the server keeps driving the other
                        // devices and this one rejoins next round.
                        let update =
                            solver.solve(&w0, &u_t).unwrap_or_else(|_| crate::local::LocalUpdate {
                                w_t: w0.clone(),
                                v_t: Vector::zeros(w0.len()),
                                xi_t: 0.0,
                            });
                        compute += start.elapsed();
                        let reply = Message::ClientUpdate {
                            round,
                            user,
                            w_t: update.w_t,
                            v_t: update.v_t,
                            xi_t: update.xi_t,
                        };
                        if endpoint.send(&reply).is_err() {
                            break;
                        }
                    }
                }
                Ok(Message::CccpAdvance { .. }) => solver.advance_cccp(),
                Ok(Message::Refine { round, w0 }) => {
                    let start = Instant::now();
                    let seed = solver.seed_for_round(round);
                    let update =
                        solver.refine(&w0, seed).unwrap_or_else(|_| crate::local::LocalUpdate {
                            w_t: w0.clone(),
                            v_t: Vector::zeros(w0.len()),
                            xi_t: 0.0,
                        });
                    compute += start.elapsed();
                    let reply = Message::ClientUpdate {
                        round,
                        user,
                        w_t: update.w_t,
                        v_t: update.v_t,
                        xi_t: update.xi_t,
                    };
                    if endpoint.send(&reply).is_err() {
                        break;
                    }
                }
                // Devices never receive peer updates; treat as protocol
                // violation and stop.
                Ok(Message::ClientUpdate { .. }) | Ok(Message::Shutdown) | Err(_) => break,
            }
        }
        ClientOutcome { stats: endpoint.stats(), compute }
    }

    /// The server thread: initialization, CCCP × ADMM driving, shutdown.
    // Allowed: the in-process star network keeps every link alive for the
    // whole run (clients only exit after `Shutdown`), messages on a link
    // arrive in order, and the per-user buffers below are sized `t_count`
    // with `t` ranging over the same `t_count` endpoints — so the channel
    // expects, protocol panics and `t`-indexed accesses cannot fire.
    #[allow(clippy::expect_used, clippy::panic, clippy::indexing_slicing)]
    fn server_loop(
        &self,
        ends: &[Endpoint],
        dim: usize,
        t_count: usize,
    ) -> (PersonalizedModel, DistributedReport) {
        let mut server_compute = Duration::ZERO;

        // ---- Initialization round: average provider hyperplanes. ----
        let zero = Vector::zeros(dim);
        for end in ends {
            end.send(&Message::Broadcast { round: 0, w0: zero.clone(), u_t: zero.clone() })
                .expect("client alive during init");
        }
        let mut w0 = Vector::zeros(dim);
        let mut contributors = 0usize;
        for (t, end) in ends.iter().enumerate() {
            match end.recv().expect("init reply") {
                Message::ClientUpdate { user, w_t, .. } => {
                    assert_eq!(user as usize, t, "init reply attributed to the wrong device");
                    let t0 = Instant::now();
                    if w_t.norm() > 0.0 {
                        w0 += &w_t;
                        contributors += 1;
                    }
                    server_compute += t0.elapsed();
                }
                other => panic!("unexpected init reply: {other:?}"),
            }
        }
        if contributors > 0 {
            w0.scale_mut(1.0 / contributors as f64);
        } else {
            // No provider anywhere: deterministic random init, mirroring the
            // centralized fallback.
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
            w0 = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let n = w0.norm();
            if n > 0.0 {
                w0.scale_mut(1.0 / n);
            }
        }

        // ---- CCCP × ADMM ----
        let kappa = self.config.lambda / t_count as f64;
        let rho = self.config.rho;
        let sqrt_2t = (2.0 * t_count as f64).sqrt();
        let sqrt_t = (t_count as f64).sqrt();

        let mut us = vec![Vector::zeros(dim); t_count];
        let mut w_ts = vec![Vector::zeros(dim); t_count];
        let mut v_ts = vec![Vector::zeros(dim); t_count];
        let mut xi_ts = vec![0.0f64; t_count];

        let mut history = History::new();
        let mut admm_iterations = 0usize;
        let mut round = 0u32;
        let mut converged = false;
        let mut cccp_rounds = 0usize;

        for cccp_round in 0..self.config.max_cccp_rounds {
            cccp_rounds += 1;
            if cccp_round > 0 {
                for end in ends {
                    end.send(&Message::CccpAdvance { cccp_round: cccp_round as u32 })
                        .expect("client alive");
                }
            }
            for _ in 0..self.config.max_admm_iters {
                round += 1;
                admm_iterations += 1;
                // Scatter.
                for (t, end) in ends.iter().enumerate() {
                    end.send(&Message::Broadcast { round, w0: w0.clone(), u_t: us[t].clone() })
                        .expect("client alive");
                }
                // Gather (links are 1:1, so order per link is guaranteed).
                for (t, end) in ends.iter().enumerate() {
                    match end.recv().expect("client update") {
                        Message::ClientUpdate { round: r, user, w_t, v_t, xi_t } => {
                            assert_eq!(r, round, "client answered the wrong round");
                            assert_eq!(user as usize, t, "update attributed to the wrong device");
                            w_ts[t] = w_t;
                            v_ts[t] = v_t;
                            xi_ts[t] = xi_t;
                        }
                        other => panic!("unexpected message: {other:?}"),
                    }
                }
                // Eq. (23): closed-form z- and u-updates.
                let t0 = Instant::now();
                let mut w0_new = Vector::zeros(dim);
                for t in 0..t_count {
                    w0_new += &w_ts[t];
                    w0_new -= &v_ts[t];
                    w0_new += &us[t];
                }
                w0_new.scale_mut(rho / (2.0 + t_count as f64 * rho));
                // Eq. (24): residuals.
                let dual_residual = rho * sqrt_2t * w0_new.distance(&w0);
                let mut primal_sq = 0.0;
                for t in 0..t_count {
                    let mut delta = w_ts[t].clone();
                    delta -= &w0_new;
                    delta -= &v_ts[t];
                    primal_sq += delta.norm_squared();
                    us[t] += &delta;
                }
                w0 = w0_new;
                server_compute += t0.elapsed();

                if dual_residual <= sqrt_2t * self.config.eps_abs
                    && primal_sq.sqrt() <= sqrt_t * self.config.eps_abs
                {
                    break;
                }
            }

            // Objective L (Eq. 23, third line).
            let objective = w0.norm_squared()
                + kappa * v_ts.iter().map(Vector::norm_squared).sum::<f64>()
                + xi_ts.iter().sum::<f64>();
            history.push(objective);
            if history.converged(self.config.cccp_tol) {
                converged = true;
                break;
            }
        }

        // ---- Refinement: multi-start per-device re-solve + closed-form w0
        // block updates (same messages, still only model parameters). ----
        for _ in 0..self.config.refine_rounds {
            round += 1;
            for end in ends {
                end.send(&Message::Refine { round, w0: w0.clone() }).expect("client alive");
            }
            for (t, end) in ends.iter().enumerate() {
                match end.recv().expect("refine reply") {
                    Message::ClientUpdate { round: r, user, w_t, v_t, xi_t } => {
                        assert_eq!(r, round, "client answered the wrong refine round");
                        assert_eq!(
                            user as usize, t,
                            "refine update attributed to the wrong device"
                        );
                        w_ts[t] = w_t;
                        v_ts[t] = v_t;
                        xi_ts[t] = xi_t;
                    }
                    other => panic!("unexpected message: {other:?}"),
                }
            }
            let t0 = Instant::now();
            let mut mean = Vector::zeros(dim);
            for w_t in &w_ts {
                mean += w_t;
            }
            mean.scale_mut(1.0 / t_count as f64);
            w0 = mean.scaled(self.config.lambda / (1.0 + self.config.lambda));
            server_compute += t0.elapsed();
            // xi_ts now carry true local losses, so this is the true
            // objective in the problem-(3) scale.
            let objective = w0.norm_squared()
                + kappa * w_ts.iter().map(|w_t| w_t.distance_squared(&w0)).sum::<f64>()
                + xi_ts.iter().sum::<f64>();
            history.push(objective);
        }

        for end in ends {
            let _ = end.send(&Message::Shutdown);
        }

        // Personalized hyperplanes are exactly the devices' final w_t.
        let biases: Vec<Vector> = w_ts.iter().map(|w_t| w_t - &w0).collect();
        let model = PersonalizedModel::new(w0, biases, self.config.bias);
        let report = DistributedReport {
            per_user_traffic: Vec::new(), // filled by fit()
            admm_iterations,
            cccp_rounds,
            history,
            converged,
            per_user_compute: Vec::new(), // filled by fit()
            server_compute,
            wall_clock: Duration::ZERO, // filled by fit()
        };
        (model, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    fn dataset(users: usize, providers: usize) -> MultiUserDataset {
        let spec = SyntheticSpec {
            num_users: users,
            points_per_class: 25,
            max_rotation: std::f64::consts::FRAC_PI_4,
            flip_prob: 0.05,
        };
        generate_synthetic(&spec, 13).mask_labels(&LabelMask::providers(providers, 0.2), 4)
    }

    fn accuracy(model: &PersonalizedModel, dataset: &MultiUserDataset) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (t, u) in dataset.users().iter().enumerate() {
            for (x, &y) in u.features.iter().zip(&u.truth) {
                if model.predict(t, x) == y {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn distributed_training_learns() {
        let data = dataset(4, 2);
        let (model, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let acc = accuracy(&model, &data);
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(report.admm_iterations > 0);
        assert_eq!(report.per_user_traffic.len(), 4);
        assert_eq!(report.per_user_compute.len(), 4);
    }

    #[test]
    fn traffic_is_model_parameters_only() {
        let data = dataset(3, 2);
        let (_, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        // Upper bound: every client message carries at most 2 vectors + a
        // few scalars per round, so bytes/user stays far below the raw data
        // size (25*2 samples × 2 dims × 8 bytes would already be 800 B per
        // single exchange if data were shipped; instead the total per round
        // pair is ~2×(2×(4+2·8)+...)).
        for stats in &report.per_user_traffic {
            let rounds = report.admm_iterations as u64 + 2; // + init + cccp msgs
            let per_round = stats.total_bytes() / rounds.max(1);
            // One broadcast + one update, each ≈ 2 vectors of dim 3 (+bias).
            assert!(per_round < 300, "per-round bytes {per_round}");
            assert!(stats.messages_sent > 0 && stats.messages_received > 0);
        }
    }

    #[test]
    fn matches_centralized_accuracy_closely() {
        // The paper's Fig. 11: |acc(dist) − acc(cent)| ≈ 0.
        let data = dataset(5, 3);
        let config = PlosConfig::fast();
        let central = crate::CentralizedPlos::new(config.clone()).fit(&data).unwrap();
        let (dist, _) = DistributedPlos::new(config).fit(&data).unwrap();
        let gap = (accuracy(&central, &data) - accuracy(&dist, &data)).abs();
        assert!(gap < 0.08, "accuracy gap {gap}");
    }

    #[test]
    fn consensus_is_reached() {
        let data = dataset(4, 2);
        let (model, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert!(report.cccp_rounds >= 1);
        // w_t = w0 + v_t by construction; personalization stays bounded.
        for t in 0..4 {
            assert!(model.personalized_hyperplane(t).is_finite());
        }
    }

    #[test]
    fn works_with_zero_providers() {
        let spec =
            SyntheticSpec { num_users: 3, points_per_class: 20, max_rotation: 0.1, flip_prob: 0.0 };
        let data = generate_synthetic(&spec, 5);
        let (model, _) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let acc = accuracy(&model, &data);
        // Clustering orientation is arbitrary without labels.
        let acc = acc.max(1.0 - acc);
        assert!(acc > 0.75, "clustering accuracy {acc}");
    }

    #[test]
    fn single_user_works() {
        let data = dataset(1, 1);
        let (model, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert_eq!(model.num_users(), 1);
        assert_eq!(report.per_user_traffic.len(), 1);
        assert!(accuracy(&model, &data) > 0.8);
    }

    #[test]
    fn report_helpers() {
        let data = dataset(3, 2);
        let (_, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert!(report.max_client_compute() >= Duration::ZERO);
        assert!(report.mean_user_kb() > 0.0);
        assert!(report.wall_clock > Duration::ZERO);
    }
}
