//! Distributed PLOS — Algorithm 2, over the simulated device network.
//!
//! One server thread (the caller) and `T` device threads communicate only
//! through [`plos_net`] messages; raw samples never leave the device
//! closures. Per CCCP round the server drives the ADMM loop:
//!
//! * **scatter** `Broadcast { w0, u_t }` to every device,
//! * devices solve the local QP of Eq. (22) ([`LocalSolver`]) and **gather**
//!   back `ClientUpdate { w_t, v_t, ξ_t }`,
//! * the server applies the closed-form updates of Eq. (23) and stops the
//!   loop on the residual criterion of Eq. (24),
//! * when the objective `L` stops improving the server either advances CCCP
//!   (`CccpAdvance`, devices re-linearize around their own `w_t`) or sends
//!   `Shutdown`.
//!
//! # Fault tolerance
//!
//! Real fleets drop, delay, duplicate and corrupt frames, and phones vanish
//! mid-round. The server therefore never blocks on a single device:
//!
//! * every gather runs under a [`RetryPolicy`] — an initial window, bounded
//!   re-broadcasts with exponential backoff, and a hard round deadline;
//! * a round may close early once [`FaultTolerance::quorum_fraction`] of the
//!   live roster replied; stragglers keep their previous `(w_t, v_t, ξ_t)`
//!   (carry-forward) and rejoin next round;
//! * a device that misses [`FaultTolerance::evict_after`] consecutive rounds
//!   (or whose link reports `Disconnected`) is evicted; survivors are told
//!   the new cohort size via `RosterUpdate` so they rescale `κ = λ/T` — and
//!   with it the `Σ_k γ_kt ≤ T/2λ` dual cap — while the server shrinks every
//!   `T`-dependent denominator of Eq. (23)/(24);
//! * training then completes with [`DistributedReport::degraded`] set
//!   instead of hanging or panicking.
//!
//! Faults are injected deterministically through a [`FaultPlan`]
//! ([`DistributedPlos::fit_with_faults`]); the zero plan is a transparent
//! pass-through, so [`DistributedPlos::fit`] is bit-identical to the
//! fault-free synchronous protocol.

use crate::checkpoint::{self, CheckpointPolicy, CkptSession};
use crate::config::{FaultTolerance, PlosConfig};
use crate::error::CoreError;
use crate::local::LocalSolver;
use crate::model::PersonalizedModel;
use crate::problem;
use crate::wire_u32;
use parking_lot::Mutex;
use plos_ckpt::{
    BroadcastRecord, CkptError, DistributedPhase, DistributedState, ParticipationRecord,
    KIND_DISTRIBUTED,
};
use plos_linalg::Vector;
use plos_net::{star, Endpoint, FaultPlan, FaultyEndpoint, Message, TrafficStats, TransportError};
use plos_opt::History;
use plos_sensing::dataset::MultiUserDataset;
use rand::{Rng, SeedableRng};
use std::time::{Duration, Instant};

#[cfg(doc)]
use crate::config::RetryPolicy;

/// How long one poll of an outstanding link blocks during a gather sweep.
/// Small enough that retry/deadline checks stay responsive, large enough
/// that an idle sweep does not spin.
const POLL_SLICE: Duration = Duration::from_millis(2);

/// Device-side wait between checks for server messages. Purely a wake-up
/// cadence: a timeout just loops, so the value only bounds how quickly a
/// device notices the server hung up.
const CLIENT_IDLE: Duration = Duration::from_millis(50);

/// The distributed trainer.
#[derive(Debug, Clone)]
pub struct DistributedPlos {
    config: PlosConfig,
    fault_tolerance: FaultTolerance,
    ckpt: Option<CheckpointPolicy>,
}

/// One gather round's attendance, as seen by the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundParticipation {
    /// Protocol round number (0 is the initialization round).
    pub round: u32,
    /// Devices whose update was accepted this round.
    pub replied: usize,
    /// Devices still on the roster when the round closed.
    pub alive: usize,
    /// Re-broadcasts the retry policy fired this round.
    pub retries: u32,
}

/// One ADMM round's Eq. (24) residual norms, as computed by the server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmmResiduals {
    /// Protocol round number (matches [`RoundParticipation::round`]).
    pub round: u32,
    /// Primal residual norm `√(Σ‖u⁺ − u‖²)` over the live cohort.
    pub primal: f64,
    /// Dual residual norm `ρ·√(2T)·‖w0⁺ − w0‖`.
    pub dual: f64,
}

/// Everything the paper's Sec. VI-E experiments measure about a distributed
/// run.
#[derive(Debug, Clone)]
pub struct DistributedReport {
    /// Per-user traffic (client-side view): what each phone sent/received.
    pub per_user_traffic: Vec<TrafficStats>,
    /// Total ADMM iterations across all CCCP rounds.
    pub admm_iterations: usize,
    /// CCCP rounds performed.
    pub cccp_rounds: usize,
    /// Objective `L` after each CCCP round (Eq. 23).
    pub history: History,
    /// Whether the CCCP objective converged before the round cap.
    pub converged: bool,
    /// Cumulative local-solve compute time per user, as measured on the
    /// simulation host (rescale with [`plos_net::DeviceProfile`] for
    /// device-equivalent time).
    pub per_user_compute: Vec<Duration>,
    /// Server-side compute time (aggregation only, excluding waiting).
    pub server_compute: Duration,
    /// End-to-end wall-clock time of the run.
    pub wall_clock: Duration,
    /// True when any round closed without the full live roster, or any
    /// device was evicted — i.e. the run needed the fault-tolerance
    /// machinery rather than the pure synchronous protocol.
    pub degraded: bool,
    /// Devices evicted from the roster (missed rounds or dead links),
    /// in eviction order.
    pub evicted: Vec<usize>,
    /// Per-round attendance, one entry per gather round.
    pub participation: Vec<RoundParticipation>,
    /// Frames that violated the protocol (misattributed updates, unexpected
    /// message kinds) and were discarded.
    pub protocol_errors: u64,
    /// Stale frames (late replies to closed rounds, duplicates) that were
    /// discarded by their `round` tag.
    pub late_discards: u64,
    /// Eq. (24) residual norms after every ADMM round, across all CCCP
    /// rounds, in protocol-round order. Mirrors the `admm_round` trace
    /// events exactly.
    pub residuals: Vec<AdmmResiduals>,
}

impl DistributedReport {
    /// The slowest device's cumulative compute time — the quantity that
    /// bounds distributed running time, since devices compute in parallel
    /// (Sec. VI-E, "the total running time is determined by the smartphone
    /// that processes the most amount of data").
    pub fn max_client_compute(&self) -> Duration {
        self.per_user_compute.iter().copied().max().unwrap_or(Duration::ZERO)
    }

    /// Mean per-user traffic in kilobytes (Fig. 13's unit).
    pub fn mean_user_kb(&self) -> f64 {
        if self.per_user_traffic.is_empty() {
            return 0.0;
        }
        self.per_user_traffic.iter().map(TrafficStats::total_kb).sum::<f64>()
            / self.per_user_traffic.len() as f64
    }

    /// Mean fraction of the live roster that replied per round (1.0 for a
    /// fault-free run).
    pub fn participation_rate(&self) -> f64 {
        if self.participation.is_empty() {
            return 1.0;
        }
        self.participation
            .iter()
            .map(|p| if p.alive == 0 { 0.0 } else { p.replied as f64 / p.alive as f64 })
            .sum::<f64>()
            / self.participation.len() as f64
    }
}

/// What each device thread hands back when it shuts down.
struct ClientOutcome {
    stats: TrafficStats,
    compute: Duration,
}

/// Server-side view of the device roster: the fault-wrapped links plus the
/// liveness bookkeeping that drives quorum gathers, retries and eviction.
struct Fleet<'a> {
    links: Vec<FaultyEndpoint<'a>>,
    alive: Vec<bool>,
    /// Consecutive rounds each device has missed.
    missed: Vec<u32>,
    ft: FaultTolerance,
    evicted: Vec<usize>,
    participation: Vec<RoundParticipation>,
    protocol_errors: u64,
    late_discards: u64,
    /// Set when an eviction changed the cohort size and the survivors have
    /// not been told yet.
    roster_dirty: bool,
}

impl<'a> Fleet<'a> {
    fn new(links: Vec<FaultyEndpoint<'a>>, ft: FaultTolerance) -> Self {
        let n = links.len();
        Fleet {
            links,
            alive: vec![true; n],
            missed: vec![0; n],
            ft,
            evicted: Vec::new(),
            participation: Vec::new(),
            protocol_errors: 0,
            late_discards: 0,
            roster_dirty: false,
        }
    }

    fn is_alive(&self, t: usize) -> bool {
        self.alive.get(t).copied().unwrap_or(false)
    }

    fn alive_count(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    /// Removes a device from the roster permanently.
    fn evict(&mut self, t: usize) {
        let newly_evicted = match self.alive.get_mut(t) {
            Some(alive) if *alive => {
                *alive = false;
                true
            }
            _ => false,
        };
        if newly_evicted {
            self.evicted.push(t);
            self.roster_dirty = true;
            plos_obs::emit(
                "eviction",
                &[("device", t.into()), ("alive", self.alive_count().into())],
            );
            plos_obs::counter_add("distributed.evictions", 1);
        }
    }

    /// Sends to one live device; a dead link evicts it on the spot.
    fn send_to(&mut self, t: usize, message: &Message) {
        if !self.is_alive(t) {
            return;
        }
        let failed = match self.links.get_mut(t) {
            Some(link) => link.send(message).is_err(),
            None => false,
        };
        if failed {
            self.evict(t);
        }
    }

    /// Sends one message per live device.
    fn send_alive(&mut self, make: &dyn Fn(usize) -> Message) {
        for t in 0..self.links.len() {
            if self.is_alive(t) {
                let message = make(t);
                self.send_to(t, &message);
            }
        }
    }

    /// If evictions changed the cohort size, tells the survivors the new
    /// `T` so they rescale `κ = λ/T` (and the `Σ_k γ_kt ≤ T/2λ` dual cap).
    fn publish_roster(&mut self) {
        while self.roster_dirty {
            self.roster_dirty = false;
            let t_count = wire_u32(self.alive_count());
            // Publishing can itself reveal dead links, re-dirtying the
            // roster; the loop converges because evictions are monotone.
            self.send_alive(&move |_t| Message::RosterUpdate { t_count });
        }
    }

    /// Best-effort shutdown broadcast; failures are irrelevant because the
    /// endpoints drop right after and disconnect every survivor.
    fn shutdown(&mut self) {
        for (link, &alive) in self.links.iter_mut().zip(&self.alive) {
            if alive {
                let _ = link.send(&Message::Shutdown);
            }
        }
    }

    /// Best-effort shutdown of one device regardless of roster state. Used
    /// on resume: a device evicted before the checkpoint still has a fresh
    /// thread waiting in this process, and it must be told to exit.
    fn shutdown_device(&mut self, t: usize) {
        if let Some(link) = self.links.get_mut(t) {
            let _ = link.send(&Message::Shutdown);
        }
    }

    /// Adopts the roster a checkpoint recorded: liveness flags, strike
    /// counts, eviction order and the fault-tolerance counters, so the
    /// resumed run's report continues the interrupted one's.
    fn restore_roster(&mut self, state: &DistributedState) {
        for (flag, &stored) in self.alive.iter_mut().zip(&state.alive) {
            *flag = stored;
        }
        for (strikes, &stored) in self.missed.iter_mut().zip(&state.missed) {
            *strikes = stored;
        }
        self.evicted = state.evicted.iter().map(|&t| t as usize).collect();
        self.participation = state
            .participation
            .iter()
            .map(|p| RoundParticipation {
                round: p.round,
                replied: p.replied as usize,
                alive: p.alive as usize,
                retries: wire_u32(p.retries),
            })
            .collect();
        self.protocol_errors = state.protocol_errors;
        self.late_discards = state.late_discards;
        self.roster_dirty = false;
    }

    /// Snapshot of the roster in checkpoint form.
    fn export_roster(&self) -> (Vec<bool>, Vec<u32>, Vec<u64>, Vec<ParticipationRecord>) {
        (
            self.alive.clone(),
            self.missed.clone(),
            self.evicted.iter().map(|&t| t as u64).collect(),
            self.participation
                .iter()
                .map(|p| ParticipationRecord {
                    round: p.round,
                    replied: p.replied as u64,
                    alive: p.alive as u64,
                    retries: u64::from(p.retries),
                })
                .collect(),
        )
    }

    /// One quorum gather: collects `ClientUpdate`s for `round` into `sink`
    /// under the retry policy. The round closes when the whole live roster
    /// replied, or the quorum is met after the initial window, or the round
    /// deadline expires. Devices that stay silent accumulate a strike and
    /// are evicted after `evict_after` consecutive misses.
    ///
    /// `record = false` marks a replay gather during checkpoint resume: it
    /// collects replies under the same retry machinery but leaves the
    /// participation log and strike counters untouched, because the
    /// uninterrupted run it reconstructs never had these extra rounds.
    ///
    /// # Errors
    ///
    /// [`CoreError::Transport`] when every device disconnected, and
    /// [`CoreError::QuorumLost`] when the round closed with zero usable
    /// replies — with no fresh state at all the ADMM iteration cannot
    /// advance, so retrying at the next round would only loop forever.
    fn gather(
        &mut self,
        round: u32,
        record: bool,
        rebroadcast: &dyn Fn(usize) -> Message,
        sink: &mut dyn FnMut(usize, Vector, Vector, f64),
    ) -> Result<(), CoreError> {
        let t_count = self.links.len();
        let mut replied = vec![false; t_count];
        let mut replies = 0usize;
        // D2 audit: these clocks gate only the retry/deadline machinery —
        // replies are matched by round tag, late ones discarded, so which
        // wall-clock instant a reply arrived at never reaches model state.
        // Asserted clock-independent by tests/clock_independence.rs.
        // plos-lint: allow(D2): retry-window/deadline timeout plumbing only
        let started = Instant::now();
        let first_window = started + self.ft.retry.recv_timeout;
        let deadline = started + self.ft.retry.round_deadline;
        let mut window_ends = first_window;
        let mut backoff = self.ft.retry.backoff_base;
        let mut retries = 0u32;

        loop {
            let alive = self.alive_count();
            if alive == 0 {
                return Err(CoreError::Transport {
                    detail: format!("every device disconnected before round {round} closed"),
                });
            }
            let required = self.ft.required_replies(alive);
            let outstanding: Vec<usize> = (0..t_count)
                .filter(|&t| self.is_alive(t) && !replied.get(t).copied().unwrap_or(true))
                .collect();
            // plos-lint: allow(D2): retry-window/deadline timeout plumbing only
            let now = Instant::now();
            if outstanding.is_empty()
                || now >= deadline
                || (replies >= required && now >= first_window)
            {
                break;
            }
            if now >= window_ends && retries < self.ft.retry.max_retries {
                retries += 1;
                for &t in &outstanding {
                    let message = rebroadcast(t);
                    self.send_to(t, &message);
                }
                // plos-lint: allow(D2): backoff window for re-broadcasts only
                window_ends = Instant::now() + backoff;
                backoff = backoff.mul_f64(self.ft.retry.backoff_factor);
            }
            for &t in &outstanding {
                if !self.is_alive(t) {
                    continue;
                }
                let Some(link) = self.links.get_mut(t) else { continue };
                let received = link.recv_timeout(POLL_SLICE);
                match received {
                    Ok(Message::ClientUpdate { round: r, user, w_t, v_t, xi_t }) => {
                        if r != round || replied.get(t).copied().unwrap_or(false) {
                            // A late reply to a closed round, or a duplicate:
                            // discard by tag, never merge.
                            self.late_discards = self.late_discards.saturating_add(1);
                        } else if user as usize != t {
                            // An update attributed to the wrong device used
                            // to be a hard assert; now it is a counted,
                            // recoverable protocol error.
                            self.protocol_errors = self.protocol_errors.saturating_add(1);
                        } else {
                            if let Some(slot) = replied.get_mut(t) {
                                *slot = true;
                            }
                            replies += 1;
                            sink(t, w_t, v_t, xi_t);
                        }
                    }
                    Ok(_) => self.protocol_errors = self.protocol_errors.saturating_add(1),
                    // A corrupted frame surfaced as a codec error; the retry
                    // layer re-broadcasts, the device recomputes.
                    Err(TransportError::Timeout | TransportError::Codec(_)) => {}
                    Err(TransportError::Disconnected) => self.evict(t),
                }
            }
        }

        let alive = self.alive_count();
        if record {
            self.participation.push(RoundParticipation { round, replied: replies, alive, retries });
        }
        if replies == 0 {
            return Err(CoreError::QuorumLost {
                round,
                alive,
                required: self.ft.required_replies(alive),
            });
        }
        if !record {
            return Ok(());
        }
        // Strike accounting: a reply clears the count, a miss adds one, and
        // `evict_after` consecutive misses remove the device for good.
        let mut to_evict = Vec::new();
        for (t, replied_t) in replied.iter().enumerate() {
            if !self.is_alive(t) {
                continue;
            }
            let Some(strikes) = self.missed.get_mut(t) else { continue };
            if *replied_t {
                *strikes = 0;
            } else {
                *strikes += 1;
                if *strikes >= self.ft.evict_after {
                    to_evict.push(t);
                }
            }
        }
        for t in to_evict {
            self.evict(t);
        }
        Ok(())
    }
}

/// Shape checks a decoded distributed checkpoint against this run: the
/// section digests already guarantee byte integrity and the fingerprint ties
/// it to the cohort/config, so this guards the residual structural
/// degrees of freedom (vector lengths) before any arithmetic touches them.
fn validate_distributed_state(
    state: &DistributedState,
    t_count: usize,
    dim: usize,
) -> Result<(), CoreError> {
    let mut ok = state.us.len() == t_count && state.w0.len() == dim;
    for group in [&state.us, &state.w_ts, &state.v_ts, &state.anchors] {
        ok &= group.iter().all(|v| v.len() == dim);
    }
    for rec in &state.log {
        ok &= rec.w0.len() == dim && rec.us.iter().all(|v| v.len() == dim);
    }
    if ok {
        Ok(())
    } else {
        Err(CoreError::Ckpt(CkptError::Malformed {
            detail: format!(
                "checkpoint shape does not match this run (cohort {t_count}, dim {dim})"
            ),
        }))
    }
}

impl DistributedPlos {
    /// Creates a trainer with the default (fully synchronous, quorum `1.0`)
    /// fault tolerance.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PlosConfig) -> Self {
        config.validate();
        DistributedPlos { config, fault_tolerance: FaultTolerance::default(), ckpt: None }
    }

    /// Enables server-side checkpointing under `policy`: the server snapshots
    /// its consensus state after every ADMM iteration and refinement round,
    /// and a later run with the same policy resumes from the snapshot with
    /// bit-parity (fault-free runs). Only server-held quantities are written —
    /// device-local training data never reaches the checkpoint.
    ///
    /// Without an explicit policy the `PLOS_CKPT_DIR` environment variable is
    /// consulted (see [`crate::checkpoint::CKPT_DIR_ENV`]).
    #[must_use]
    pub fn with_checkpointing(mut self, policy: CheckpointPolicy) -> Self {
        self.ckpt = Some(policy);
        self
    }

    /// Replaces the fault-tolerance policy (quorum fraction, retry schedule,
    /// eviction threshold).
    ///
    /// # Panics
    ///
    /// Panics if the policy is invalid.
    #[must_use]
    pub fn with_fault_tolerance(mut self, fault_tolerance: FaultTolerance) -> Self {
        fault_tolerance.validate();
        self.fault_tolerance = fault_tolerance;
        self
    }

    /// Trains over the simulated device network and returns the model plus
    /// the measurement report. Equivalent to [`DistributedPlos::fit_with_faults`]
    /// with the zero [`FaultPlan`] — the fault layer is a transparent
    /// pass-through, so results are bit-identical to the plain synchronous
    /// protocol.
    ///
    /// # Errors
    ///
    /// See [`DistributedPlos::fit_with_faults`].
    pub fn fit(
        &self,
        dataset: &MultiUserDataset,
    ) -> Result<(PersonalizedModel, DistributedReport), CoreError> {
        self.fit_with_faults(dataset, &FaultPlan::none())
    }

    /// Trains under injected network faults: `plan` seeds per-link drop,
    /// delay, duplication, reordering, corruption and permanent-death
    /// processes, while the trainer's [`FaultTolerance`] policy keeps the
    /// protocol alive around them.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] when the dataset has no users,
    /// [`CoreError::Protocol`] for an invalid fault plan,
    /// [`CoreError::Transport`] when the whole fleet disconnected, and
    /// [`CoreError::QuorumLost`] when a gather round ended with zero usable
    /// replies. Local solve failures on a device degrade that device to the
    /// consensus update instead of aborting the protocol.
    // Allowed: the slot map is created with one entry per device index and
    // the network runs each device closure exactly once per index, so the
    // take-once expect cannot fail.
    #[allow(clippy::expect_used)]
    pub fn fit_with_faults(
        &self,
        dataset: &MultiUserDataset,
        plan: &FaultPlan,
    ) -> Result<(PersonalizedModel, DistributedReport), CoreError> {
        let _span = plos_obs::Span::enter("distributed_fit");
        // plos-lint: allow(D2): wall_clock field of the report only
        let started = Instant::now();
        plan.validate().map_err(|detail| CoreError::Protocol {
            detail: format!("invalid fault plan: {detail}"),
        })?;
        let prepared = problem::prepare(dataset, self.config.bias);
        let t_count = prepared.users.len();
        if t_count == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let dim = prepared.dim;

        // Checkpointing: explicit policy first, PLOS_CKPT_DIR fallback. The
        // snapshot is server-side state only; a structural fingerprint ties
        // it to this cohort shape and configuration.
        let policy = self.ckpt.clone().or_else(CheckpointPolicy::from_env);
        let fingerprint = checkpoint::run_fingerprint(KIND_DISTRIBUTED, t_count, dim, &self.config);
        let mut session = policy.as_ref().map(|p| p.session("distributed"));
        let resume = match &session {
            Some(sess) => match sess.load()? {
                Some(file) => {
                    let state = DistributedState::decode(&file).map_err(CoreError::Ckpt)?;
                    checkpoint::check_fingerprint(state.fingerprint, fingerprint)?;
                    validate_distributed_state(&state, t_count, dim)?;
                    plos_obs::emit(
                        "checkpoint_resume",
                        &[
                            ("trainer", "distributed".to_string().into()),
                            ("round", state.round.into()),
                            ("cccp_round", state.cccp_round.into()),
                            ("admm_iterations", state.admm_iterations.into()),
                        ],
                    );
                    Some(Box::new(state))
                }
                None => None,
            },
            None => None,
        };

        // Hand each device thread its own data through a take-once slot map
        // (the closure is shared across threads).
        let slots: Mutex<Vec<Option<LocalSolver>>> = Mutex::new(
            prepared
                .users
                .iter()
                .enumerate()
                .map(|(t, u)| {
                    // Salt each device's seed so refinement restarts differ
                    // across users.
                    let mut cfg = self.config.clone();
                    cfg.seed = cfg.seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    Some(LocalSolver::new(u.clone(), cfg, t_count))
                })
                .collect(),
        );

        let network = star(t_count);
        let config = self.config.clone();
        let session_ref = &mut session;
        let (server_out, client_outs) = network.run_clients(
            |server_ends| {
                self.server_loop(server_ends, dim, t_count, plan, fingerprint, resume, session_ref)
            },
            |t, endpoint| {
                let solver = slots.lock().get_mut(t).and_then(Option::take);
                let solver = solver.expect("each device slot is taken exactly once");
                Self::client_loop(&config, t, solver, endpoint)
            },
        );

        let (model, mut report) = server_out?;
        report.per_user_traffic = client_outs.iter().map(|c| c.stats).collect();
        report.per_user_compute = client_outs.iter().map(|c| c.compute).collect();
        report.wall_clock = started.elapsed();
        if plos_obs::enabled() {
            // One summary event unifying the client-side traffic counters
            // with the fault-tolerance counters of this run.
            let total = report
                .per_user_traffic
                .iter()
                .fold(TrafficStats::default(), |acc, s| acc.merged(s));
            plos_obs::emit(
                "traffic_summary",
                &[
                    ("bytes_sent", total.bytes_sent.into()),
                    ("bytes_received", total.bytes_received.into()),
                    ("bytes_discarded", total.bytes_discarded.into()),
                    ("messages_sent", total.messages_sent.into()),
                    ("messages_received", total.messages_received.into()),
                    ("decode_failures", total.decode_failures.into()),
                    ("protocol_errors", report.protocol_errors.into()),
                    ("late_discards", report.late_discards.into()),
                    ("evicted", report.evicted.len().into()),
                    ("participation_rate", report.participation_rate().into()),
                ],
            );
        }
        Ok((model, report))
    }

    /// The device thread: answer broadcasts with local solves until
    /// shutdown. Timeouts and corrupted frames just keep it listening — the
    /// server's retry layer re-broadcasts anything that mattered.
    fn client_loop(
        _config: &PlosConfig,
        user: usize,
        mut solver: LocalSolver,
        endpoint: Endpoint,
    ) -> ClientOutcome {
        let user = wire_u32(user);
        let mut compute = Duration::ZERO;
        loop {
            match endpoint.recv_timeout(CLIENT_IDLE) {
                Ok(Message::Broadcast { round, w0, u_t }) => {
                    if round == 0 {
                        // Init round: contribute a local hyperplane if this
                        // device has labels of both classes.
                        // plos-lint: allow(D2): per-device compute-time metering only
                        let start = Instant::now();
                        let w_init =
                            solver.initial_hyperplane().unwrap_or_else(|| Vector::zeros(w0.len()));
                        compute += start.elapsed();
                        let reply = Message::ClientUpdate {
                            round,
                            user,
                            w_t: w_init,
                            v_t: Vector::zeros(w0.len()),
                            xi_t: 0.0,
                        };
                        if endpoint.send(&reply).is_err() {
                            break;
                        }
                    } else {
                        // plos-lint: allow(D2): per-device compute-time metering only
                        let start = Instant::now();
                        // A failed local solve degrades this device to the
                        // consensus update rather than poisoning the
                        // protocol: the server keeps driving the other
                        // devices and this one rejoins next round.
                        let update =
                            solver.solve(&w0, &u_t).unwrap_or_else(|_| crate::local::LocalUpdate {
                                w_t: w0.clone(),
                                v_t: Vector::zeros(w0.len()),
                                xi_t: 0.0,
                            });
                        compute += start.elapsed();
                        let reply = Message::ClientUpdate {
                            round,
                            user,
                            w_t: update.w_t,
                            v_t: update.v_t,
                            xi_t: update.xi_t,
                        };
                        if endpoint.send(&reply).is_err() {
                            break;
                        }
                    }
                }
                Ok(Message::CccpAdvance { .. }) => solver.advance_cccp(),
                Ok(Message::Refine { round, w0 }) => {
                    // plos-lint: allow(D2): per-device compute-time metering only
                    let start = Instant::now();
                    let seed = solver.seed_for_round(round);
                    let update =
                        solver.refine(&w0, seed).unwrap_or_else(|_| crate::local::LocalUpdate {
                            w_t: w0.clone(),
                            v_t: Vector::zeros(w0.len()),
                            xi_t: 0.0,
                        });
                    compute += start.elapsed();
                    let reply = Message::ClientUpdate {
                        round,
                        user,
                        w_t: update.w_t,
                        v_t: update.v_t,
                        xi_t: update.xi_t,
                    };
                    if endpoint.send(&reply).is_err() {
                        break;
                    }
                }
                // The cohort shrank: rescale every T-dependent quantity,
                // notably κ = λ/T in the local objective.
                Ok(Message::RosterUpdate { t_count }) => {
                    solver.set_cohort_size(t_count as usize);
                }
                // Checkpoint resume: adopt the server's recorded CCCP anchor
                // and cohort size, then ack so the server knows this device
                // is repositioned before it replays the interrupted round.
                // The ack carries empty vectors — it is a liveness signal,
                // not an update.
                Ok(Message::Restore { round, t_count, w_t }) => {
                    solver.restore(w_t, t_count as usize);
                    let reply = Message::ClientUpdate {
                        round,
                        user,
                        w_t: Vector::zeros(0),
                        v_t: Vector::zeros(0),
                        xi_t: 0.0,
                    };
                    if endpoint.send(&reply).is_err() {
                        break;
                    }
                }
                // Devices never receive peer updates; drop the stray frame
                // rather than dying on a protocol hiccup.
                Ok(Message::ClientUpdate { .. }) => {}
                // Nothing from the server yet, or a frame corrupted in
                // flight: keep listening, the retry layer re-broadcasts.
                Err(TransportError::Timeout | TransportError::Codec(_)) => {}
                Ok(Message::Shutdown) | Err(TransportError::Disconnected) => break,
            }
        }
        ClientOutcome { stats: endpoint.stats(), compute }
    }

    /// The server thread: initialization (or checkpoint resume), CCCP × ADMM
    /// driving, shutdown. Every gather is a quorum round under the retry
    /// policy; every `T`-dependent scalar of Eq. (23)/(24) tracks the live
    /// cohort size. When `session` is set the consensus state is snapshotted
    /// after every ADMM iteration and refinement round.
    // Allowed: the resume/checkpoint plumbing genuinely needs the run
    // coordinates threaded through, and splitting the protocol driver would
    // scatter the round/phase invariants across functions.
    #[allow(clippy::too_many_arguments, clippy::too_many_lines)]
    fn server_loop(
        &self,
        ends: &[Endpoint],
        dim: usize,
        t_count: usize,
        plan: &FaultPlan,
        fingerprint: u64,
        resume: Option<Box<DistributedState>>,
        session: &mut Option<CkptSession>,
    ) -> Result<(PersonalizedModel, DistributedReport), CoreError> {
        let mut fleet = Fleet::new(plan.wrap_links(ends), self.fault_tolerance.clone());
        let mut server_compute = Duration::ZERO;
        let rho = self.config.rho;

        // Consensus state plus loop re-entry coordinates: either a fresh
        // initialization round, or everything restored from the snapshot.
        let mut w0;
        let mut us;
        let mut w_ts;
        let mut v_ts;
        let mut xi_ts;
        let mut anchors;
        let mut log: Vec<BroadcastRecord>;
        let mut history;
        let mut admm_iterations;
        let mut round;
        let mut converged;
        let mut cccp_rounds;
        let mut residuals: Vec<AdmmResiduals>;
        let start_cccp: usize;
        let resumed_iters: usize;
        let mut resumed_inner_done = false;
        let mut resumed_mid_cccp = false;
        let refine_start: u32;

        if let Some(state) = resume {
            let st = *state;
            fleet.restore_roster(&st);
            // A fresh thread exists for every device, including ones the
            // interrupted run already evicted; those must be told to exit or
            // the join at the end of the run would hang on them.
            for t in 0..t_count {
                if !fleet.is_alive(t) {
                    fleet.shutdown_device(t);
                }
            }
            // Reposition the survivors: each adopts its CCCP anchor and the
            // checkpointed cohort size, then acks (unrecorded — the
            // uninterrupted run never had these rounds).
            let cohort = wire_u32(fleet.alive_count());
            let restore_round = st.round;
            let restore_anchors = st.anchors.clone();
            let restore = move |t: usize| Message::Restore {
                round: restore_round,
                t_count: cohort,
                w_t: restore_anchors.get(t).cloned().unwrap_or_else(|| Vector::zeros(dim)),
            };
            fleet.send_alive(&restore);
            fleet.gather(restore_round, false, &restore, &mut |_t, _w, _v, _xi| {})?;
            // Replay the interrupted CCCP round's broadcasts so each device
            // rebuilds its working set bit for bit. Replies are discarded:
            // the checkpointed server state is authoritative.
            for rec in &st.log {
                let rec_round = rec.round;
                let rec_w0 = rec.w0.clone();
                let rec_us = rec.us.clone();
                let scatter = move |t: usize| Message::Broadcast {
                    round: rec_round,
                    w0: rec_w0.clone(),
                    u_t: rec_us.get(t).cloned().unwrap_or_else(|| Vector::zeros(dim)),
                };
                fleet.send_alive(&scatter);
                fleet.gather(rec_round, false, &scatter, &mut |_t, _w, _v, _xi| {})?;
            }

            w0 = st.w0;
            us = st.us;
            w_ts = st.w_ts;
            v_ts = st.v_ts;
            xi_ts = st.xi_ts;
            anchors = st.anchors;
            log = st.log;
            history = History::from_values(st.history);
            admm_iterations = st.admm_iterations as usize;
            round = st.round;
            converged = st.converged;
            cccp_rounds = st.cccp_rounds as usize;
            residuals = st
                .residuals
                .iter()
                .map(|&(r, primal, dual)| AdmmResiduals { round: r, primal, dual })
                .collect();
            match st.phase {
                DistributedPhase::Admm => {
                    start_cccp = st.cccp_round as usize;
                    resumed_iters = st.iters_done as usize;
                    resumed_inner_done = st.inner_done;
                    resumed_mid_cccp = true;
                    refine_start = 0;
                }
                DistributedPhase::Refine { rounds_done } => {
                    // CCCP finished before the snapshot; skip straight back
                    // into refinement.
                    start_cccp = self.config.max_cccp_rounds;
                    resumed_iters = 0;
                    refine_start = rounds_done;
                }
            }
        } else {
            // ---- Initialization round: average provider hyperplanes. ----
            let zero = Vector::zeros(dim);
            let init =
                |_t: usize| Message::Broadcast { round: 0, w0: zero.clone(), u_t: zero.clone() };
            fleet.send_alive(&init);
            let mut w_inits = vec![Vector::zeros(dim); t_count];
            fleet.gather(0, true, &init, &mut |t, w_t, _v_t, _xi_t| {
                if let Some(slot) = w_inits.get_mut(t) {
                    *slot = w_t;
                }
            })?;
            fleet.publish_roster();

            // plos-lint: allow(D2): server compute-time metering only
            let t0 = Instant::now();
            w0 = Vector::zeros(dim);
            let mut contributors = 0usize;
            for w_init in &w_inits {
                if w_init.norm() > 0.0 {
                    w0 += w_init;
                    contributors += 1;
                }
            }
            if contributors > 0 {
                w0.scale_mut(1.0 / contributors as f64);
            } else {
                // No provider anywhere: deterministic random init, mirroring
                // the centralized fallback.
                let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
                w0 = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let n = w0.norm();
                if n > 0.0 {
                    w0.scale_mut(1.0 / n);
                }
            }
            server_compute += t0.elapsed();

            us = vec![Vector::zeros(dim); t_count];
            w_ts = vec![Vector::zeros(dim); t_count];
            v_ts = vec![Vector::zeros(dim); t_count];
            xi_ts = vec![0.0f64; t_count];
            // CCCP round 0 anchors: devices linearize off the incoming w0
            // while their own w_t is still zero, and `LocalSolver::restore`
            // with a zero anchor reproduces exactly that state.
            anchors = vec![Vector::zeros(dim); t_count];
            log = Vec::new();
            history = History::new();
            admm_iterations = 0usize;
            round = 0u32;
            converged = false;
            cccp_rounds = 0usize;
            residuals = Vec::new();
            start_cccp = 0;
            resumed_iters = 0;
            refine_start = 0;
        }

        // ---- CCCP × ADMM ----
        for cccp_round in start_cccp..self.config.max_cccp_rounds {
            let resumed_round = resumed_mid_cccp && cccp_round == start_cccp;
            if !resumed_round {
                cccp_rounds += 1;
                if cccp_round > 0 {
                    fleet.send_alive(&|_t| Message::CccpAdvance {
                        cccp_round: wire_u32(cccp_round),
                    });
                    fleet.publish_roster();
                    // New linearization: devices re-anchor at their own w_t.
                    // Record the anchors and start a fresh replay log.
                    anchors = w_ts.clone();
                    log.clear();
                }
            }
            let iter_start = if resumed_round { resumed_iters } else { 0 };
            let inner_done = resumed_round && resumed_inner_done;
            for iter in iter_start..self.config.max_admm_iters {
                if inner_done {
                    // The snapshot was taken after the inner loop finished;
                    // only the objective push below remains for this round.
                    break;
                }
                round += 1;
                admm_iterations += 1;
                // Scatter; the same closure serves the retry re-broadcasts.
                // The replay log records what went out so a resumed server
                // can rebuild device state.
                log.push(BroadcastRecord { round, w0: w0.clone(), us: us.clone() });
                let scatter = |t: usize| Message::Broadcast {
                    round,
                    w0: w0.clone(),
                    u_t: us.get(t).cloned().unwrap_or_else(|| Vector::zeros(dim)),
                };
                fleet.send_alive(&scatter);
                // Quorum gather; a straggler's slot keeps its previous
                // (w_t, v_t, ξ_t) — the carry-forward state.
                fleet.gather(round, true, &scatter, &mut |t, w_t, v_t, xi_t| {
                    if let (Some(w), Some(v), Some(xi)) =
                        (w_ts.get_mut(t), v_ts.get_mut(t), xi_ts.get_mut(t))
                    {
                        *w = w_t;
                        *v = v_t;
                        *xi = xi_t;
                    }
                })?;
                fleet.publish_roster();

                // Eq. (23): closed-form z- and u-updates over the live
                // cohort; every T-dependent scalar uses the shrunk size.
                // plos-lint: allow(D2): server compute-time metering only
                let t0 = Instant::now();
                let cohort = fleet.alive_count() as f64;
                let mut w0_new = Vector::zeros(dim);
                for (t, ((w_t, v_t), u_t)) in w_ts.iter().zip(&v_ts).zip(&us).enumerate() {
                    if !fleet.is_alive(t) {
                        continue;
                    }
                    w0_new += w_t;
                    w0_new -= v_t;
                    w0_new += u_t;
                }
                w0_new.scale_mut(rho / (2.0 + cohort * rho));
                // Eq. (24): residuals.
                let sqrt_2t = (2.0 * cohort).sqrt();
                let sqrt_t = cohort.sqrt();
                let dual_residual = rho * sqrt_2t * w0_new.distance(&w0);
                let mut primal_sq = 0.0;
                for (t, (w_t, v_t)) in w_ts.iter().zip(&v_ts).enumerate() {
                    if !fleet.is_alive(t) {
                        continue;
                    }
                    let mut delta = w_t.clone();
                    delta -= &w0_new;
                    delta -= v_t;
                    // plos-lint: allow(D3): fold runs in fixed device-index order; this scalar trajectory is pinned by the golden digests
                    primal_sq += delta.norm_squared();
                    if let Some(u_t) = us.get_mut(t) {
                        *u_t += &delta;
                    }
                }
                w0 = w0_new;
                server_compute += t0.elapsed();

                let primal_residual = primal_sq.sqrt();
                residuals.push(AdmmResiduals {
                    round,
                    primal: primal_residual,
                    dual: dual_residual,
                });
                if plos_obs::enabled() {
                    let part = fleet.participation.last().copied();
                    plos_obs::emit(
                        "admm_round",
                        &[
                            ("round", round.into()),
                            ("primal_residual", primal_residual.into()),
                            ("dual_residual", dual_residual.into()),
                            ("replied", part.map_or(0, |p| p.replied).into()),
                            ("alive", part.map_or(0, |p| p.alive).into()),
                            ("retries", part.map_or(0, |p| p.retries).into()),
                        ],
                    );
                    plos_obs::counter_add("distributed.admm_rounds", 1);
                }

                let residuals_met = dual_residual <= sqrt_2t * self.config.eps_abs
                    && primal_residual <= sqrt_t * self.config.eps_abs;
                if let Some(sess) = session.as_mut() {
                    let (alive, missed, evicted, participation) = fleet.export_roster();
                    let snapshot = DistributedState {
                        fingerprint,
                        phase: DistributedPhase::Admm,
                        round,
                        cccp_round: wire_u32(cccp_round),
                        iters_done: wire_u32(iter + 1),
                        inner_done: residuals_met || iter + 1 == self.config.max_admm_iters,
                        admm_iterations: admm_iterations as u64,
                        cccp_rounds: wire_u32(cccp_rounds),
                        converged,
                        w0: w0.clone(),
                        us: us.clone(),
                        w_ts: w_ts.clone(),
                        v_ts: v_ts.clone(),
                        xi_ts: xi_ts.clone(),
                        anchors: anchors.clone(),
                        log: log.clone(),
                        alive,
                        missed,
                        evicted,
                        participation,
                        protocol_errors: fleet.protocol_errors,
                        late_discards: fleet.late_discards,
                        history: history.values().to_vec(),
                        residuals: residuals.iter().map(|r| (r.round, r.primal, r.dual)).collect(),
                    };
                    sess.save(&snapshot.encode())?;
                }
                if residuals_met {
                    break;
                }
            }

            // Objective L (Eq. 23, third line), over the live cohort.
            let kappa = self.config.lambda / fleet.alive_count() as f64;
            let objective = w0.norm_squared()
                + kappa
                    * v_ts
                        .iter()
                        .enumerate()
                        .filter(|(t, _)| fleet.is_alive(*t))
                        .map(|(_, v_t)| v_t.norm_squared())
                        .sum::<f64>()
                + xi_ts
                    .iter()
                    .enumerate()
                    .filter(|(t, _)| fleet.is_alive(*t))
                    .map(|(_, xi_t)| *xi_t)
                    .sum::<f64>();
            history.push(objective);
            plos_obs::emit(
                "cccp_round",
                &[("round", cccp_rounds.into()), ("objective", objective.into())],
            );
            if history.converged(self.config.cccp_tol) {
                converged = true;
                break;
            }
        }

        // ---- Refinement: multi-start per-device re-solve + closed-form w0
        // block updates (same messages, still only model parameters). ----
        for refine_round in refine_start as usize..self.config.refine_rounds {
            round += 1;
            let refine = |_t: usize| Message::Refine { round, w0: w0.clone() };
            fleet.send_alive(&refine);
            fleet.gather(round, true, &refine, &mut |t, w_t, v_t, xi_t| {
                if let (Some(w), Some(v), Some(xi)) =
                    (w_ts.get_mut(t), v_ts.get_mut(t), xi_ts.get_mut(t))
                {
                    *w = w_t;
                    *v = v_t;
                    *xi = xi_t;
                }
            })?;
            fleet.publish_roster();

            // plos-lint: allow(D2): server compute-time metering only
            let t0 = Instant::now();
            let cohort = fleet.alive_count() as f64;
            let mut mean = Vector::zeros(dim);
            for (t, w_t) in w_ts.iter().enumerate() {
                if !fleet.is_alive(t) {
                    continue;
                }
                mean += w_t;
            }
            mean.scale_mut(1.0 / cohort);
            w0 = mean.scaled(self.config.lambda / (1.0 + self.config.lambda));
            server_compute += t0.elapsed();
            // xi_ts now carry true local losses, so this is the true
            // objective in the problem-(3) scale.
            let kappa = self.config.lambda / cohort;
            let objective = w0.norm_squared()
                + kappa
                    * w_ts
                        .iter()
                        .enumerate()
                        .filter(|(t, _)| fleet.is_alive(*t))
                        .map(|(_, w_t)| w_t.distance_squared(&w0))
                        .sum::<f64>()
                + xi_ts
                    .iter()
                    .enumerate()
                    .filter(|(t, _)| fleet.is_alive(*t))
                    .map(|(_, xi_t)| *xi_t)
                    .sum::<f64>();
            history.push(objective);
            plos_obs::emit(
                "refine_round",
                &[("round", (refine_round + 1).into()), ("objective", objective.into())],
            );
            if let Some(sess) = session.as_mut() {
                let (alive, missed, evicted, participation) = fleet.export_roster();
                let snapshot = DistributedState {
                    fingerprint,
                    phase: DistributedPhase::Refine { rounds_done: wire_u32(refine_round + 1) },
                    round,
                    cccp_round: wire_u32(cccp_rounds.saturating_sub(1)),
                    iters_done: 0,
                    inner_done: true,
                    admm_iterations: admm_iterations as u64,
                    cccp_rounds: wire_u32(cccp_rounds),
                    converged,
                    w0: w0.clone(),
                    us: us.clone(),
                    // Refinement anchors each device at its own last w_t, so
                    // that is what a resumed server must hand back.
                    w_ts: w_ts.clone(),
                    v_ts: v_ts.clone(),
                    xi_ts: xi_ts.clone(),
                    anchors: w_ts.clone(),
                    log: Vec::new(),
                    alive,
                    missed,
                    evicted,
                    participation,
                    protocol_errors: fleet.protocol_errors,
                    late_discards: fleet.late_discards,
                    history: history.values().to_vec(),
                    residuals: residuals.iter().map(|r| (r.round, r.primal, r.dual)).collect(),
                };
                sess.save(&snapshot.encode())?;
            }
        }

        fleet.shutdown();
        // The run completed: drop the snapshot so the next run starts fresh
        // instead of resuming a finished trajectory.
        if let Some(sess) = &*session {
            sess.clear()?;
        }

        // Personalized hyperplanes are exactly the devices' final w_t. A
        // device evicted before it ever reported one falls back to the
        // global model (zero bias).
        let biases: Vec<Vector> =
            w_ts.iter()
                .enumerate()
                .map(|(t, w_t)| {
                    if fleet.is_alive(t) || w_t.norm() > 0.0 {
                        w_t - &w0
                    } else {
                        Vector::zeros(dim)
                    }
                })
                .collect();
        let degraded =
            !fleet.evicted.is_empty() || fleet.participation.iter().any(|p| p.replied < p.alive);
        let model = PersonalizedModel::new(w0, biases, self.config.bias);
        let report = DistributedReport {
            per_user_traffic: Vec::new(), // filled by fit()
            admm_iterations,
            cccp_rounds,
            history,
            converged,
            per_user_compute: Vec::new(), // filled by fit()
            server_compute,
            wall_clock: Duration::ZERO, // filled by fit()
            degraded,
            evicted: fleet.evicted.clone(),
            participation: fleet.participation.clone(),
            protocol_errors: fleet.protocol_errors,
            late_discards: fleet.late_discards,
            residuals,
        };
        Ok((model, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    fn dataset(users: usize, providers: usize) -> MultiUserDataset {
        let spec = SyntheticSpec {
            num_users: users,
            points_per_class: 25,
            max_rotation: std::f64::consts::FRAC_PI_4,
            flip_prob: 0.05,
        };
        generate_synthetic(&spec, 13).mask_labels(&LabelMask::providers(providers, 0.2), 4)
    }

    fn accuracy(model: &PersonalizedModel, dataset: &MultiUserDataset) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (t, u) in dataset.users().iter().enumerate() {
            for (x, &y) in u.features.iter().zip(&u.truth) {
                if model.predict(t, x) == y {
                    correct += 1;
                }
                total += 1;
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn distributed_training_learns() {
        let data = dataset(4, 2);
        let (model, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let acc = accuracy(&model, &data);
        assert!(acc > 0.8, "accuracy {acc}");
        assert!(report.admm_iterations > 0);
        assert_eq!(report.per_user_traffic.len(), 4);
        assert_eq!(report.per_user_compute.len(), 4);
    }

    #[test]
    fn fault_free_run_is_not_degraded() {
        let data = dataset(3, 2);
        let (_, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert!(!report.degraded);
        assert!(report.evicted.is_empty());
        assert_eq!(report.protocol_errors, 0);
        assert_eq!(report.late_discards, 0);
        assert!(!report.participation.is_empty());
        assert!(report.participation.iter().all(|p| p.replied == 3 && p.alive == 3));
        assert!(report.participation.iter().all(|p| p.retries == 0));
        assert_eq!(report.participation_rate(), 1.0);
    }

    #[test]
    fn traffic_is_model_parameters_only() {
        let data = dataset(3, 2);
        let (_, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        // Upper bound: every client message carries at most 2 vectors + a
        // few scalars per round, so bytes/user stays far below the raw data
        // size (25*2 samples × 2 dims × 8 bytes would already be 800 B per
        // single exchange if data were shipped; instead the total per round
        // pair is ~2×(2×(4+2·8)+...)).
        for stats in &report.per_user_traffic {
            let rounds = report.admm_iterations as u64 + 2; // + init + cccp msgs
            let per_round = stats.total_bytes() / rounds.max(1);
            // One broadcast + one update, each ≈ 2 vectors of dim 3 (+bias).
            assert!(per_round < 300, "per-round bytes {per_round}");
            assert!(stats.messages_sent > 0 && stats.messages_received > 0);
        }
    }

    #[test]
    fn matches_centralized_accuracy_closely() {
        // The paper's Fig. 11: |acc(dist) − acc(cent)| ≈ 0.
        let data = dataset(5, 3);
        let config = PlosConfig::fast();
        let central = crate::CentralizedPlos::new(config.clone()).fit(&data).unwrap();
        let (dist, _) = DistributedPlos::new(config).fit(&data).unwrap();
        let gap = (accuracy(&central, &data) - accuracy(&dist, &data)).abs();
        assert!(gap < 0.08, "accuracy gap {gap}");
    }

    #[test]
    fn consensus_is_reached() {
        let data = dataset(4, 2);
        let (model, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert!(report.cccp_rounds >= 1);
        // w_t = w0 + v_t by construction; personalization stays bounded.
        for t in 0..4 {
            assert!(model.personalized_hyperplane(t).is_finite());
        }
    }

    #[test]
    fn works_with_zero_providers() {
        let spec =
            SyntheticSpec { num_users: 3, points_per_class: 20, max_rotation: 0.1, flip_prob: 0.0 };
        let data = generate_synthetic(&spec, 5);
        let (model, _) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let acc = accuracy(&model, &data);
        // Clustering orientation is arbitrary without labels.
        let acc = acc.max(1.0 - acc);
        assert!(acc > 0.75, "clustering accuracy {acc}");
    }

    #[test]
    fn single_user_works() {
        let data = dataset(1, 1);
        let (model, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert_eq!(model.num_users(), 1);
        assert_eq!(report.per_user_traffic.len(), 1);
        assert!(accuracy(&model, &data) > 0.8);
    }

    #[test]
    fn report_helpers() {
        let data = dataset(3, 2);
        let (_, report) = DistributedPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        assert!(report.max_client_compute() >= Duration::ZERO);
        assert!(report.mean_user_kb() > 0.0);
        assert!(report.wall_clock > Duration::ZERO);
    }

    #[test]
    fn invalid_fault_plan_is_rejected_gracefully() {
        let data = dataset(2, 1);
        let plan = FaultPlan::none().with_drop(1.5);
        let err =
            DistributedPlos::new(PlosConfig::fast()).fit_with_faults(&data, &plan).unwrap_err();
        assert!(matches!(err, CoreError::Protocol { .. }), "got {err:?}");
    }

    fn model_bits(model: &PersonalizedModel) -> Vec<u64> {
        let mut bits: Vec<u64> = model.global_hyperplane().iter().map(|c| c.to_bits()).collect();
        for v in model.personal_biases() {
            bits.extend(v.iter().map(|c| c.to_bits()));
        }
        bits
    }

    #[test]
    fn killed_and_resumed_distributed_run_matches_uninterrupted_bit_for_bit() {
        use crate::checkpoint::CheckpointPolicy;
        let data = dataset(3, 2);
        let config = PlosConfig::fast();
        let (reference, ref_report) = DistributedPlos::new(config.clone()).fit(&data).unwrap();

        let dir =
            std::env::temp_dir().join(format!("plos-distributed-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Three seams: mid-ADMM, right at the inner-loop/objective boundary,
        // and after the final refinement snapshot (everything done but the
        // model assembly). Checkpoints are one per ADMM iteration plus one
        // per refinement round.
        let admm = ref_report.admm_iterations as u32;
        for kill_after in [2, admm, admm + 1] {
            let killed = DistributedPlos::new(config.clone())
                .with_checkpointing(CheckpointPolicy::new(&dir).abort_after(kill_after))
                .fit(&data);
            assert!(
                matches!(killed, Err(CoreError::Interrupted { .. })),
                "kill switch must fire at {kill_after}, got {killed:?}"
            );
            let (resumed, report) = DistributedPlos::new(config.clone())
                .with_checkpointing(CheckpointPolicy::new(&dir))
                .fit(&data)
                .unwrap();
            assert_eq!(
                model_bits(&resumed),
                model_bits(&reference),
                "resume after {kill_after} checkpoint(s) diverged"
            );
            assert_eq!(report.history.values(), ref_report.history.values());
            assert_eq!(report.admm_iterations, ref_report.admm_iterations);
            assert_eq!(report.cccp_rounds, ref_report.cccp_rounds);
            assert_eq!(report.converged, ref_report.converged);
            assert_eq!(report.residuals, ref_report.residuals);
            assert_eq!(report.participation, ref_report.participation);
            assert!(!report.degraded);
            // Successful completion clears the snapshot for the next seam.
            assert!(!dir.join("distributed.ckpt").exists());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_distributed_checkpoint_is_rejected_not_ignored() {
        use crate::checkpoint::CheckpointPolicy;
        let data = dataset(3, 2);
        let dir =
            std::env::temp_dir().join(format!("plos-distributed-mismatch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = PlosConfig::fast();
        let killed = DistributedPlos::new(config.clone())
            .with_checkpointing(CheckpointPolicy::new(&dir).abort_after(1))
            .fit(&data);
        assert!(matches!(killed, Err(CoreError::Interrupted { .. })));

        // A different rho changes the ADMM trajectory: the stale snapshot
        // must be refused with a typed error, not silently resumed.
        let other = PlosConfig { rho: config.rho * 2.0, ..config };
        let resumed =
            DistributedPlos::new(other).with_checkpointing(CheckpointPolicy::new(&dir)).fit(&data);
        assert!(
            matches!(resumed, Err(CoreError::Ckpt(_))),
            "expected a checkpoint context error, got {resumed:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_device_degrades_but_completes() {
        let data = dataset(4, 3);
        let plan = FaultPlan::seeded(11).with_dead_link(3, 0);
        let trainer = DistributedPlos::new(PlosConfig::fast())
            .with_fault_tolerance(FaultTolerance::fast().with_quorum(0.7));
        let (model, report) = trainer.fit_with_faults(&data, &plan).unwrap();
        assert!(report.degraded);
        assert_eq!(report.evicted, vec![3]);
        assert_eq!(model.num_users(), 4, "evicted devices still get a model");
        assert!(model.personalized_hyperplane(3).is_finite());
    }
}
