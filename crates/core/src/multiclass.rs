//! Multi-class personalized learning via one-vs-rest PLOS.
//!
//! The paper trains binary personalized classifiers and lists extending the
//! framework "to other machine learning models" as future work (Sec. VII).
//! This module provides the canonical extension: one PLOS model per class in
//! a one-vs-rest arrangement, predicting by the largest personalized
//! decision value. Everything personalizes exactly as in the binary case —
//! each user gets `k` hyperplanes `w_t^{(c)} = w0^{(c)} + v_t^{(c)}`.

use crate::centralized::CentralizedPlos;
use crate::config::PlosConfig;
use crate::error::CoreError;
use crate::model::PersonalizedModel;
use plos_linalg::Vector;
use plos_sensing::multiclass::MultiClassDataset;

/// A trained one-vs-rest PLOS classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticlassModel {
    per_class: Vec<PersonalizedModel>,
}

impl MulticlassModel {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.per_class.len()
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.per_class.first().map_or(0, PersonalizedModel::num_users)
    }

    /// The binary PLOS model of one class.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    // Allowed: documented panicking accessor; out-of-range `class` is a
    // caller bug, as in slice indexing.
    #[allow(clippy::indexing_slicing)]
    pub fn class_model(&self, class: usize) -> &PersonalizedModel {
        &self.per_class[class]
    }

    /// Per-class decision values of user `t` on `x`.
    pub fn decision_values(&self, t: usize, x: &Vector) -> Vec<f64> {
        self.per_class.iter().map(|m| m.decision(t, x)).collect()
    }

    /// Predicted class id for user `t` (arg-max decision; ties break to the
    /// lowest class id).
    pub fn predict(&self, t: usize, x: &Vector) -> usize {
        let scores = self.decision_values(t, x);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (c, &s) in scores.iter().enumerate() {
            if s > best_score {
                best = c;
                best_score = s;
            }
        }
        best
    }

    /// Batch prediction for user `t`.
    pub fn predict_batch(&self, t: usize, xs: &[Vector]) -> Vec<usize> {
        xs.iter().map(|x| self.predict(t, x)).collect()
    }
}

/// One-vs-rest PLOS trainer.
#[derive(Debug, Clone)]
pub struct MulticlassPlos {
    config: PlosConfig,
}

impl MulticlassPlos {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn new(config: PlosConfig) -> Self {
        config.validate();
        MulticlassPlos { config }
    }

    /// Trains `k` binary PLOS models, one per class.
    ///
    /// # Errors
    ///
    /// Propagates the first failure of any per-class binary trainer.
    pub fn fit(&self, dataset: &MultiClassDataset) -> Result<MulticlassModel, CoreError> {
        let per_class = (0..dataset.num_classes())
            .map(|class| {
                let binary = dataset.one_vs_rest(class);
                // Salt the seed per class so refinement restarts differ.
                let mut config = self.config.clone();
                config.seed = config.seed.wrapping_add(class as u64 * 7919);
                CentralizedPlos::new(config).fit(&binary)
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(MulticlassModel { per_class })
    }
}

/// Mean per-user multi-class accuracy, split by provider status (mirrors
/// the binary harness in [`crate::eval`]).
pub fn multiclass_accuracy(
    model: &MulticlassModel,
    dataset: &MultiClassDataset,
) -> (Option<f64>, Option<f64>) {
    let mut labeled = Vec::new();
    let mut unlabeled = Vec::new();
    for (t, user) in dataset.users().iter().enumerate() {
        let preds = model.predict_batch(t, &user.features);
        let correct = preds.iter().zip(&user.truth).filter(|(p, y)| p == y).count();
        let acc = correct as f64 / user.num_samples() as f64;
        if user.is_provider() {
            labeled.push(acc);
        } else {
            unlabeled.push(acc);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    };
    (mean(&labeled), mean(&unlabeled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::multiclass::{generate_multiclass, MultiClassSpec};

    fn cohort() -> MultiClassDataset {
        let spec = MultiClassSpec {
            num_users: 4,
            num_classes: 3,
            samples_per_class: 15,
            dim: 8,
            class_radius: 3.0,
            noise_std: 0.8,
            personal_variation: 0.2,
        };
        generate_multiclass(&spec, 5).mask_labels(&LabelMask::providers(3, 0.3), 2)
    }

    #[test]
    fn shape_of_trained_model() {
        let model = MulticlassPlos::new(PlosConfig::fast()).fit(&cohort()).unwrap();
        assert_eq!(model.num_classes(), 3);
        assert_eq!(model.num_users(), 4);
        for c in 0..3 {
            assert_eq!(model.class_model(c).num_users(), 4);
        }
    }

    #[test]
    fn learns_separated_classes() {
        let data = cohort();
        let model = MulticlassPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let (labeled, unlabeled) = multiclass_accuracy(&model, &data);
        // Chance is 1/3; providers must be far above it.
        assert!(labeled.unwrap() > 0.7, "labeled accuracy {labeled:?}");
        assert!(unlabeled.unwrap() > 0.4, "unlabeled accuracy {unlabeled:?}");
    }

    #[test]
    fn decision_values_have_one_entry_per_class() {
        let data = cohort();
        let model = MulticlassPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let scores = model.decision_values(0, &data.user(0).features[0]);
        assert_eq!(scores.len(), 3);
        let pred = model.predict(0, &data.user(0).features[0]);
        assert!(pred < 3);
    }

    #[test]
    fn predictions_cover_all_classes_on_balanced_data() {
        let data = cohort();
        let model = MulticlassPlos::new(PlosConfig::fast()).fit(&data).unwrap();
        let preds = model.predict_batch(0, &data.user(0).features);
        let mut seen = [false; 3];
        for p in preds {
            seen[p] = true;
        }
        assert!(seen.iter().all(|&s| s), "some class never predicted: {seen:?}");
    }
}
