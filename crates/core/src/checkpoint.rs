//! Run-level checkpoint policy for the PLOS trainers.
//!
//! Both trainers accept an optional [`CheckpointPolicy`]: when one is set
//! (explicitly, or via the `PLOS_CKPT_DIR` environment variable) the
//! centralized trainer snapshots its state after every CCCP and refinement
//! round, and the distributed server snapshots after every ADMM iteration
//! and refinement round — server-side state only, never device-local data.
//! A later run with the same policy finds the snapshot, verifies it, and
//! resumes mid-run with **bit-parity**: the resumed run's final model is
//! bit-identical to the uninterrupted run's (see `DESIGN.md` §10).
//!
//! Corrupted, truncated, or structurally mismatched checkpoints surface as
//! [`CoreError::Ckpt`] — a damaged snapshot is never silently ignored and
//! never silently restarted from scratch; delete it (or point the policy at
//! another directory) to start fresh.

use crate::config::PlosConfig;
use crate::error::CoreError;
use plos_ckpt::{CheckpointFile, CkptError, Fnv1a, Store};
use std::path::PathBuf;

/// Name of the environment variable holding the default checkpoint
/// directory. When set, trainers without an explicit policy checkpoint
/// there.
pub const CKPT_DIR_ENV: &str = "PLOS_CKPT_DIR";

/// Where and how a trainer checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    dir: PathBuf,
    abort_after: Option<u32>,
}

impl CheckpointPolicy {
    /// Checkpoints into `dir` after every outer round, with no deliberate
    /// interruption.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointPolicy { dir: dir.into(), abort_after: None }
    }

    /// Policy from the `PLOS_CKPT_DIR` environment variable, if set and
    /// non-empty.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        match std::env::var(CKPT_DIR_ENV) {
            Ok(dir) if !dir.is_empty() => Some(CheckpointPolicy::new(dir)),
            _ => None,
        }
    }

    /// Kill switch for resume testing: abort the run with
    /// [`CoreError::Interrupted`] immediately after the `n`-th checkpoint is
    /// written. The checkpoint on disk at that moment is complete and valid,
    /// simulating a process killed between rounds.
    #[must_use]
    pub fn abort_after(mut self, n: u32) -> Self {
        self.abort_after = Some(n);
        self
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Opens a per-run session writing checkpoints under `name`.
    pub(crate) fn session(&self, name: &str) -> CkptSession {
        CkptSession {
            store: Store::new(self.dir.clone()),
            name: name.to_string(),
            abort_after: self.abort_after,
            written: 0,
        }
    }
}

/// Mutable per-run checkpointing state: counts writes so the `abort_after`
/// kill switch can fire deterministically.
#[derive(Debug)]
pub(crate) struct CkptSession {
    store: Store,
    name: String,
    abort_after: Option<u32>,
    written: u32,
}

impl CkptSession {
    /// Saves a snapshot; fires [`CoreError::Interrupted`] when the policy's
    /// kill switch is reached (the snapshot is on disk first).
    pub(crate) fn save(&mut self, file: &CheckpointFile) -> Result<(), CoreError> {
        self.store.save(&self.name, file)?;
        self.written += 1;
        if let Some(n) = self.abort_after {
            if self.written >= n {
                return Err(CoreError::Interrupted { checkpoints: self.written });
            }
        }
        Ok(())
    }

    /// Loads this run's snapshot, if one exists.
    pub(crate) fn load(&self) -> Result<Option<CheckpointFile>, CoreError> {
        Ok(self.store.load(&self.name)?)
    }

    /// Removes this run's snapshot after successful completion so the next
    /// run starts fresh.
    pub(crate) fn clear(&self) -> Result<(), CoreError> {
        Ok(self.store.remove(&self.name)?)
    }
}

/// Structural fingerprint of a run: solver kind, cohort shape, and every
/// config scalar that influences the trajectory. Deliberately excludes the
/// training data itself — hashing features would defeat the privacy story
/// and the shape plus hyperparameters is what determines whether a
/// checkpoint belongs to this run.
pub(crate) fn run_fingerprint(kind: u8, t_count: usize, dim: usize, config: &PlosConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&[kind]);
    h.write_u64(t_count as u64);
    h.write_u64(dim as u64);
    h.write_f64(config.lambda);
    h.write_f64(config.c_labeled);
    h.write_f64(config.c_unlabeled);
    h.write_f64(config.eps);
    h.write_u64(config.max_cutting_rounds as u64);
    h.write_f64(config.cccp_tol);
    h.write_u64(config.max_cccp_rounds as u64);
    match config.bias {
        Some(b) => {
            h.write(&[1]);
            h.write_f64(b);
        }
        None => h.write(&[0]),
    }
    h.write_f64(config.qp.tol);
    h.write_u64(config.qp.max_sweeps as u64);
    h.write_f64(config.rho);
    h.write_f64(config.eps_abs);
    h.write_u64(config.max_admm_iters as u64);
    h.write_f64(config.balance);
    h.write_u64(config.restarts as u64);
    h.write_u64(config.refine_rounds as u64);
    h.write_u64(config.seed);
    h.finish()
}

/// Checks a loaded snapshot's fingerprint against the current run's.
pub(crate) fn check_fingerprint(found: u64, expected: u64) -> Result<(), CoreError> {
    if found != expected {
        return Err(CoreError::Ckpt(CkptError::ContextMismatch {
            detail: format!(
                "checkpoint fingerprint {found:016x} does not match this run \
                 ({expected:016x}); dataset shape or configuration changed"
            ),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("plos-core-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fingerprint_is_sensitive_to_shape_and_config() {
        let cfg = PlosConfig::fast();
        let base = run_fingerprint(1, 4, 10, &cfg);
        assert_eq!(base, run_fingerprint(1, 4, 10, &cfg), "fingerprint must be deterministic");
        assert_ne!(base, run_fingerprint(2, 4, 10, &cfg), "kind must matter");
        assert_ne!(base, run_fingerprint(1, 5, 10, &cfg), "cohort size must matter");
        assert_ne!(base, run_fingerprint(1, 4, 11, &cfg), "dimension must matter");
        let other = PlosConfig { seed: cfg.seed + 1, ..cfg.clone() };
        assert_ne!(base, run_fingerprint(1, 4, 10, &other), "seed must matter");
        let none_bias = PlosConfig { bias: None, ..cfg };
        assert_ne!(base, run_fingerprint(1, 4, 10, &none_bias), "bias option must matter");
    }

    #[test]
    fn fingerprint_mismatch_is_a_typed_error() {
        assert!(check_fingerprint(1, 1).is_ok());
        assert!(matches!(
            check_fingerprint(1, 2),
            Err(CoreError::Ckpt(CkptError::ContextMismatch { .. }))
        ));
    }

    #[test]
    fn abort_after_fires_exactly_at_the_threshold() {
        let dir = tmpdir("abort");
        let policy = CheckpointPolicy::new(&dir).abort_after(2);
        let mut session = policy.session("run");
        let file = CheckpointFile::new();
        assert!(session.save(&file).is_ok());
        assert_eq!(
            session.save(&file),
            Err(CoreError::Interrupted { checkpoints: 2 }),
            "second save must trip the kill switch"
        );
        // The checkpoint written right before the abort is intact.
        assert!(session.load().unwrap().is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_the_snapshot() {
        let dir = tmpdir("clear");
        let policy = CheckpointPolicy::new(&dir);
        let mut session = policy.session("run");
        session.save(&CheckpointFile::new()).unwrap();
        session.clear().unwrap();
        assert!(session.load().unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn from_env_requires_the_variable() {
        // Avoid mutating the process environment (other tests run in
        // parallel): only assert the negative path when the variable is
        // absent in the test environment.
        if std::env::var(CKPT_DIR_ENV).is_err() {
            assert!(CheckpointPolicy::from_env().is_none());
        }
    }
}
