//! Shared internal machinery of the PLOS optimization problem.
//!
//! Both trainers manipulate the same objects:
//!
//! * prepared per-user data (bias-augmented features, split into labeled and
//!   unlabeled index sets);
//! * CCCP **sign patterns** `sign(w_t⁽ᵏ⁾ · x_it)` for unlabeled samples
//!   (Eq. 10);
//! * **aggregated constraints** `(s, c)` — Eq. (17)/(18) restricted to one
//!   user's block of the feature map: a selector `c_t ∈ {0,1}^{m_t}` yields
//!   `s = (1/m_t)(C_l Σ c_i y_i x_i + C_u Σ c_i sign_i x_i)` and
//!   `c = (1/m_t)(C_l Σ c_i + C_u Σ c_i)`, with the primal constraint
//!   reading `s · w_t ≥ c − ξ_t`;
//! * the **most-violated-constraint oracle** of Eq. (14);
//! * the true (non-convexified) per-user loss used to monitor CCCP.

use crate::config::PlosConfig;
use plos_linalg::Vector;
use plos_sensing::dataset::MultiUserDataset;

/// One aggregated cutting-plane constraint `s · w_t ≥ c − ξ_t`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Aggregated direction `s` (user-block restriction of Eq. 17).
    pub s: Vector,
    /// Aggregated right-hand side `c` (Eq. 18).
    pub c: f64,
}

/// One user's data prepared for optimization.
#[derive(Debug, Clone)]
pub struct PreparedUser {
    /// Bias-augmented feature vectors.
    pub features: Vec<Vector>,
    /// `(sample index, label)` for labeled samples.
    pub labeled: Vec<(usize, f64)>,
    /// Sample indices without labels.
    pub unlabeled: Vec<usize>,
}

impl PreparedUser {
    /// Total sample count `m_t`.
    pub fn num_samples(&self) -> usize {
        self.features.len()
    }
}

/// The full prepared problem.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// Users in dataset order.
    pub users: Vec<PreparedUser>,
    /// Augmented feature dimension.
    pub dim: usize,
}

/// Prepares a dataset: applies bias augmentation and splits label sets.
pub fn prepare(dataset: &MultiUserDataset, bias: Option<f64>) -> Prepared {
    let users = dataset
        .users()
        .iter()
        .map(|u| {
            let features: Vec<Vector> = match bias {
                Some(b) => u.features.iter().map(|x| x.with_appended(b)).collect(),
                None => u.features.clone(),
            };
            let mut labeled = Vec::new();
            let mut unlabeled = Vec::new();
            for (i, obs) in u.observed.iter().enumerate() {
                match obs {
                    Some(y) => labeled.push((i, *y as f64)),
                    None => unlabeled.push(i),
                }
            }
            PreparedUser { features, labeled, unlabeled }
        })
        .collect::<Vec<_>>();
    let dim = users.first().and_then(|u| u.features.first()).map_or(0, Vector::len);
    Prepared { users, dim }
}

/// CCCP sign pattern for one user: `sign(w_t · x_i)` for each unlabeled
/// sample, aligned with `user.unlabeled`. `sign(0)` is taken as `+1`.
// Allowed: `user.labeled` and `user.unlabeled` are built in [`prepare`] by
// enumerating the same `features` vector, so every stored sample index is in
// bounds by construction.
#[allow(clippy::indexing_slicing)]
pub fn compute_signs(user: &PreparedUser, w_t: &Vector) -> Vec<f64> {
    user.unlabeled
        .iter()
        .map(|&i| if w_t.dot(&user.features[i]) >= 0.0 { 1.0 } else { -1.0 })
        .collect()
}

/// The most violated constraint for one user (Eq. 14): select every labeled
/// sample with functional margin `y_i (w_t·x_i) < 1` and every unlabeled
/// sample with linearized margin `sign_i (w_t·x_i) < 1`, then aggregate.
///
/// Returns the constraint together with its violation against the current
/// slack, `(c − s·w_t) − ξ_t`; the caller adds the constraint only when the
/// violation exceeds `ε`.
///
/// # Panics
///
/// Panics if `signs.len() != user.unlabeled.len()`.
// Allowed: `user.labeled` and `user.unlabeled` are built in [`prepare`] by
// enumerating the same `features` vector, so every stored sample index is in
// bounds by construction.
#[allow(clippy::indexing_slicing)]
pub fn most_violated_constraint(
    user: &PreparedUser,
    signs: &[f64],
    w_t: &Vector,
    xi_t: f64,
    config: &PlosConfig,
) -> (Constraint, f64) {
    assert_eq!(signs.len(), user.unlabeled.len(), "sign pattern length mismatch");
    let m = user.num_samples() as f64;
    let mut s = Vector::zeros(w_t.len());
    let mut c = 0.0;
    for &(i, y) in &user.labeled {
        let x = &user.features[i];
        if y * w_t.dot(x) < 1.0 {
            s.axpy(config.c_labeled / m * y, x);
            // plos-lint: allow(D3): running subgradient coefficient in fixed sample order; part of the blessed numeric trajectory
            c += config.c_labeled / m;
        }
    }
    for (&i, &sign) in user.unlabeled.iter().zip(signs) {
        let x = &user.features[i];
        if sign * w_t.dot(x) < 1.0 {
            s.axpy(config.c_unlabeled / m * sign, x);
            // plos-lint: allow(D3): running subgradient coefficient in fixed sample order; part of the blessed numeric trajectory
            c += config.c_unlabeled / m;
        }
    }
    let violation = (c - s.dot(w_t)) - xi_t;
    (Constraint { s, c }, violation)
}

/// The class-balance constraints of maximum-margin clustering (Xu et al.
/// 2005) for one user: `|w · x̄| ≤ ℓ` with `x̄` the mean of the user's
/// unlabeled samples, expressed as the two half-space constraints
/// `(−x̄)·w ≥ −ℓ` and `x̄·w ≥ −ℓ`.
///
/// These are *hard* constraints — no slack variable — so the duals treat
/// their multipliers as unbounded (still `≥ 0`). Returns an empty vector
/// when the user has no unlabeled samples or the bound is infinite.
// Allowed: `user.labeled` and `user.unlabeled` are built in [`prepare`] by
// enumerating the same `features` vector, so every stored sample index is in
// bounds by construction.
#[allow(clippy::indexing_slicing)]
pub fn balance_constraints(user: &PreparedUser, bound: f64) -> Vec<Constraint> {
    if user.unlabeled.is_empty() || !bound.is_finite() {
        return Vec::new();
    }
    let dim = user.features.first().map_or(0, Vector::len);
    let mut mean = Vector::zeros(dim);
    for &i in &user.unlabeled {
        mean += &user.features[i];
    }
    mean.scale_mut(1.0 / user.unlabeled.len() as f64);
    vec![Constraint { s: -&mean, c: -bound }, Constraint { s: mean, c: -bound }]
}

/// The slack `ξ_t` implied by a working set: `max(0, max_k (c_k − s_k·w_t))`.
pub fn slack_for(constraints: &[Constraint], w_t: &Vector) -> f64 {
    constraints.iter().map(|k| k.c - k.s.dot(w_t)).fold(0.0_f64, f64::max)
}

/// The *true* per-user loss of problem (3) — hinge on labeled samples and
/// `max(0, 1 − |w_t·x|)` on unlabeled ones — which CCCP decreases
/// monotonically.
// Allowed: `user.labeled` and `user.unlabeled` are built in [`prepare`] by
// enumerating the same `features` vector, so every stored sample index is in
// bounds by construction.
#[allow(clippy::indexing_slicing)]
pub fn true_user_loss(user: &PreparedUser, w_t: &Vector, config: &PlosConfig) -> f64 {
    let m = user.num_samples() as f64;
    let mut loss = 0.0;
    for &(i, y) in &user.labeled {
        // plos-lint: allow(D3): loss accumulates in fixed sample order; part of the blessed numeric trajectory
        loss += config.c_labeled / m * (1.0 - y * w_t.dot(&user.features[i])).max(0.0);
    }
    for &i in &user.unlabeled {
        // plos-lint: allow(D3): loss accumulates in fixed sample order; part of the blessed numeric trajectory
        loss += config.c_unlabeled / m * (1.0 - w_t.dot(&user.features[i]).abs()).max(0.0);
    }
    loss
}

/// The full PLOS objective in the scale of problems (3)/(4):
/// `‖w0‖² + (λ/T) Σ‖v_t‖² + Σ_t loss_t`.
pub fn objective(prepared: &Prepared, w0: &Vector, vs: &[Vector], config: &PlosConfig) -> f64 {
    let t_count = prepared.users.len() as f64;
    let reg: f64 = w0.norm_squared()
        + config.lambda / t_count * vs.iter().map(Vector::norm_squared).sum::<f64>();
    let loss: f64 =
        prepared.users.iter().zip(vs).map(|(u, v)| true_user_loss(u, &(w0 + v), config)).sum();
    reg + loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::UserData;

    fn config() -> PlosConfig {
        PlosConfig { c_labeled: 2.0, c_unlabeled: 1.0, bias: None, ..PlosConfig::default() }
    }

    /// Two users, 2-D, user 0 fully labeled, user 1 unlabeled.
    fn dataset() -> MultiUserDataset {
        let mut u0 = UserData::new(
            vec![
                Vector::from(vec![1.0, 0.0]),
                Vector::from(vec![-1.0, 0.0]),
                Vector::from(vec![2.0, 1.0]),
            ],
            vec![1, -1, 1],
        );
        u0.observed = vec![Some(1), Some(-1), None];
        let u1 = UserData::new(
            vec![Vector::from(vec![0.5, 0.5]), Vector::from(vec![-0.5, -0.5])],
            vec![1, -1],
        );
        MultiUserDataset::new(vec![u0, u1])
    }

    #[test]
    fn prepare_splits_label_sets() {
        let p = prepare(&dataset(), None);
        assert_eq!(p.dim, 2);
        assert_eq!(p.users[0].labeled, vec![(0, 1.0), (1, -1.0)]);
        assert_eq!(p.users[0].unlabeled, vec![2]);
        assert!(p.users[1].labeled.is_empty());
        assert_eq!(p.users[1].unlabeled, vec![0, 1]);
    }

    #[test]
    fn prepare_applies_bias_augmentation() {
        let p = prepare(&dataset(), Some(3.0));
        assert_eq!(p.dim, 3);
        assert_eq!(p.users[0].features[0].as_slice(), &[1.0, 0.0, 3.0]);
    }

    #[test]
    fn signs_follow_hyperplane() {
        let p = prepare(&dataset(), None);
        let w = Vector::from(vec![1.0, 0.0]);
        assert_eq!(compute_signs(&p.users[0], &w), vec![1.0]);
        assert_eq!(compute_signs(&p.users[1], &w), vec![1.0, -1.0]);
        // Zero decision value maps to +1.
        let w_zero = Vector::zeros(2);
        assert_eq!(compute_signs(&p.users[1], &w_zero), vec![1.0, 1.0]);
    }

    #[test]
    fn most_violated_selects_only_margin_violators() {
        let p = prepare(&dataset(), None);
        let cfg = config();
        // w = (10, 0): labeled margins are 10 and 10 (no violation);
        // unlabeled sample (2,1) has |w·x| = 20 >= 1 (no violation).
        let w = Vector::from(vec![10.0, 0.0]);
        let signs = compute_signs(&p.users[0], &w);
        let (k, violation) = most_violated_constraint(&p.users[0], &signs, &w, 0.0, &cfg);
        assert_eq!(k.c, 0.0);
        assert_eq!(k.s.norm(), 0.0);
        assert!(violation <= 0.0);
    }

    #[test]
    fn most_violated_aggregates_violators() {
        let p = prepare(&dataset(), None);
        let cfg = config();
        // w = 0: every sample violates its margin.
        let w = Vector::zeros(2);
        let signs = compute_signs(&p.users[0], &w);
        let (k, violation) = most_violated_constraint(&p.users[0], &signs, &w, 0.0, &cfg);
        // c = (Cl*2 + Cu*1)/3 = (4 + 1)/3.
        assert!((k.c - 5.0 / 3.0).abs() < 1e-12);
        // s = (1/3)(2*(1,0)*1 + 2*(-1,0)*(-1) + 1*(2,1)*+1) = (1/3)(6,1).
        assert!((k.s[0] - 2.0).abs() < 1e-12);
        assert!((k.s[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((violation - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn violation_accounts_for_existing_slack() {
        let p = prepare(&dataset(), None);
        let cfg = config();
        let w = Vector::zeros(2);
        let signs = compute_signs(&p.users[0], &w);
        let (_, violation) = most_violated_constraint(&p.users[0], &signs, &w, 10.0, &cfg);
        assert!(violation < 0.0, "large slack absorbs the violation");
    }

    #[test]
    fn slack_is_max_over_constraints_clamped_at_zero() {
        let ks = vec![
            Constraint { s: Vector::from(vec![1.0]), c: 0.5 },
            Constraint { s: Vector::from(vec![-1.0]), c: 0.2 },
        ];
        let w = Vector::from(vec![1.0]);
        // c - s·w = -0.5 and 1.2.
        assert!((slack_for(&ks, &w) - 1.2).abs() < 1e-12);
        let w2 = Vector::from(vec![5.0]);
        assert_eq!(slack_for(&ks, &w2), 5.2); // -4.5 vs 5.2
        assert_eq!(slack_for(&[], &w), 0.0);
    }

    #[test]
    fn true_loss_matches_manual_computation() {
        let p = prepare(&dataset(), None);
        let cfg = config();
        let w = Vector::from(vec![0.5, 0.0]);
        // labeled: y=1, margin 0.5 -> hinge 0.5; y=-1 at (-1,0): margin 0.5 -> 0.5
        // unlabeled (2,1): |w·x| = 1.0 -> hinge 0.
        // loss = (2/3)(0.5) + (2/3)(0.5) + 0 = 2/3.
        let loss = true_user_loss(&p.users[0], &w, &cfg);
        assert!((loss - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn objective_combines_regularizers_and_losses() {
        let p = prepare(&dataset(), None);
        let cfg = PlosConfig { lambda: 4.0, ..config() };
        let w0 = Vector::from(vec![1.0, 0.0]);
        let vs = vec![Vector::zeros(2), Vector::from(vec![0.0, 1.0])];
        let obj = objective(&p, &w0, &vs, &cfg);
        let manual = 1.0
            + 4.0 / 2.0 * 1.0
            + true_user_loss(&p.users[0], &w0, &cfg)
            + true_user_loss(&p.users[1], &(&w0 + &vs[1]), &cfg);
        assert!((obj - manual).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sign pattern length mismatch")]
    fn sign_length_checked() {
        let p = prepare(&dataset(), None);
        let cfg = config();
        let w = Vector::zeros(2);
        let _ = most_violated_constraint(&p.users[0], &[], &w, 0.0, &cfg);
    }
}
