//! Error type shared by the fallible trainers in this crate.

use plos_ml::error::MlError;
use plos_opt::error::OptError;
use std::fmt;

/// Error returned by the fallible PLOS trainers and baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A failure surfaced by the optimization layer (QP / ADMM machinery).
    Opt(OptError),
    /// A failure surfaced by the machine-learning layer (SVM, k-means,
    /// spectral clustering).
    Ml(MlError),
    /// The dataset has no users, so there is nothing to train.
    EmptyDataset,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Opt(e) => write!(f, "{e}"),
            CoreError::Ml(e) => write!(f, "{e}"),
            CoreError::EmptyDataset => write!(f, "dataset has no users"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Opt(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::EmptyDataset => None,
        }
    }
}

impl From<OptError> for CoreError {
    fn from(e: OptError) -> Self {
        CoreError::Opt(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<plos_linalg::LinalgError> for CoreError {
    fn from(e: plos_linalg::LinalgError) -> Self {
        CoreError::Opt(OptError::Linalg(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_linalg::LinalgError;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<CoreError> = vec![
            CoreError::Opt(OptError::NonFinite { what: "warm start" }),
            CoreError::Ml(MlError::Empty { what: "samples" }),
            CoreError::EmptyDataset,
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
            assert!(!format!("{c:?}").is_empty());
        }
    }

    #[test]
    fn from_impls_preserve_sources() {
        use std::error::Error;
        let o = CoreError::from(OptError::Linalg(LinalgError::Singular));
        assert!(o.source().is_some());
        let m = CoreError::from(MlError::BadLabel { index: 3 });
        assert!(m.source().is_some());
    }
}
