//! Error type shared by the fallible trainers in this crate.

use plos_ckpt::CkptError;
use plos_ml::error::MlError;
use plos_net::TransportError;
use plos_opt::error::OptError;
use std::fmt;

/// Error returned by the fallible PLOS trainers and baselines.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A failure surfaced by the optimization layer (QP / ADMM machinery).
    Opt(OptError),
    /// A failure surfaced by the machine-learning layer (SVM, k-means,
    /// spectral clustering).
    Ml(MlError),
    /// The dataset has no users, so there is nothing to train.
    EmptyDataset,
    /// A configuration value is out of range for the dataset it was applied
    /// to (e.g. more groups than users).
    InvalidConfig {
        /// Human-readable description of the bad value.
        detail: String,
    },
    /// The distributed transport failed irrecoverably (every retry and
    /// timeout budget exhausted, or the whole fleet disconnected).
    Transport {
        /// Human-readable description of the underlying transport failure.
        detail: String,
    },
    /// A device violated the wire protocol in a way retries cannot repair.
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A gather round closed without a single usable reply, so the ADMM
    /// state can no longer advance.
    QuorumLost {
        /// The ADMM round that failed to gather.
        round: u32,
        /// Devices still on the roster when the round closed.
        alive: usize,
        /// Replies required by the configured quorum fraction.
        required: usize,
    },
    /// Writing or reading a checkpoint failed. A corrupted or incompatible
    /// checkpoint is never silently ignored — the caller must delete it (or
    /// point `PLOS_CKPT_DIR` elsewhere) to start fresh.
    Ckpt(CkptError),
    /// The run was deliberately interrupted by the checkpoint policy's
    /// `abort_after` knob — the kill-switch used by the resume-parity
    /// harness. The checkpoint written immediately before the abort is on
    /// disk and valid.
    Interrupted {
        /// Checkpoints written before the abort fired.
        checkpoints: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Opt(e) => write!(f, "{e}"),
            CoreError::Ml(e) => write!(f, "{e}"),
            CoreError::EmptyDataset => write!(f, "dataset has no users"),
            CoreError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            CoreError::Transport { detail } => write!(f, "transport failure: {detail}"),
            CoreError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            CoreError::QuorumLost { round, alive, required } => write!(
                f,
                "quorum lost in round {round}: no usable replies from {alive} live devices \
                 ({required} required)"
            ),
            CoreError::Ckpt(e) => write!(f, "checkpoint failure: {e}"),
            CoreError::Interrupted { checkpoints } => {
                write!(f, "run interrupted by checkpoint policy after {checkpoints} checkpoint(s)")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Opt(e) => Some(e),
            CoreError::Ml(e) => Some(e),
            CoreError::Ckpt(e) => Some(e),
            CoreError::EmptyDataset
            | CoreError::InvalidConfig { .. }
            | CoreError::Transport { .. }
            | CoreError::Protocol { .. }
            | CoreError::QuorumLost { .. }
            | CoreError::Interrupted { .. } => None,
        }
    }
}

impl From<TransportError> for CoreError {
    fn from(e: TransportError) -> Self {
        CoreError::Transport { detail: e.to_string() }
    }
}

impl From<OptError> for CoreError {
    fn from(e: OptError) -> Self {
        CoreError::Opt(e)
    }
}

impl From<MlError> for CoreError {
    fn from(e: MlError) -> Self {
        CoreError::Ml(e)
    }
}

impl From<plos_linalg::LinalgError> for CoreError {
    fn from(e: plos_linalg::LinalgError) -> Self {
        CoreError::Opt(OptError::Linalg(e))
    }
}

impl From<CkptError> for CoreError {
    fn from(e: CkptError) -> Self {
        CoreError::Ckpt(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_linalg::LinalgError;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<CoreError> = vec![
            CoreError::Opt(OptError::NonFinite { what: "warm start" }),
            CoreError::Ml(MlError::Empty { what: "samples" }),
            CoreError::EmptyDataset,
            CoreError::InvalidConfig { detail: "num_groups 100 exceeds 6 users".into() },
            CoreError::Transport { detail: "peer disconnected".into() },
            CoreError::Protocol { detail: "update attributed to device 3 on link 1".into() },
            CoreError::QuorumLost { round: 7, alive: 4, required: 3 },
            CoreError::Ckpt(CkptError::BadMagic),
            CoreError::Interrupted { checkpoints: 2 },
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
            assert!(!format!("{c:?}").is_empty());
        }
    }

    #[test]
    fn from_impls_preserve_sources() {
        use std::error::Error;
        let o = CoreError::from(OptError::Linalg(LinalgError::Singular));
        assert!(o.source().is_some());
        let m = CoreError::from(MlError::BadLabel { index: 3 });
        assert!(m.source().is_some());
        let c = CoreError::from(CkptError::BadMagic);
        assert!(c.source().is_some());
    }

    #[test]
    fn transport_errors_convert() {
        let e = CoreError::from(plos_net::TransportError::Timeout);
        assert_eq!(e, CoreError::Transport { detail: "receive timed out".into() });
    }
}
