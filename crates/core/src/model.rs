//! The trained PLOS model: a global hyperplane plus per-user biases.

use plos_linalg::Vector;

/// A trained PLOS model.
///
/// Stores the global hyperplane `w0` and, for each user `t`, the personal
/// bias `v_t`; user `t`'s personalized hyperplane is `w_t = w0 + v_t`
/// (Sec. IV-A). When the trainer used bias augmentation, incoming feature
/// vectors are extended with the same constant before the dot product.
#[derive(Debug, Clone, PartialEq)]
pub struct PersonalizedModel {
    w0: Vector,
    biases: Vec<Vector>,
    bias_aug: Option<f64>,
}

impl PersonalizedModel {
    /// Assembles a model from trained parameters.
    ///
    /// # Panics
    ///
    /// Panics if any bias has a different dimension than `w0`, or if there
    /// are no users.
    pub fn new(w0: Vector, biases: Vec<Vector>, bias_aug: Option<f64>) -> Self {
        assert!(!biases.is_empty(), "model must cover at least one user");
        assert!(
            biases.iter().all(|v| v.len() == w0.len()),
            "bias dimension must match the global hyperplane"
        );
        PersonalizedModel { w0, biases, bias_aug }
    }

    /// Number of users the model personalizes for.
    pub fn num_users(&self) -> usize {
        self.biases.len()
    }

    /// Hyperplane dimension (including the bias weight if augmented).
    pub fn dim(&self) -> usize {
        self.w0.len()
    }

    /// The global hyperplane `w0`.
    pub fn global_hyperplane(&self) -> &Vector {
        &self.w0
    }

    /// The bias-augmentation constant the trainer used, if any — needed to
    /// serialize a model so a deserialized copy predicts identically.
    pub fn bias_augmentation(&self) -> Option<f64> {
        self.bias_aug
    }

    /// All per-user biases, in user order.
    pub fn personal_biases(&self) -> &[Vector] {
        &self.biases
    }

    /// User `t`'s personal bias `v_t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    // Allowed: documented panicking accessor; out-of-range `t` is a caller
    // bug, as in slice indexing.
    #[allow(clippy::indexing_slicing)]
    pub fn personal_bias(&self, t: usize) -> &Vector {
        &self.biases[t]
    }

    /// User `t`'s personalized hyperplane `w_t = w0 + v_t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    // Allowed: documented panicking accessor; out-of-range `t` is a caller
    // bug, as in slice indexing.
    #[allow(clippy::indexing_slicing)]
    pub fn personalized_hyperplane(&self, t: usize) -> Vector {
        &self.w0 + &self.biases[t]
    }

    /// Signed decision value of user `t`'s hyperplane on `x`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or `x` has the wrong dimension.
    // Allowed: documented panicking accessor; out-of-range `t` is a caller
    // bug, as in slice indexing.
    #[allow(clippy::indexing_slicing)]
    pub fn decision(&self, t: usize, x: &Vector) -> f64 {
        let x_aug;
        let x_ref = match self.bias_aug {
            Some(b) => {
                x_aug = x.with_appended(b);
                &x_aug
            }
            None => x,
        };
        self.w0.dot(x_ref) + self.biases[t].dot(x_ref)
    }

    /// Predicted label (`±1`, ties to `+1`) of user `t` on `x`.
    pub fn predict(&self, t: usize, x: &Vector) -> i8 {
        if self.decision(t, x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Batch prediction for user `t`.
    pub fn predict_batch(&self, t: usize, xs: &[Vector]) -> Vec<i8> {
        xs.iter().map(|x| self.predict(t, x)).collect()
    }

    /// How far user `t` deviates from the crowd: `‖v_t‖ / ‖w0‖` (0 when the
    /// global hyperplane is zero).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    // Allowed: documented panicking accessor; out-of-range `t` is a caller
    // bug, as in slice indexing.
    #[allow(clippy::indexing_slicing)]
    pub fn personalization_ratio(&self, t: usize) -> f64 {
        let g = self.w0.norm();
        if g == 0.0 {
            0.0
        } else {
            self.biases[t].norm() / g
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> PersonalizedModel {
        // w0 = (1, 0), v0 = (0, 0), v1 = (-2, 0) => w1 = (-1, 0).
        PersonalizedModel::new(
            Vector::from(vec![1.0, 0.0]),
            vec![Vector::zeros(2), Vector::from(vec![-2.0, 0.0])],
            None,
        )
    }

    #[test]
    fn personalized_hyperplanes_differ() {
        let m = model();
        assert_eq!(m.num_users(), 2);
        assert_eq!(m.dim(), 2);
        let x = Vector::from(vec![1.0, 5.0]);
        assert_eq!(m.predict(0, &x), 1);
        assert_eq!(m.predict(1, &x), -1);
        assert_eq!(m.decision(0, &x), 1.0);
        assert_eq!(m.decision(1, &x), -1.0);
    }

    #[test]
    fn hyperplane_assembly() {
        let m = model();
        assert_eq!(m.personalized_hyperplane(1).as_slice(), &[-1.0, 0.0]);
        assert_eq!(m.global_hyperplane().as_slice(), &[1.0, 0.0]);
        assert_eq!(m.personal_bias(0).as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn bias_augmentation_is_applied() {
        // w = (0, 1) with bias slot: decision = x*0 + 1*b.
        let m = PersonalizedModel::new(
            Vector::from(vec![0.0, 1.0]),
            vec![Vector::zeros(2)],
            Some(-2.0),
        );
        let x = Vector::from(vec![5.0]);
        assert_eq!(m.decision(0, &x), -2.0);
        assert_eq!(m.predict(0, &x), -1);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let m = model();
        let xs = vec![Vector::from(vec![1.0, 0.0]), Vector::from(vec![-1.0, 0.0])];
        assert_eq!(m.predict_batch(0, &xs), vec![1, -1]);
    }

    #[test]
    fn personalization_ratio() {
        let m = model();
        assert_eq!(m.personalization_ratio(0), 0.0);
        assert_eq!(m.personalization_ratio(1), 2.0);
        let zero_global =
            PersonalizedModel::new(Vector::zeros(1), vec![Vector::from(vec![1.0])], None);
        assert_eq!(zero_global.personalization_ratio(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one user")]
    fn empty_model_rejected() {
        let _ = PersonalizedModel::new(Vector::zeros(2), vec![], None);
    }

    #[test]
    #[should_panic(expected = "dimension must match")]
    fn mismatched_bias_rejected() {
        let _ = PersonalizedModel::new(Vector::zeros(2), vec![Vector::zeros(3)], None);
    }
}
