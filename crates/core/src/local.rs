//! The on-device subproblem of distributed PLOS (Eq. 22).
//!
//! During ADMM, user `t` repeatedly solves
//!
//! ```text
//! min_{w_t, v_t, ξ_t ≥ 0}  ξ_t + (λ/T)‖v_t‖² + (ρ/2)‖w_t − w0 − v_t + u_t‖²
//! s.t. cutting-plane constraints  s_k · w_t ≥ c_k − ξ_t,  k ∈ Ω_t
//! ```
//!
//! over only its own raw data. With `κ = λ/T` and `a = w0 − u_t`, the inner
//! minimization over `v_t` is closed-form, `v_t* = ρ/(2κ+ρ)·(w_t − a)`,
//! leaving an SVM-like problem in `w_t` alone with effective curvature
//! `μ = 2κρ/(2κ+ρ)`:
//!
//! ```text
//! min_w  (μ/2)‖w − a‖² + ξ(w),    ξ(w) = max(0, max_k (c_k − s_k·w))
//! ```
//!
//! whose working-set dual is a tiny capped-simplex QP — the same
//! [`GroupedQp`] machinery as the centralized dual, with
//! `w = a + (1/μ)·Σ α_k s_k`. The working set persists across ADMM
//! iterations within a CCCP round (old constraints remain valid constraints
//! of the same convexified problem) and is cleared when the server advances
//! CCCP, because the sign pattern changes.

use crate::config::PlosConfig;
use crate::error::CoreError;
use crate::problem::{self, Constraint, PreparedUser};
use crate::prox;
use plos_linalg::Vector;

/// Device-resident solver state for one user.
#[derive(Debug, Clone)]
pub struct LocalSolver {
    user: PreparedUser,
    config: PlosConfig,
    t_count: usize,
    signs: Option<Vec<f64>>,
    working_set: Vec<Constraint>,
    /// Hard class-balance constraints (empty when disabled or fully
    /// labeled).
    balance: Vec<Constraint>,
    /// Last personalized hyperplane; the linearization point for the next
    /// CCCP round.
    w_t: Vector,
}

/// Output of one local solve.
#[derive(Debug, Clone)]
pub struct LocalUpdate {
    /// Personalized hyperplane `w_t`.
    pub w_t: Vector,
    /// Personal bias `v_t`.
    pub v_t: Vector,
    /// Slack `ξ_t`.
    pub xi_t: f64,
}

impl LocalSolver {
    /// Creates the device solver.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `t_count == 0`.
    pub fn new(user: PreparedUser, config: PlosConfig, t_count: usize) -> Self {
        config.validate();
        assert!(t_count > 0, "t_count must be positive");
        let dim = user.features.first().map_or(0, Vector::len);
        let balance = problem::balance_constraints(&user, config.balance);
        LocalSolver {
            user,
            config,
            t_count,
            signs: None,
            working_set: Vec::new(),
            balance,
            w_t: Vector::zeros(dim),
        }
    }

    /// Clears the CCCP linearization so the next solve re-derives the sign
    /// pattern from the current `w_t` (Algorithm 2, step 7 → step 3).
    pub fn advance_cccp(&mut self) {
        self.signs = None;
        self.working_set.clear();
    }

    /// Re-seeds the solver from a server checkpoint (`Message::Restore`):
    /// adopts the checkpointed CCCP anchor `w_t` and cohort size, and clears
    /// the working set and sign pattern so the next solve re-derives them
    /// from the anchor — exactly the state a device is in right after
    /// [`LocalSolver::advance_cccp`]. Replaying the interrupted CCCP round's
    /// broadcasts then reproduces the pre-kill state bit for bit.
    pub fn restore(&mut self, w_t: Vector, t_count: usize) {
        let dim = self.user.features.first().map_or(0, Vector::len);
        if w_t.len() == dim {
            self.w_t = w_t;
        }
        self.signs = None;
        self.working_set.clear();
        self.set_cohort_size(t_count);
    }

    /// Rescales the cohort size `T` after the server evicted dead devices
    /// (`RosterUpdate`), so `κ = λ/T` — and with it the `Σ_k γ_kt ≤ T/2λ`
    /// dual cap — matches the devices actually left in the consensus.
    /// Ignores zero (a roster can never be empty while this device is in it).
    pub fn set_cohort_size(&mut self, t_count: usize) {
        if t_count > 0 {
            self.t_count = t_count;
        }
    }

    /// Current cohort size `T` used in `κ = λ/T`.
    pub fn cohort_size(&self) -> usize {
        self.t_count
    }

    /// Number of constraints currently in the device working set.
    pub fn working_set_len(&self) -> usize {
        self.working_set.len()
    }

    /// This user's contribution to the server objective (Eq. 23):
    /// the true local loss at the current `w_t`.
    pub fn local_loss(&self) -> f64 {
        problem::true_user_loss(&self.user, &self.w_t, &self.config)
    }

    /// Trains a purely local SVM on this device's observed labels, used as
    /// the distributed initialization of `w'⁽⁰⁾`: providers ship their local
    /// hyperplane to the server, which averages them into `w0⁽⁰⁾` — only
    /// model parameters travel, never data.
    ///
    /// Returns `None` when the user lacks labels of both classes or the
    /// local SVM fails to train.
    pub fn initial_hyperplane(&self) -> Option<Vector> {
        let has_pos = self.user.labeled.iter().any(|&(_, y)| y > 0.0);
        let has_neg = self.user.labeled.iter().any(|&(_, y)| y < 0.0);
        if !has_pos || !has_neg {
            return None;
        }
        let (xs, ys): (Vec<Vector>, Vec<i8>) = self
            .user
            .labeled
            .iter()
            .filter_map(|&(i, y)| {
                self.user.features.get(i).map(|x| (x.clone(), if y > 0.0 { 1 } else { -1 }))
            })
            .unzip();
        // Features were bias-augmented during prepare(); keep the SVM raw.
        let params =
            plos_ml::svm::SvmParams { c: 1.0, bias: None, ..plos_ml::svm::SvmParams::default() };
        let model = plos_ml::svm::LinearSvm::new(params).fit(&xs, &ys).ok()?;
        Some(model.weights().clone())
    }

    /// Solves Eq. (22) given the server's current `w0` and scaled dual
    /// `u_t`.
    ///
    /// # Errors
    ///
    /// Propagates QP failures from the cutting-plane solves.
    ///
    /// # Panics
    ///
    /// Panics if `w0`/`u_t` dimensions don't match the data.
    pub fn solve(&mut self, w0: &Vector, u_t: &Vector) -> Result<LocalUpdate, CoreError> {
        let dim = self.user.features.first().map_or(0, Vector::len);
        assert_eq!(w0.len(), dim, "w0 dimension mismatch");
        assert_eq!(u_t.len(), dim, "u_t dimension mismatch");

        // Lazily (re-)derive the sign pattern: on the very first solve the
        // linearization point is the incoming global hyperplane, afterwards
        // the device's own last w_t.
        let signs = match self.signs.take() {
            Some(signs) => signs,
            None => {
                let anchor = if self.w_t.norm() == 0.0 { w0 } else { &self.w_t };
                problem::compute_signs(&self.user, anchor)
            }
        };

        let kappa = self.config.lambda / self.t_count as f64;
        let rho = self.config.rho;
        let mu = 2.0 * kappa * rho / (2.0 * kappa + rho);
        let a = w0 - u_t;

        let w = prox::cutting_plane(
            &self.user,
            &signs,
            &a,
            mu,
            &mut self.working_set,
            &self.balance,
            &self.config,
        )?;
        self.signs = Some(signs);

        let xi_t = problem::slack_for(&self.working_set, &w);
        let v_t = (&w - &a).scaled(rho / (2.0 * kappa + rho));
        self.w_t = w.clone();
        // Crate-boundary contract with the opt layer: the update the device
        // ships to the server must keep the problem dimension and stay
        // finite, or the ADMM aggregate silently corrupts every peer.
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            w.len() == dim
                && v_t.len() == dim
                && xi_t.is_finite()
                && w.iter().all(|c| c.is_finite()),
            "local update violates the dimension/finiteness contract"
        );
        Ok(LocalUpdate { w_t: w, v_t, xi_t })
    }

    /// Deterministic per-device seed for refinement round `round` (the
    /// config seed is salted per user by the trainer).
    pub fn seed_for_round(&self, round: u32) -> u64 {
        self.config.seed ^ (u64::from(round) << 32)
    }

    /// Refinement step (post-ADMM): re-solves this user's exact subproblem
    /// `(λ/T)‖w − w0‖² + loss(w)` with multi-start CCCP and adopts the best
    /// local optimum. Returns the refined update; `xi_t` carries the true
    /// local loss so the server can track the objective.
    ///
    /// # Errors
    ///
    /// Propagates QP failures from the multi-start CCCP runs.
    pub fn refine(&mut self, w0: &Vector, seed: u64) -> Result<LocalUpdate, CoreError> {
        let mu = 2.0 * self.config.lambda / self.t_count as f64;
        let anchor_for_signs = if self.w_t.norm() == 0.0 { w0 } else { &self.w_t };
        let base_signs = problem::compute_signs(&self.user, anchor_for_signs);
        let sol = prox::prox_cccp_multistart(&self.user, w0, mu, base_signs, seed, &self.config)?;
        let incumbent = prox::prox_objective(&self.user, w0, mu, &self.w_t, &self.config);
        let sol = if sol.objective < incumbent && self.w_t.norm() > 0.0 {
            sol
        } else if self.w_t.norm() > 0.0 {
            prox::ProxSolution { w: self.w_t.clone(), objective: incumbent }
        } else {
            sol
        };
        self.w_t = sol.w.clone();
        self.signs = Some(problem::compute_signs(&self.user, &sol.w));
        self.working_set.clear();
        let v_t = &sol.w - w0;
        let xi_t = problem::true_user_loss(&self.user, &sol.w, &self.config);
        Ok(LocalUpdate { w_t: sol.w, v_t, xi_t })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::{MultiUserDataset, UserData};

    fn labeled_user() -> PreparedUser {
        let mut u = UserData::new(
            vec![
                Vector::from(vec![1.0, 0.2]),
                Vector::from(vec![1.5, -0.1]),
                Vector::from(vec![-1.0, 0.1]),
                Vector::from(vec![-1.2, -0.3]),
            ],
            vec![1, 1, -1, -1],
        );
        u.observed = vec![Some(1), Some(1), Some(-1), Some(-1)];
        let dataset = MultiUserDataset::new(vec![u]);
        problem::prepare(&dataset, None).users.remove(0)
    }

    fn config() -> PlosConfig {
        PlosConfig { bias: None, ..PlosConfig::fast() }
    }

    #[test]
    fn solve_fits_local_labels() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 4);
        // Neutral server state: w0 = u = 0.
        let update = solver.solve(&Vector::zeros(2), &Vector::zeros(2)).unwrap();
        assert!(update.w_t[0] > 0.0, "separator should point at the positive class");
        assert!(solver.working_set_len() > 0);
        // Consensus decomposition w_t = (w0 + u adjustments) + v_t holds by
        // construction: with w0 = u = 0, w_t ∝ v_t.
        let ratio = update.v_t[0] / update.w_t[0];
        assert!(ratio > 0.0 && ratio <= 1.0, "ratio {ratio}");
    }

    #[test]
    fn strong_prox_pull_keeps_w_near_anchor() {
        // Huge rho forces w_t ≈ w0 − u_t.
        let cfg = PlosConfig { rho: 1e6, lambda: 1e6, ..config() };
        let mut solver = LocalSolver::new(labeled_user(), cfg, 1);
        let w0 = Vector::from(vec![3.0, -1.0]);
        let update = solver.solve(&w0, &Vector::zeros(2)).unwrap();
        assert!(update.w_t.distance(&w0) < 0.1, "w_t strayed: {:?}", update.w_t);
    }

    #[test]
    fn xi_is_zero_when_anchor_already_satisfies_margins() {
        // Anchor far in the separating direction: all margins > 1 already.
        let mut solver = LocalSolver::new(labeled_user(), config(), 2);
        let w0 = Vector::from(vec![50.0, 0.0]);
        let update = solver.solve(&w0, &Vector::zeros(2)).unwrap();
        assert!(update.xi_t < 1e-6, "xi = {}", update.xi_t);
    }

    #[test]
    fn cohort_rescale_updates_t_and_ignores_zero() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 4);
        assert_eq!(solver.cohort_size(), 4);
        solver.set_cohort_size(3);
        assert_eq!(solver.cohort_size(), 3);
        solver.set_cohort_size(0);
        assert_eq!(solver.cohort_size(), 3, "zero roster must be ignored");
    }

    #[test]
    fn advance_cccp_clears_state() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 2);
        let _ = solver.solve(&Vector::zeros(2), &Vector::zeros(2)).unwrap();
        assert!(solver.working_set_len() > 0);
        solver.advance_cccp();
        assert_eq!(solver.working_set_len(), 0);
    }

    #[test]
    fn repeated_solves_converge_to_stable_w() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 2);
        let w0 = Vector::from(vec![0.5, 0.0]);
        let u = Vector::zeros(2);
        let first = solver.solve(&w0, &u).unwrap();
        let second = solver.solve(&w0, &u).unwrap();
        assert!(
            first.w_t.distance(&second.w_t) < 1e-4,
            "repeat solve moved: {} ",
            first.w_t.distance(&second.w_t)
        );
    }

    #[test]
    fn local_loss_reflects_fit_quality() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 2);
        let before = solver.local_loss(); // w_t = 0 → full hinge loss
        let _ = solver.solve(&Vector::zeros(2), &Vector::zeros(2)).unwrap();
        let after = solver.local_loss();
        assert!(after < before, "loss did not improve: {before} -> {after}");
    }

    #[test]
    fn restore_and_replay_matches_uninterrupted_device() {
        // Continuous device: CCCP round 1, advance, then two solves of
        // round 2.
        let w0_1 = Vector::from(vec![0.4, 0.1]);
        let w0_2 = Vector::from(vec![0.6, -0.1]);
        let w0_3 = Vector::from(vec![0.55, 0.0]);
        let u = Vector::zeros(2);
        let mut continuous = LocalSolver::new(labeled_user(), config(), 3);
        let _ = continuous.solve(&w0_1, &u).unwrap();
        let anchor = continuous.w_t.clone();
        continuous.advance_cccp();
        let _ = continuous.solve(&w0_2, &u).unwrap();
        let expected = continuous.solve(&w0_3, &u).unwrap();

        // Killed device: a fresh process restored from the round-2 anchor
        // replays round 2's broadcasts.
        let mut resumed = LocalSolver::new(labeled_user(), config(), 3);
        resumed.restore(anchor, 3);
        let _ = resumed.solve(&w0_2, &u).unwrap();
        let replayed = resumed.solve(&w0_3, &u).unwrap();

        let bits = |v: &Vector| v.iter().map(|c| c.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&replayed.w_t), bits(&expected.w_t));
        assert_eq!(bits(&replayed.v_t), bits(&expected.v_t));
        assert_eq!(replayed.xi_t.to_bits(), expected.xi_t.to_bits());
    }

    #[test]
    fn restore_ignores_mismatched_dimension_and_zero_cohort() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 4);
        let _ = solver.solve(&Vector::zeros(2), &Vector::zeros(2)).unwrap();
        let kept = solver.w_t.clone();
        solver.restore(Vector::zeros(5), 0);
        assert_eq!(solver.w_t, kept, "mismatched anchor must be ignored");
        assert_eq!(solver.cohort_size(), 4, "zero roster must be ignored");
        assert_eq!(solver.working_set_len(), 0, "working set is always cleared");
    }

    #[test]
    #[should_panic(expected = "w0 dimension mismatch")]
    fn dimension_mismatch_panics() {
        let mut solver = LocalSolver::new(labeled_user(), config(), 2);
        let _ = solver.solve(&Vector::zeros(3), &Vector::zeros(3)).unwrap();
    }
}
