//! Proximal per-user subproblem: the shared engine of the device solver and
//! the refinement stage.
//!
//! Both the ADMM local step (Eq. 22) and block-coordinate refinement reduce
//! to the same shape — an SVM-like problem in one user's hyperplane pulled
//! toward an anchor:
//!
//! ```text
//! min_w  (μ/2)‖w − a‖² + ξ(w),   ξ(w) = max(0, max_{k∈Ω} (c_k − s_k·w))
//! ```
//!
//! * ADMM local step: `a = w0 − u_t`, `μ = 2κρ/(2κ+ρ)` with `κ = λ/T`;
//! * refinement step: `a = w0`, `μ = 2λ/T` (the exact per-user block of the
//!   joint objective given `w0`).
//!
//! The working-set dual is a capped-simplex QP (`α ≥ 0, Σα ≤ 1`) with
//! `w = a + (1/μ)Σ α_k s_k`. [`prox_cccp`] wraps the cutting-plane solve in
//! a per-user CCCP loop over the unlabeled sign pattern; because the
//! landscape of the maximum-margin-clustering term is non-convex, the
//! trainers run it from several sign initializations and keep the best
//! true objective (the `restarts` knob in [`PlosConfig`]).

use crate::config::PlosConfig;
use crate::error::CoreError;
use crate::problem::{self, Constraint, PreparedUser};
use plos_linalg::{Matrix, Vector};
use plos_opt::GroupedQp;

/// Minimizes `(μ/2)‖w − a‖² + ξ(w)` over a working set via its dual,
/// subject to the user's *hard* constraints (class balance), whose
/// multipliers are unbounded and carry no slack.
///
/// With no constraints at all the minimizer is the anchor itself.
///
/// # Errors
///
/// Propagates QP construction and solver failures as [`CoreError::Opt`].
///
/// # Panics
///
/// Panics if `mu <= 0`.
// Allowed: the `all` accessor below splits `0..n` into the two concatenated
// constraint slices with `i` already range-checked against `n_soft`, so the
// indexing cannot go out of bounds.
#[allow(clippy::indexing_slicing)]
pub fn solve_working_set(
    working_set: &[Constraint],
    hard: &[Constraint],
    anchor: &Vector,
    mu: f64,
    config: &PlosConfig,
) -> Result<Vector, CoreError> {
    assert!(mu > 0.0, "prox curvature must be positive");
    let n_soft = working_set.len();
    let n = n_soft + hard.len();
    if n == 0 {
        return Ok(anchor.clone());
    }
    let all = |i: usize| -> &Constraint {
        if i < n_soft {
            &working_set[i]
        } else {
            &hard[i - n_soft]
        }
    };
    let mut q = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let d = all(i).s.dot(&all(j).s) / mu;
            q[(i, j)] = d;
            q[(j, i)] = d;
        }
    }
    let b: Vector = (0..n).map(|i| all(i).c - anchor.dot(&all(i).s)).collect();
    // Soft multipliers share the slack budget (Σα ≤ 1); hard multipliers
    // are only constrained to be non-negative.
    let groups = if n_soft > 0 { vec![((0..n_soft).collect(), 1.0)] } else { Vec::new() };
    let qp = GroupedQp::new(q, b, groups)?;
    let sol = qp.solve(&config.qp)?;
    let mut w = anchor.clone();
    for (i, alpha) in sol.gamma.iter().enumerate() {
        if *alpha != 0.0 {
            w.axpy(alpha / mu, &all(i).s);
        }
    }
    Ok(w)
}

/// Cutting-plane loop for the prox subproblem under a *fixed* sign pattern.
/// Grows `working_set` in place and returns the minimizer.
///
/// # Errors
///
/// Propagates QP failures from [`solve_working_set`].
pub fn cutting_plane(
    user: &PreparedUser,
    signs: &[f64],
    anchor: &Vector,
    mu: f64,
    working_set: &mut Vec<Constraint>,
    hard: &[Constraint],
    config: &PlosConfig,
) -> Result<Vector, CoreError> {
    let mut w = solve_working_set(working_set, hard, anchor, mu, config)?;
    for _ in 0..config.max_cutting_rounds {
        let xi = problem::slack_for(working_set, &w);
        let (constraint, violation) =
            problem::most_violated_constraint(user, signs, &w, xi, config);
        if violation <= config.eps {
            break;
        }
        working_set.push(constraint);
        w = solve_working_set(working_set, hard, anchor, mu, config)?;
    }
    Ok(w)
}

/// Result of a full per-user prox CCCP run.
#[derive(Debug, Clone)]
pub struct ProxSolution {
    /// The personalized hyperplane.
    pub w: Vector,
    /// True per-user objective `(μ/2)‖w − a‖² + loss(w)` at `w`.
    pub objective: f64,
}

/// The exact per-user prox objective `(μ/2)‖w − a‖² + loss(w)`.
pub fn prox_objective(
    user: &PreparedUser,
    anchor: &Vector,
    mu: f64,
    w: &Vector,
    config: &PlosConfig,
) -> f64 {
    0.5 * mu * w.distance_squared(anchor) + problem::true_user_loss(user, w, config)
}

/// Full per-user CCCP from a given initial sign pattern: alternate
/// cutting-plane solves and sign refreshes until the true local objective
/// stabilizes.
///
/// # Errors
///
/// Propagates QP failures from the cutting-plane solves.
pub fn prox_cccp(
    user: &PreparedUser,
    anchor: &Vector,
    mu: f64,
    init_signs: Vec<f64>,
    config: &PlosConfig,
) -> Result<ProxSolution, CoreError> {
    let objective_at = |w: &Vector| prox_objective(user, anchor, mu, w, config);
    let hard = problem::balance_constraints(user, config.balance);
    let mut signs = init_signs;
    // The incumbent is always a *constrained* iterate (never the raw
    // anchor): every cutting-plane output satisfies the hard balance
    // constraints, so the returned solution does too. (Config validation
    // guarantees max_cccp_rounds >= 1, so the anchor fallback below is
    // unreachable in practice.)
    let mut best: Option<ProxSolution> = None;
    let mut prev_objective = f64::INFINITY;
    for _ in 0..config.max_cccp_rounds {
        let mut working_set = Vec::new();
        let w = cutting_plane(user, &signs, anchor, mu, &mut working_set, &hard, config)?;
        let objective = objective_at(&w);
        if best.as_ref().is_none_or(|b| objective < b.objective) {
            best = Some(ProxSolution { w: w.clone(), objective });
        }
        if (prev_objective - objective).abs() < config.cccp_tol {
            break;
        }
        prev_objective = objective;
        let new_signs = problem::compute_signs(user, &w);
        if new_signs == signs {
            break;
        }
        signs = new_signs;
    }
    Ok(best.unwrap_or_else(|| ProxSolution { w: anchor.clone(), objective: objective_at(anchor) }))
}

/// Multi-start prox CCCP: tries the supplied sign initialization plus
/// `config.restarts` random-hyperplane initializations, returning the lowest
/// true objective. Deterministic given `seed`.
///
/// # Errors
///
/// Propagates QP failures from the underlying CCCP runs.
pub fn prox_cccp_multistart(
    user: &PreparedUser,
    anchor: &Vector,
    mu: f64,
    base_signs: Vec<f64>,
    seed: u64,
    config: &PlosConfig,
) -> Result<ProxSolution, CoreError> {
    use rand::{Rng, SeedableRng};
    let mut best = prox_cccp(user, anchor, mu, base_signs, config)?;
    if user.unlabeled.is_empty() {
        // Without unlabeled samples the problem is convex: restarts are
        // pointless.
        return Ok(best);
    }
    for r in 0..config.restarts {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(r as u64 + 1)),
        );
        let dim = user.features.first().map_or(0, Vector::len);
        let w_init: Vector = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let signs = problem::compute_signs(user, &w_init);
        let candidate = prox_cccp(user, anchor, mu, signs, config)?;
        if candidate.objective < best.objective {
            best = candidate;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::{MultiUserDataset, UserData};

    fn config() -> PlosConfig {
        PlosConfig { bias: None, restarts: 4, ..PlosConfig::fast() }
    }

    /// Two clean 1-D clusters around ±2, unlabeled.
    fn unlabeled_user() -> PreparedUser {
        let xs: Vec<Vector> =
            [-2.2, -2.0, -1.8, 1.8, 2.0, 2.2].iter().map(|&v| Vector::from(vec![v])).collect();
        let truth = vec![-1, -1, -1, 1, 1, 1];
        let d = MultiUserDataset::new(vec![UserData::new(xs, truth)]);
        problem::prepare(&d, None).users.remove(0)
    }

    #[test]
    fn empty_working_set_returns_anchor() {
        let a = Vector::from(vec![1.5]);
        let w = solve_working_set(&[], &[], &a, 1.0, &config()).unwrap();
        assert_eq!(w, a);
    }

    #[test]
    fn working_set_solution_decreases_objective() {
        let user = unlabeled_user();
        let cfg = config();
        let a = Vector::from(vec![0.01]); // weak anchor, margins violated
        let signs = problem::compute_signs(&user, &a);
        let mut ws = Vec::new();
        let w = cutting_plane(&user, &signs, &a, 0.1, &mut ws, &[], &cfg).unwrap();
        assert!(!ws.is_empty());
        // The margin constraints push |w| up so that |w·x| >= 1 at x = ±1.8.
        assert!(w[0].abs() > 0.4, "w = {w:?}");
    }

    #[test]
    fn prox_cccp_finds_margin_split() {
        let user = unlabeled_user();
        let cfg = config();
        let a = Vector::zeros(1);
        let signs = problem::compute_signs(&user, &Vector::from(vec![1.0]));
        let sol = prox_cccp(&user, &a, 0.05, signs, &cfg).unwrap();
        // All samples should sit outside the margin: |w·x| >= ~1 at |x|=1.8.
        assert!(sol.w[0].abs() >= 0.5, "w = {:?}", sol.w);
        assert!(sol.objective < 0.5, "objective {}", sol.objective);
    }

    #[test]
    fn multistart_is_at_least_as_good_as_single_start() {
        let user = unlabeled_user();
        let cfg = config();
        let a = Vector::zeros(1);
        let bad_signs = vec![1.0, -1.0, 1.0, -1.0, 1.0, -1.0]; // hopeless pattern
        let single = prox_cccp(&user, &a, 0.05, bad_signs.clone(), &cfg).unwrap();
        let multi = prox_cccp_multistart(&user, &a, 0.05, bad_signs, 7, &cfg).unwrap();
        assert!(multi.objective <= single.objective + 1e-12);
    }

    #[test]
    fn labeled_only_user_skips_restarts() {
        let xs: Vec<Vector> = [-1.0, 1.0].iter().map(|&v| Vector::from(vec![v])).collect();
        let mut u = UserData::new(xs, vec![-1, 1]);
        u.observed = vec![Some(-1), Some(1)];
        let d = MultiUserDataset::new(vec![u]);
        let user = problem::prepare(&d, None).users.remove(0);
        let cfg = config();
        let sol = prox_cccp_multistart(&user, &Vector::zeros(1), 0.1, vec![], 0, &cfg).unwrap();
        assert!(sol.w[0] > 0.0);
    }

    #[test]
    fn strong_anchor_dominates() {
        let user = unlabeled_user();
        let cfg = config();
        let a = Vector::from(vec![5.0]);
        let signs = problem::compute_signs(&user, &a);
        let sol = prox_cccp(&user, &a, 1e6, signs, &cfg).unwrap();
        assert!(sol.w.distance(&a) < 0.01, "w strayed from anchor: {:?}", sol.w);
    }

    #[test]
    #[should_panic(expected = "prox curvature must be positive")]
    fn non_positive_mu_rejected() {
        let _ = solve_working_set(&[], &[], &Vector::zeros(1), 0.0, &config());
    }
}
