//! The *Group* baseline: cluster similar users, one classifier per group.
//!
//! Pipeline (Sec. VI-A): hash each user's sensory data into `n = 128`
//! discrete buckets with the random-hyperplane algorithm, compare users by
//! the weighted Jaccard similarity of their bucket histograms, cluster users
//! into groups (spectral clustering, 3 clusters in the paper), then within
//! each group pool data/labels and train a group classifier — an SVM when
//! the group has labels of both classes, else k-means on the pooled data.

use crate::baselines::UserPredictions;
use crate::error::CoreError;
use plos_linalg::Vector;
use plos_ml::kmeans::KMeans;
use plos_ml::lsh::RandomHyperplaneHasher;
use plos_ml::similarity::similarity_matrix;
use plos_ml::spectral::spectral_clustering;
use plos_ml::svm::{LinearSvm, SvmModel, SvmParams};
use plos_sensing::dataset::MultiUserDataset;

/// Knobs of the *Group* baseline (paper values as defaults).
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// LSH hash bits; `2^bits` buckets (paper: 128 buckets → 7 bits).
    pub lsh_bits: usize,
    /// Number of user groups (paper: 3).
    pub num_groups: usize,
    /// SVM hyperparameters for group classifiers.
    pub svm: SvmParams,
    /// Seed for LSH hyperplanes and clustering.
    pub seed: u64,
}

impl Default for GroupConfig {
    fn default() -> Self {
        GroupConfig { lsh_bits: 7, num_groups: 3, svm: SvmParams::default(), seed: 0 }
    }
}

/// One group's pooled classifier.
#[derive(Debug, Clone)]
enum GroupModel {
    /// The group pooled labels of both classes.
    Svm(SvmModel),
    /// Unsupervised group: pooled k-means centroids (samples are assigned to
    /// the nearest centroid at prediction time).
    Centroids(Vec<Vector>),
}

/// Trained *Group* baseline.
#[derive(Debug, Clone)]
pub struct GroupBaseline {
    /// Group id per user.
    assignment: Vec<usize>,
    models: Vec<GroupModel>,
}

impl GroupBaseline {
    /// Trains the baseline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] if `num_groups` is 0 or exceeds
    /// the number of users, and [`CoreError::Ml`] if spectral clustering or
    /// any per-group SVM / k-means fit fails.
    pub fn fit(dataset: &MultiUserDataset, config: &GroupConfig) -> Result<Self, CoreError> {
        let _span = plos_obs::Span::enter("group_baseline_fit");
        let t_count = dataset.num_users();
        if config.num_groups < 1 || config.num_groups > t_count {
            return Err(CoreError::InvalidConfig {
                detail: format!("num_groups must be in 1..={t_count}, got {}", config.num_groups),
            });
        }

        // 1. LSH histograms per user, hashed concurrently (the hyperplanes
        // are fixed by the seed, so output is identical at any pool size).
        let pool = plos_exec::Pool::current();
        let hasher = RandomHyperplaneHasher::new(dataset.dim(), config.lsh_bits, config.seed);
        let histograms: Vec<Vec<f64>> =
            pool.par_map(dataset.users(), |_t, u| hasher.histogram(&u.features));

        // 2. Pairwise Jaccard similarity → spectral clustering.
        let affinity = similarity_matrix(&histograms);
        let assignment = spectral_clustering(&affinity, config.num_groups, config.seed)?;

        // 3. One classifier per group over pooled members; groups are
        // disjoint, so they fit concurrently (per-group k-means seeds depend
        // only on `g`).
        let group_ids: Vec<usize> = (0..config.num_groups).collect();
        let models = pool.par_map_indexed(&group_ids, |_i, &g| {
            let members: Vec<usize> =
                assignment.iter().enumerate().filter(|&(_, &a)| a == g).map(|(t, _)| t).collect();
            let mut xs: Vec<Vector> = Vec::new();
            let mut ys: Vec<i8> = Vec::new();
            let mut pooled: Vec<Vector> = Vec::new();
            for &t in &members {
                let user = dataset.user(t);
                pooled.extend(user.features.iter().cloned());
                for (i, obs) in user.observed.iter().enumerate() {
                    if let (Some(y), Some(x)) = (obs, user.features.get(i)) {
                        xs.push(x.clone());
                        ys.push(*y);
                    }
                }
            }
            let has_both = ys.contains(&1) && ys.contains(&-1);
            if has_both {
                Ok::<GroupModel, CoreError>(GroupModel::Svm(
                    LinearSvm::new(config.svm.clone()).fit(&xs, &ys)?,
                ))
            } else if pooled.is_empty() {
                // Empty group (spectral clustering may leave one): a
                // degenerate centroid model that maps everything to one
                // cluster.
                Ok(GroupModel::Centroids(vec![Vector::zeros(dataset.dim())]))
            } else {
                let k = 2.min(pooled.len());
                let result = KMeans::new(k).fit(&pooled, config.seed.wrapping_add(g as u64))?;
                Ok(GroupModel::Centroids(result.centroids))
            }
        })?;
        Ok(GroupBaseline { assignment, models })
    }

    /// Group id of each user.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.models.len()
    }

    /// Whether group `g` trained a supervised classifier. An out-of-range
    /// `g` names no group and therefore no supervised classifier: `false`.
    pub fn is_supervised(&self, g: usize) -> bool {
        matches!(self.models.get(g), Some(GroupModel::Svm(_)))
    }

    /// Predictions for every user's full sample set, using that user's group
    /// classifier.
    // Allowed: `assignment` entries are produced by spectral clustering with
    // `num_groups` clusters and `models` has exactly `num_groups` entries, so
    // `self.models[g]` is in bounds by construction.
    #[allow(clippy::indexing_slicing)]
    pub fn predict_all(&self, dataset: &MultiUserDataset) -> Vec<UserPredictions> {
        assert_eq!(dataset.num_users(), self.assignment.len(), "dataset/model user mismatch");
        dataset
            .users()
            .iter()
            .zip(&self.assignment)
            .map(|(user, &g)| match &self.models[g] {
                GroupModel::Svm(svm) => UserPredictions::Labels(svm.predict_batch(&user.features)),
                GroupModel::Centroids(centroids) => {
                    let clusters = user
                        .features
                        .iter()
                        .map(|x| {
                            centroids
                                .iter()
                                .enumerate()
                                .min_by(|(_, a), (_, b)| {
                                    x.distance_squared(a).total_cmp(&x.distance_squared(b))
                                })
                                .map_or(0, |(i, _)| i)
                        })
                        .collect();
                    UserPredictions::Clusters(clusters)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    fn rotated_cohort() -> MultiUserDataset {
        // 6 users spread over a wide rotation range: the extremes belong in
        // different groups.
        let spec = SyntheticSpec {
            num_users: 6,
            points_per_class: 30,
            max_rotation: std::f64::consts::PI * 0.9,
            flip_prob: 0.0,
        };
        generate_synthetic(&spec, 17).mask_labels(&LabelMask::providers(4, 0.3), 3)
    }

    #[test]
    fn groups_users_and_predicts() {
        let d = rotated_cohort();
        let cfg = GroupConfig { num_groups: 3, ..Default::default() };
        let group = GroupBaseline::fit(&d, &cfg).unwrap();
        assert_eq!(group.assignment().len(), 6);
        assert_eq!(group.num_groups(), 3);
        assert!(group.assignment().iter().all(|&g| g < 3));
        let preds = group.predict_all(&d);
        assert_eq!(preds.len(), 6);
        for (u, p) in d.users().iter().zip(&preds) {
            assert_eq!(p.len(), u.num_samples());
        }
    }

    #[test]
    fn similar_users_share_a_group() {
        // Adjacent rotations (users 0 and 1) are far more similar than the
        // extremes (users 0 and 5).
        let d = rotated_cohort();
        let cfg = GroupConfig { num_groups: 2, ..Default::default() };
        let group = GroupBaseline::fit(&d, &cfg).unwrap();
        let a = group.assignment();
        assert_ne!(a[0], a[5], "extreme rotations should split: {a:?}");
    }

    #[test]
    fn beats_chance_with_group_labels() {
        let d = rotated_cohort();
        let group = GroupBaseline::fit(&d, &GroupConfig::default()).unwrap();
        let preds = group.predict_all(&d);
        let mean_acc: f64 =
            d.users().iter().zip(&preds).map(|(u, p)| p.accuracy(&u.truth)).sum::<f64>() / 6.0;
        assert!(mean_acc > 0.7, "mean accuracy {mean_acc}");
    }

    #[test]
    fn unsupervised_group_uses_clusters() {
        // No labels anywhere → every group falls back to k-means.
        let spec =
            SyntheticSpec { num_users: 4, points_per_class: 20, max_rotation: 0.3, flip_prob: 0.0 };
        let d = generate_synthetic(&spec, 23);
        let cfg = GroupConfig { num_groups: 2, ..Default::default() };
        let group = GroupBaseline::fit(&d, &cfg).unwrap();
        for g in 0..2 {
            assert!(!group.is_supervised(g));
        }
        let preds = group.predict_all(&d);
        for p in &preds {
            assert!(matches!(p, UserPredictions::Clusters(_)));
        }
    }

    #[test]
    fn single_group_equals_pooling_everyone() {
        let d = rotated_cohort();
        let cfg = GroupConfig { num_groups: 1, ..Default::default() };
        let group = GroupBaseline::fit(&d, &cfg).unwrap();
        assert!(group.assignment().iter().all(|&g| g == 0));
        assert!(group.is_supervised(0));
    }

    #[test]
    fn bad_num_groups_is_an_error_not_a_panic() {
        let d = rotated_cohort();
        for bad in [0, 100] {
            let cfg = GroupConfig { num_groups: bad, ..Default::default() };
            let err = GroupBaseline::fit(&d, &cfg).unwrap_err();
            assert!(
                matches!(&err, CoreError::InvalidConfig { detail } if detail.contains("num_groups")),
                "num_groups {bad}: {err:?}"
            );
        }
    }

    #[test]
    fn out_of_range_group_is_not_supervised() {
        let d = rotated_cohort();
        let group = GroupBaseline::fit(&d, &GroupConfig::default()).unwrap();
        assert!(!group.is_supervised(usize::MAX));
    }
}
