//! The *All* baseline: one global SVM for everyone.
//!
//! "All users are required to upload their data to the server along with the
//! labels if there are any. The server will train a single global hyperplane
//! from all the labeled samples, and apply this global hyperplane on the
//! data of all the users." (Sec. VI-A)

use crate::baselines::UserPredictions;
use crate::error::CoreError;
use plos_linalg::Vector;
use plos_ml::error::MlError;
use plos_ml::svm::{LinearSvm, SvmModel, SvmParams};
use plos_sensing::dataset::MultiUserDataset;

/// Trained *All* baseline.
#[derive(Debug, Clone)]
pub struct AllBaseline {
    model: SvmModel,
}

impl AllBaseline {
    /// Trains the global SVM on every observed label in the dataset.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if the dataset contains no observed labels
    /// at all — *All* is undefined without any supervision (the paper's
    /// experiments always have at least one provider) — or if the SVM fails
    /// to train.
    pub fn fit(dataset: &MultiUserDataset) -> Result<Self, CoreError> {
        Self::fit_with(dataset, &SvmParams::default())
    }

    /// Trains with explicit SVM hyperparameters.
    ///
    /// # Errors
    ///
    /// See [`AllBaseline::fit`].
    pub fn fit_with(dataset: &MultiUserDataset, params: &SvmParams) -> Result<Self, CoreError> {
        let _span = plos_obs::Span::enter("all_baseline_fit");
        let mut xs: Vec<Vector> = Vec::new();
        let mut ys: Vec<i8> = Vec::new();
        for user in dataset.users() {
            for (i, obs) in user.observed.iter().enumerate() {
                if let (Some(y), Some(x)) = (obs, user.features.get(i)) {
                    xs.push(x.clone());
                    ys.push(*y);
                }
            }
        }
        if xs.is_empty() {
            return Err(CoreError::Ml(MlError::Empty { what: "labeled samples in the cohort" }));
        }
        let model = LinearSvm::new(params.clone()).fit(&xs, &ys)?;
        Ok(AllBaseline { model })
    }

    /// The underlying global SVM.
    pub fn svm(&self) -> &SvmModel {
        &self.model
    }

    /// Predicts a single sample (user identity is irrelevant to *All*).
    pub fn predict(&self, x: &Vector) -> i8 {
        self.model.predict(x)
    }

    /// Predictions for every user's full sample set.
    pub fn predict_all(&self, dataset: &MultiUserDataset) -> Vec<UserPredictions> {
        dataset
            .users()
            .iter()
            .map(|u| UserPredictions::Labels(self.model.predict_batch(&u.features)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    #[test]
    fn learns_pooled_boundary() {
        let spec =
            SyntheticSpec { num_users: 4, points_per_class: 30, max_rotation: 0.2, flip_prob: 0.0 };
        let data = generate_synthetic(&spec, 1).mask_labels(&LabelMask::providers(2, 0.3), 2);
        let all = AllBaseline::fit(&data).unwrap();
        let preds = all.predict_all(&data);
        assert_eq!(preds.len(), 4);
        for (u, p) in data.users().iter().zip(&preds) {
            assert!(p.accuracy(&u.truth) > 0.85);
        }
    }

    #[test]
    fn ignores_user_identity() {
        let spec = SyntheticSpec { num_users: 2, points_per_class: 20, ..Default::default() };
        let data = generate_synthetic(&spec, 2).mask_labels(&LabelMask::providers(2, 0.5), 1);
        let all = AllBaseline::fit(&data).unwrap();
        let x = &data.user(0).features[0];
        // Same input, same answer regardless of "whose" sample it is.
        assert_eq!(all.predict(x), all.svm().predict(x));
    }

    #[test]
    fn degrades_when_users_differ_strongly() {
        // With near-opposite rotations a single hyperplane cannot fit both
        // extreme users (the paper's Fig. 8 effect).
        let spec = SyntheticSpec {
            num_users: 2,
            points_per_class: 40,
            max_rotation: std::f64::consts::PI * 0.9,
            flip_prob: 0.0,
        };
        let data = generate_synthetic(&spec, 3).mask_labels(&LabelMask::providers(2, 0.5), 0);
        let all = AllBaseline::fit(&data).unwrap();
        let preds = all.predict_all(&data);
        let mean_acc: f64 =
            data.users().iter().zip(&preds).map(|(u, p)| p.accuracy(&u.truth)).sum::<f64>() / 2.0;
        assert!(mean_acc < 0.85, "All should suffer under strong rotation: {mean_acc}");
    }

    #[test]
    fn no_labels_is_an_error() {
        let spec = SyntheticSpec { num_users: 2, points_per_class: 5, ..Default::default() };
        let data = generate_synthetic(&spec, 0);
        assert!(AllBaseline::fit(&data).is_err());
    }
}
