//! The paper's three baseline methods (Sec. VI-A).
//!
//! * [`AllBaseline`] — fully centralized: one global SVM over every
//!   observed label, applied to every user.
//! * [`SingleBaseline`] — fully localized: each user trains on only their
//!   own data; users without labels fall back to k-means clustering,
//!   evaluated under the best cluster-to-class matching.
//! * [`GroupBaseline`] — group-based: LSH histograms → Jaccard similarity →
//!   spectral clustering of users into groups → one classifier per group.
//!
//! All three expose [`UserPredictions`] so the evaluation harness treats
//! them and PLOS uniformly: a method produces, for each user, either signed
//! labels or (for unsupervised fallbacks) cluster ids that the harness
//! scores under optimal matching.

mod all;
mod group;
mod single;

pub use all::AllBaseline;
pub use group::{GroupBaseline, GroupConfig};
pub use single::SingleBaseline;

/// Per-user output of a trained method on that user's samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserPredictions {
    /// Signed labels in `{−1, +1}`, scored directly against ground truth.
    Labels(Vec<i8>),
    /// Cluster ids, scored under the best cluster→class assignment (the
    /// paper's protocol for unsupervised outputs, Sec. VI-A).
    Clusters(Vec<usize>),
}

impl UserPredictions {
    /// Number of predicted samples.
    pub fn len(&self) -> usize {
        match self {
            UserPredictions::Labels(v) => v.len(),
            UserPredictions::Clusters(v) => v.len(),
        }
    }

    /// Returns `true` when there are no predictions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Accuracy against ground-truth ±1 labels, using best-assignment
    /// matching for cluster outputs.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch or `truth` is empty.
    pub fn accuracy(&self, truth: &[i8]) -> f64 {
        match self {
            UserPredictions::Labels(pred) => plos_ml::metrics::accuracy(pred, truth),
            UserPredictions::Clusters(clusters) => {
                let classes: Vec<usize> =
                    truth.iter().map(|&y| if y > 0 { 1 } else { 0 }).collect();
                plos_ml::matching::best_matching_accuracy(clusters, &classes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_predictions_score_directly() {
        let p = UserPredictions::Labels(vec![1, -1, 1, 1]);
        assert_eq!(p.accuracy(&[1, -1, -1, 1]), 0.75);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn cluster_predictions_score_under_matching() {
        // Clusters perfectly anti-aligned with classes still score 1.0.
        let p = UserPredictions::Clusters(vec![0, 0, 1, 1]);
        assert_eq!(p.accuracy(&[1, 1, -1, -1]), 1.0);
        assert_eq!(p.accuracy(&[-1, -1, 1, 1]), 1.0);
    }

    #[test]
    fn empty_detection() {
        assert!(UserPredictions::Clusters(vec![]).is_empty());
    }
}
