//! The *Single* baseline: every user learns alone.
//!
//! "Each user locally conducts classification/clustering based on only his
//! own data. If a user has labels, then an SVM classifier is trained from
//! the labeled samples. Otherwise, the k-means algorithm is applied to
//! derive the clusters" — evaluated "under the best class assignments"
//! (Sec. VI-A).

use crate::baselines::UserPredictions;
use crate::error::CoreError;
use plos_ml::kmeans::KMeans;
use plos_ml::svm::{LinearSvm, SvmModel, SvmParams};
use plos_sensing::dataset::MultiUserDataset;

/// One user's locally trained predictor.
#[derive(Debug, Clone)]
enum LocalModel {
    /// Supervised: the user had labels (of at least one class).
    Svm(SvmModel),
    /// Unsupervised fallback: precomputed cluster assignments over the
    /// user's own samples.
    Clusters(Vec<usize>),
}

/// Trained *Single* baseline: a vector of independent per-user models.
#[derive(Debug, Clone)]
pub struct SingleBaseline {
    models: Vec<LocalModel>,
}

impl SingleBaseline {
    /// Trains each user independently. Users whose labels cover both classes
    /// get an SVM over their labeled samples; everyone else is clustered
    /// with k-means (`k = 2`, seeded deterministically).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Ml`] if any per-user SVM or k-means fit fails
    /// (e.g. a user with no samples at all).
    pub fn fit(dataset: &MultiUserDataset, seed: u64) -> Result<Self, CoreError> {
        Self::fit_with(dataset, &SvmParams::default(), seed)
    }

    /// Trains with explicit SVM hyperparameters.
    ///
    /// # Errors
    ///
    /// See [`SingleBaseline::fit`].
    pub fn fit_with(
        dataset: &MultiUserDataset,
        params: &SvmParams,
        seed: u64,
    ) -> Result<Self, CoreError> {
        let _span = plos_obs::Span::enter("single_baseline_fit");
        // Users train independently (that is the whole point of *Single*),
        // so fit them concurrently; per-user k-means seeds depend only on
        // `t`, and results return in user order, so the trained model is
        // identical at any pool size.
        let pool = plos_exec::Pool::current();
        let models = pool.par_map_indexed(dataset.users(), |t, user| {
            let mut xs = Vec::new();
            let mut ys: Vec<i8> = Vec::new();
            for (i, obs) in user.observed.iter().enumerate() {
                if let (Some(y), Some(x)) = (obs, user.features.get(i)) {
                    xs.push(x.clone());
                    ys.push(*y);
                }
            }
            let has_both = ys.contains(&1) && ys.contains(&-1);
            if has_both {
                Ok::<LocalModel, CoreError>(LocalModel::Svm(
                    LinearSvm::new(params.clone()).fit(&xs, &ys)?,
                ))
            } else {
                let k = 2.min(user.features.len());
                let clusters = KMeans::new(k).fit(&user.features, seed.wrapping_add(t as u64))?;
                Ok(LocalModel::Clusters(clusters.assignments))
            }
        })?;
        Ok(SingleBaseline { models })
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.models.len()
    }

    /// Whether user `t` trained a supervised model. An out-of-range `t`
    /// names no user and therefore no supervised model: `false`.
    pub fn is_supervised(&self, t: usize) -> bool {
        matches!(self.models.get(t), Some(LocalModel::Svm(_)))
    }

    /// Predictions for every user's full sample set.
    pub fn predict_all(&self, dataset: &MultiUserDataset) -> Vec<UserPredictions> {
        assert_eq!(dataset.num_users(), self.models.len(), "dataset/model user mismatch");
        dataset
            .users()
            .iter()
            .zip(&self.models)
            .map(|(user, model)| match model {
                LocalModel::Svm(svm) => UserPredictions::Labels(svm.predict_batch(&user.features)),
                LocalModel::Clusters(assignments) => UserPredictions::Clusters(assignments.clone()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    fn data(providers: usize, rate: f64) -> MultiUserDataset {
        let spec = SyntheticSpec {
            num_users: 4,
            points_per_class: 30,
            max_rotation: std::f64::consts::FRAC_PI_2,
            flip_prob: 0.0,
        };
        generate_synthetic(&spec, 6).mask_labels(&LabelMask::providers(providers, rate), 1)
    }

    #[test]
    fn providers_get_svms_others_get_clusters() {
        let d = data(2, 0.3);
        let single = SingleBaseline::fit(&d, 0).unwrap();
        assert_eq!(single.num_users(), 4);
        let supervised: usize = (0..4).filter(|&t| single.is_supervised(t)).count();
        assert_eq!(supervised, 2);
        let preds = single.predict_all(&d);
        for (t, p) in preds.iter().enumerate() {
            match (single.is_supervised(t), p) {
                (true, UserPredictions::Labels(_)) => {}
                (false, UserPredictions::Clusters(_)) => {}
                other => panic!("mismatched prediction kind: {other:?}"),
            }
        }
    }

    #[test]
    fn rich_labels_give_high_per_user_accuracy() {
        let d = data(4, 0.8);
        let single = SingleBaseline::fit(&d, 0).unwrap();
        let preds = single.predict_all(&d);
        for (u, p) in d.users().iter().zip(&preds) {
            assert!(p.accuracy(&u.truth) > 0.85, "accuracy {}", p.accuracy(&u.truth));
        }
    }

    #[test]
    fn unlabeled_users_cluster_above_chance_but_poorly() {
        // The paper's Fig. 9b/10b shows Single pinned near the bottom on
        // unlabeled users: k-means on the strongly elongated Gaussians
        // prefers splitting along the long axis, not between the classes.
        let d = data(0, 0.5).mask_labels(&LabelMask::providers(1, 0.3), 2);
        let single = SingleBaseline::fit(&d, 3).unwrap();
        let preds = single.predict_all(&d);
        for t in d.non_providers() {
            let acc = preds[t].accuracy(&d.user(t).truth);
            assert!(acc >= 0.5, "matching accuracy is at least chance: {acc}");
            assert!(acc <= 1.0);
        }
    }

    #[test]
    fn sparse_labels_hurt_single_more_than_rich_labels() {
        let sparse = data(4, 0.07);
        let rich = data(4, 0.8);
        let acc_of = |d: &MultiUserDataset| {
            let preds = SingleBaseline::fit(d, 1).unwrap().predict_all(d);
            d.users().iter().zip(&preds).map(|(u, p)| p.accuracy(&u.truth)).sum::<f64>() / 4.0
        };
        assert!(acc_of(&rich) >= acc_of(&sparse), "more labels should not hurt Single");
    }

    #[test]
    fn single_class_labels_fall_back_to_clustering() {
        // Force a user whose observed labels are all +1.
        let spec = SyntheticSpec { num_users: 1, points_per_class: 20, ..Default::default() };
        let mut d = generate_synthetic(&spec, 9);
        let mut users: Vec<_> = d.users().to_vec();
        // Label two positive samples only.
        let pos_idx: Vec<usize> =
            (0..users[0].truth.len()).filter(|&i| users[0].truth[i] == 1).collect();
        users[0].observed[pos_idx[0]] = Some(1);
        users[0].observed[pos_idx[1]] = Some(1);
        d = MultiUserDataset::new(users);
        let single = SingleBaseline::fit(&d, 0).unwrap();
        assert!(!single.is_supervised(0), "one-class labels cannot train an SVM");
    }
}
