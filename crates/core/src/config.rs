//! PLOS hyperparameters.

use plos_opt::QpSolverOptions;

/// Hyperparameters shared by the centralized and distributed trainers.
///
/// The paper's objective (Eq. 2) has three predefined parameters: `λ`
/// controls how far personal hyperplanes may deviate from the global one
/// (large λ → everyone shares one hyperplane, i.e. the *All* baseline;
/// small λ → independent per-user models, i.e. the *Single* baseline);
/// `C_l` and `C_u` weight the losses of labeled and unlabeled samples.
#[derive(Debug, Clone)]
pub struct PlosConfig {
    /// Coupling strength `λ > 0` between personal and global hyperplanes.
    pub lambda: f64,
    /// Weight `C_l` of labeled-sample hinge losses.
    pub c_labeled: f64,
    /// Weight `C_u` of unlabeled-sample margin losses.
    pub c_unlabeled: f64,
    /// Cutting-plane violation tolerance `ε` (Algorithm 1, step 6).
    pub eps: f64,
    /// Maximum cutting-plane rounds per convex subproblem.
    pub max_cutting_rounds: usize,
    /// Convergence tolerance on the CCCP objective `L` (Algorithm 1, step 7).
    pub cccp_tol: f64,
    /// Maximum CCCP rounds.
    pub max_cccp_rounds: usize,
    /// Bias augmentation: if `Some(b)` every feature vector is extended with
    /// the constant `b` so hyperplanes need not pass through the origin
    /// (footnote 1 of the paper).
    pub bias: Option<f64>,
    /// Inner QP solver tuning.
    pub qp: QpSolverOptions,
    /// ADMM penalty `ρ` (distributed only; paper: 1.0).
    pub rho: f64,
    /// ADMM absolute residual tolerance `ε_abs` (distributed only; paper:
    /// 1e-3).
    pub eps_abs: f64,
    /// Maximum ADMM iterations per CCCP round (distributed only).
    pub max_admm_iters: usize,
    /// Class-balance bound `ℓ` from maximum-margin clustering (Xu et al.
    /// 2005, the formulation PLOS builds on): each user's hyperplane must
    /// satisfy `|w_t · x̄_t| ≤ ℓ`, where `x̄_t` is the mean of the user's
    /// *unlabeled* samples. Without it the margin term `|w·x|` admits the
    /// degenerate solution that puts every sample on one side — easy to hit
    /// in high-dimensional, uncentered feature spaces. `f64::INFINITY`
    /// disables the constraint.
    pub balance: f64,
    /// Random sign-pattern restarts per user in the refinement stage. The
    /// maximum-margin-clustering term is non-convex and CCCP is sensitive to
    /// its initialization (Xu et al. 2005); multi-start per-user refinement
    /// escapes the poor local optima a purely global initialization can pin
    /// unlabeled users to. `0` disables restarts (paper-vanilla CCCP).
    pub restarts: usize,
    /// Rounds of block-coordinate refinement after the joint solve: each
    /// round re-solves every user's subproblem (with restarts) against the
    /// current `w0`, then updates `w0` in closed form. `0` disables
    /// refinement.
    pub refine_rounds: usize,
    /// Seed for the (rare) random choices, e.g. the zero-label
    /// initialization and the refinement restarts.
    pub seed: u64,
}

impl Default for PlosConfig {
    fn default() -> Self {
        PlosConfig {
            lambda: 100.0,
            c_labeled: 100.0,
            c_unlabeled: 1.0,
            eps: 1e-3,
            max_cutting_rounds: 60,
            cccp_tol: 1e-3,
            max_cccp_rounds: 12,
            bias: Some(1.0),
            qp: QpSolverOptions::default(),
            rho: 1.0,
            eps_abs: 1e-3,
            max_admm_iters: 60,
            balance: 0.5,
            restarts: 3,
            refine_rounds: 2,
            seed: 0,
        }
    }
}

impl PlosConfig {
    /// A cheaper configuration for tests and doc examples: looser tolerances
    /// and tighter iteration caps, same algorithm.
    pub fn fast() -> Self {
        PlosConfig {
            eps: 1e-2,
            max_cutting_rounds: 25,
            cccp_tol: 1e-2,
            max_cccp_rounds: 5,
            max_admm_iters: 25,
            eps_abs: 1e-2,
            qp: QpSolverOptions { tol: 1e-8, max_sweeps: 2000 },
            restarts: 2,
            refine_rounds: 1,
            ..PlosConfig::default()
        }
    }

    /// Returns a copy with a different `λ` (used by the λ-sweep experiment,
    /// Fig. 7).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range; called by the trainers on
    /// entry.
    pub fn validate(&self) {
        assert!(self.lambda > 0.0 && self.lambda.is_finite(), "lambda must be positive");
        assert!(self.c_labeled >= 0.0, "c_labeled must be non-negative");
        assert!(self.c_unlabeled >= 0.0, "c_unlabeled must be non-negative");
        assert!(self.eps >= 0.0, "eps must be non-negative");
        assert!(self.max_cutting_rounds > 0, "max_cutting_rounds must be positive");
        assert!(self.max_cccp_rounds > 0, "max_cccp_rounds must be positive");
        assert!(self.rho > 0.0, "rho must be positive");
        assert!(self.eps_abs > 0.0, "eps_abs must be positive");
        assert!(self.balance >= 0.0, "balance bound must be non-negative");
        if let Some(b) = self.bias {
            assert!(b.is_finite(), "bias constant must be finite");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PlosConfig::default().validate();
        PlosConfig::fast().validate();
    }

    #[test]
    fn with_lambda_overrides() {
        let c = PlosConfig::default().with_lambda(7.5);
        assert_eq!(c.lambda, 7.5);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_rejected() {
        PlosConfig { lambda: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "rho must be positive")]
    fn zero_rho_rejected() {
        PlosConfig { rho: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "bias constant must be finite")]
    fn nan_bias_rejected() {
        PlosConfig { bias: Some(f64::NAN), ..Default::default() }.validate();
    }
}
