//! PLOS hyperparameters and the fault-tolerance policy of the distributed
//! server.

use plos_opt::QpSolverOptions;
use std::time::Duration;

/// Server-side retry schedule for one gather round of distributed PLOS.
///
/// A round's time budget unfolds as: wait `recv_timeout` for the first
/// gather window, then up to `max_retries` re-broadcasts to the devices
/// that have not answered, each followed by an exponentially growing wait
/// (`backoff_base`, `backoff_factor`), all capped by `round_deadline`.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Initial per-round gather window before the first retry fires.
    pub recv_timeout: Duration,
    /// Bounded number of re-broadcasts to unresponsive devices per round.
    pub max_retries: u32,
    /// Wait after the first re-broadcast.
    pub backoff_base: Duration,
    /// Multiplier applied to the wait after every further re-broadcast.
    pub backoff_factor: f64,
    /// Hard wall-clock cap on one gather round; when it expires the round
    /// closes with whatever replies arrived.
    pub round_deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            recv_timeout: Duration::from_secs(2),
            max_retries: 2,
            backoff_base: Duration::from_millis(500),
            backoff_factor: 2.0,
            round_deadline: Duration::from_secs(30),
        }
    }
}

impl RetryPolicy {
    /// A tight schedule for tests and simulations: short windows so rounds
    /// stalled by dead devices close in tens of milliseconds.
    pub fn fast() -> Self {
        RetryPolicy {
            recv_timeout: Duration::from_millis(60),
            max_retries: 1,
            backoff_base: Duration::from_millis(30),
            backoff_factor: 2.0,
            round_deadline: Duration::from_millis(400),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range; called by the trainers on
    /// entry.
    pub fn validate(&self) {
        assert!(self.recv_timeout > Duration::ZERO, "recv_timeout must be positive");
        assert!(self.backoff_factor >= 1.0, "backoff_factor must be >= 1");
        assert!(
            self.round_deadline >= self.recv_timeout,
            "round_deadline must cover at least one gather window"
        );
    }
}

/// Quorum and eviction policy for fault-tolerant distributed training.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTolerance {
    /// Fraction of live devices whose replies let a gather round close
    /// early, in `(0, 1]`. `1.0` waits for the whole roster (up to the
    /// retry budget), reproducing the synchronous Algorithm 2.
    pub quorum_fraction: f64,
    /// Per-round retry/timeout/backoff schedule.
    pub retry: RetryPolicy,
    /// Consecutive missed rounds after which a device is evicted from the
    /// roster (its link is treated as permanently dead and `T` is rescaled).
    pub evict_after: u32,
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance { quorum_fraction: 1.0, retry: RetryPolicy::default(), evict_after: 2 }
    }
}

impl FaultTolerance {
    /// Tight windows for tests and simulations.
    pub fn fast() -> Self {
        FaultTolerance { retry: RetryPolicy::fast(), ..FaultTolerance::default() }
    }

    /// Returns a copy with a different quorum fraction.
    #[must_use]
    pub fn with_quorum(mut self, quorum_fraction: f64) -> Self {
        self.quorum_fraction = quorum_fraction;
        self
    }

    /// Replies required from `alive` live devices before a round may close
    /// early (always at least one).
    pub fn required_replies(&self, alive: usize) -> usize {
        let required = (self.quorum_fraction * alive as f64).ceil();
        let required = if required.is_finite() && required >= 1.0 {
            // Explicit rounding above makes the cast exact for any roster
            // size a simulation can hold.
            required as usize
        } else {
            1
        };
        required.clamp(1, alive.max(1))
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range; called by the trainers on
    /// entry.
    pub fn validate(&self) {
        assert!(
            self.quorum_fraction > 0.0 && self.quorum_fraction <= 1.0,
            "quorum_fraction must be in (0,1], got {}",
            self.quorum_fraction
        );
        assert!(self.evict_after > 0, "evict_after must be positive");
        self.retry.validate();
    }
}

/// Hyperparameters shared by the centralized and distributed trainers.
///
/// The paper's objective (Eq. 2) has three predefined parameters: `λ`
/// controls how far personal hyperplanes may deviate from the global one
/// (large λ → everyone shares one hyperplane, i.e. the *All* baseline;
/// small λ → independent per-user models, i.e. the *Single* baseline);
/// `C_l` and `C_u` weight the losses of labeled and unlabeled samples.
#[derive(Debug, Clone)]
pub struct PlosConfig {
    /// Coupling strength `λ > 0` between personal and global hyperplanes.
    pub lambda: f64,
    /// Weight `C_l` of labeled-sample hinge losses.
    pub c_labeled: f64,
    /// Weight `C_u` of unlabeled-sample margin losses.
    pub c_unlabeled: f64,
    /// Cutting-plane violation tolerance `ε` (Algorithm 1, step 6).
    pub eps: f64,
    /// Maximum cutting-plane rounds per convex subproblem.
    pub max_cutting_rounds: usize,
    /// Convergence tolerance on the CCCP objective `L` (Algorithm 1, step 7).
    pub cccp_tol: f64,
    /// Maximum CCCP rounds.
    pub max_cccp_rounds: usize,
    /// Bias augmentation: if `Some(b)` every feature vector is extended with
    /// the constant `b` so hyperplanes need not pass through the origin
    /// (footnote 1 of the paper).
    pub bias: Option<f64>,
    /// Inner QP solver tuning.
    pub qp: QpSolverOptions,
    /// ADMM penalty `ρ` (distributed only; paper: 1.0).
    pub rho: f64,
    /// ADMM absolute residual tolerance `ε_abs` (distributed only; paper:
    /// 1e-3).
    pub eps_abs: f64,
    /// Maximum ADMM iterations per CCCP round (distributed only).
    pub max_admm_iters: usize,
    /// Class-balance bound `ℓ` from maximum-margin clustering (Xu et al.
    /// 2005, the formulation PLOS builds on): each user's hyperplane must
    /// satisfy `|w_t · x̄_t| ≤ ℓ`, where `x̄_t` is the mean of the user's
    /// *unlabeled* samples. Without it the margin term `|w·x|` admits the
    /// degenerate solution that puts every sample on one side — easy to hit
    /// in high-dimensional, uncentered feature spaces. `f64::INFINITY`
    /// disables the constraint.
    pub balance: f64,
    /// Random sign-pattern restarts per user in the refinement stage. The
    /// maximum-margin-clustering term is non-convex and CCCP is sensitive to
    /// its initialization (Xu et al. 2005); multi-start per-user refinement
    /// escapes the poor local optima a purely global initialization can pin
    /// unlabeled users to. `0` disables restarts (paper-vanilla CCCP).
    pub restarts: usize,
    /// Rounds of block-coordinate refinement after the joint solve: each
    /// round re-solves every user's subproblem (with restarts) against the
    /// current `w0`, then updates `w0` in closed form. `0` disables
    /// refinement.
    pub refine_rounds: usize,
    /// Seed for the (rare) random choices, e.g. the zero-label
    /// initialization and the refinement restarts.
    pub seed: u64,
}

impl Default for PlosConfig {
    fn default() -> Self {
        PlosConfig {
            lambda: 100.0,
            c_labeled: 100.0,
            c_unlabeled: 1.0,
            eps: 1e-3,
            max_cutting_rounds: 60,
            cccp_tol: 1e-3,
            max_cccp_rounds: 12,
            bias: Some(1.0),
            qp: QpSolverOptions::default(),
            rho: 1.0,
            eps_abs: 1e-3,
            max_admm_iters: 60,
            balance: 0.5,
            restarts: 3,
            refine_rounds: 2,
            seed: 0,
        }
    }
}

impl PlosConfig {
    /// A cheaper configuration for tests and doc examples: looser tolerances
    /// and tighter iteration caps, same algorithm.
    pub fn fast() -> Self {
        PlosConfig {
            eps: 1e-2,
            max_cutting_rounds: 25,
            cccp_tol: 1e-2,
            max_cccp_rounds: 5,
            max_admm_iters: 25,
            eps_abs: 1e-2,
            qp: QpSolverOptions { tol: 1e-8, max_sweeps: 2000 },
            restarts: 2,
            refine_rounds: 1,
            ..PlosConfig::default()
        }
    }

    /// Returns a copy with a different `λ` (used by the λ-sweep experiment,
    /// Fig. 7).
    pub fn with_lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is out of range; called by the trainers on
    /// entry.
    pub fn validate(&self) {
        assert!(self.lambda > 0.0 && self.lambda.is_finite(), "lambda must be positive");
        assert!(self.c_labeled >= 0.0, "c_labeled must be non-negative");
        assert!(self.c_unlabeled >= 0.0, "c_unlabeled must be non-negative");
        assert!(self.eps >= 0.0, "eps must be non-negative");
        assert!(self.max_cutting_rounds > 0, "max_cutting_rounds must be positive");
        assert!(self.max_cccp_rounds > 0, "max_cccp_rounds must be positive");
        assert!(self.rho > 0.0, "rho must be positive");
        assert!(self.eps_abs > 0.0, "eps_abs must be positive");
        assert!(self.balance >= 0.0, "balance bound must be non-negative");
        if let Some(b) = self.bias {
            assert!(b.is_finite(), "bias constant must be finite");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        PlosConfig::default().validate();
        PlosConfig::fast().validate();
        FaultTolerance::default().validate();
        FaultTolerance::fast().validate();
    }

    #[test]
    fn required_replies_rounds_up_and_stays_positive() {
        let ft = FaultTolerance::default().with_quorum(0.75);
        assert_eq!(ft.required_replies(4), 3);
        assert_eq!(ft.required_replies(8), 6);
        assert_eq!(ft.required_replies(1), 1);
        assert_eq!(ft.required_replies(0), 1, "a zero roster still demands one reply");
        let all = FaultTolerance::default();
        assert_eq!(all.required_replies(5), 5, "quorum 1.0 waits for everyone");
        let tiny = FaultTolerance::default().with_quorum(0.01);
        assert_eq!(tiny.required_replies(3), 1, "quorum never drops below one reply");
    }

    #[test]
    #[should_panic(expected = "quorum_fraction must be in")]
    fn zero_quorum_rejected() {
        FaultTolerance::default().with_quorum(0.0).validate();
    }

    #[test]
    #[should_panic(expected = "round_deadline must cover")]
    fn short_round_deadline_rejected() {
        RetryPolicy {
            recv_timeout: Duration::from_secs(1),
            round_deadline: Duration::from_millis(10),
            ..RetryPolicy::default()
        }
        .validate();
    }

    #[test]
    fn with_lambda_overrides() {
        let c = PlosConfig::default().with_lambda(7.5);
        assert_eq!(c.lambda, 7.5);
    }

    #[test]
    #[should_panic(expected = "lambda must be positive")]
    fn zero_lambda_rejected() {
        PlosConfig { lambda: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "rho must be positive")]
    fn zero_rho_rejected() {
        PlosConfig { rho: 0.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "bias constant must be finite")]
    fn nan_bias_rejected() {
        PlosConfig { bias: Some(f64::NAN), ..Default::default() }.validate();
    }
}
