// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! # PLOS — Personalized Learning in mObile Sensing
//!
//! Reproduction of the learning framework from *"Towards Personalized
//! Learning in Mobile Sensing Systems"* (Jiang, Li, Su, Miao, Gu, Xu —
//! ICDCS 2018).
//!
//! `T` users hold private feature vectors; only some provide (partial)
//! labels. PLOS jointly learns a **global hyperplane** `w0` capturing what
//! users share and a **personal bias** `v_t` per user capturing how they
//! differ; user `t` classifies with the personalized hyperplane
//! `w_t = w0 + v_t`. Labeled samples contribute hinge loss; unlabeled
//! samples contribute a maximum-margin-clustering term `|w_t · x|`, which is
//! what lets users with *zero* labels benefit (Sec. IV).
//!
//! Two trainers share all of the underlying math:
//!
//! * [`CentralizedPlos`] — Algorithm 1: CCCP linearization of the unlabeled
//!   terms, a cutting-plane loop over subset-selection constraints, and the
//!   structured dual QP of Eq. (16).
//! * [`DistributedPlos`] — Algorithm 2: consensus ADMM over the simulated
//!   device network of `plos-net`; devices solve the local QP of Eq. (22)
//!   and only ever exchange model parameters with the server.
//!
//! The paper's three baselines live in [`baselines`]; [`eval`] hosts the
//! experiment harness that produces the accuracy numbers reported in the
//! paper's figures.
//!
//! ## Example
//!
//! ```
//! use plos_core::{CentralizedPlos, PlosConfig};
//! use plos_sensing::dataset::LabelMask;
//! use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};
//!
//! let spec = SyntheticSpec { num_users: 4, points_per_class: 40, ..Default::default() };
//! let dataset = generate_synthetic(&spec, 1).mask_labels(&LabelMask::providers(2, 0.1), 2);
//! let model = CentralizedPlos::new(PlosConfig::fast()).fit(&dataset)?;
//! let first_sample = &dataset.user(0).features[0];
//! let label = model.predict(0, first_sample);
//! assert!(label == 1 || label == -1);
//! # Ok::<(), plos_core::CoreError>(())
//! ```

pub mod asynchronous;
pub mod baselines;
pub mod centralized;
pub mod checkpoint;
pub mod config;
pub mod distributed;
pub mod dual;
pub mod error;
pub mod eval;
pub mod local;
pub mod model;
pub mod multiclass;
pub mod problem;
pub mod prox;

/// Narrowing conversion for wire/checkpoint count fields (rounds,
/// iteration counts, device indices). Every call site passes a value
/// bounded by configuration caps or by the u32-sized roster, so the
/// saturating fallback is a defensive clamp, never an expected path —
/// which is why this is infallible instead of returning a typed error.
pub(crate) fn wire_u32<T: TryInto<u32>>(n: T) -> u32 {
    n.try_into().unwrap_or(u32::MAX)
}

pub use asynchronous::{AsyncDistributedPlos, AsyncSpec};
pub use centralized::CentralizedPlos;
pub use checkpoint::CheckpointPolicy;
pub use config::{FaultTolerance, PlosConfig, RetryPolicy};
pub use distributed::{AdmmResiduals, DistributedPlos, DistributedReport, RoundParticipation};
pub use error::CoreError;
pub use model::PersonalizedModel;
pub use multiclass::{MulticlassModel, MulticlassPlos};
