//! Asynchronous distributed PLOS — the paper's Sec. VII future work.
//!
//! "The current distributed algorithm is mainly designed for the
//! synchronous distributed system. For the asynchronous scenario, for
//! instance, some users may delay their responses for arbitrarily long, we
//! will leave it as our future work."
//!
//! This module implements the standard *stale-update* answer: devices that
//! are busy when a round arrives reply instantly with their **previous**
//! local solution instead of recomputing (bounded staleness, à la async
//! consensus ADMM). The server is oblivious — the wire protocol is
//! unchanged — and the Eq. (23) updates simply consume whatever mix of
//! fresh and stale `(w_t, v_t, ξ_t)` arrives. With availability 1 the
//! algorithm *is* Algorithm 2.

use crate::config::PlosConfig;
use crate::error::CoreError;
use crate::local::{LocalSolver, LocalUpdate};
use crate::model::PersonalizedModel;
use crate::problem;
use crate::wire_u32;
use parking_lot::Mutex;
use plos_linalg::Vector;
use plos_net::{star, Endpoint, Message, TrafficStats, TransportError};
use plos_opt::History;
use plos_sensing::dataset::MultiUserDataset;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Device-side wake-up cadence while waiting for server messages.
const CLIENT_IDLE: Duration = Duration::from_millis(50);

/// How long the async server waits for any single reply before declaring
/// the transport broken. Generous because this trainer models stragglers in
/// *compute*, not a faulty network — a silent link here is a real failure.
const SERVER_WAIT: Duration = Duration::from_secs(60);

/// Straggler model for the asynchronous runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncSpec {
    /// Probability that a device is free to recompute when a round arrives
    /// (`1.0` = fully synchronous behaviour).
    pub availability: f64,
    /// Seed of the per-device straggler processes.
    pub seed: u64,
}

impl Default for AsyncSpec {
    fn default() -> Self {
        AsyncSpec { availability: 0.7, seed: 0 }
    }
}

/// Measurements of an asynchronous run.
#[derive(Debug, Clone)]
pub struct AsyncReport {
    /// Per-user traffic (client side).
    pub per_user_traffic: Vec<TrafficStats>,
    /// Total ADMM iterations.
    pub admm_iterations: usize,
    /// CCCP rounds performed.
    pub cccp_rounds: usize,
    /// Objective after each CCCP round.
    pub history: History,
    /// Stale replies per user (round arrived while "busy").
    pub stale_replies: Vec<usize>,
    /// Fresh local solves per user.
    pub fresh_replies: Vec<usize>,
}

impl AsyncReport {
    /// Overall fraction of replies that were stale.
    pub fn staleness(&self) -> f64 {
        let stale: usize = self.stale_replies.iter().sum();
        let fresh: usize = self.fresh_replies.iter().sum();
        let total = stale + fresh;
        if total == 0 {
            0.0
        } else {
            stale as f64 / total as f64
        }
    }
}

/// The asynchronous trainer.
#[derive(Debug, Clone)]
pub struct AsyncDistributedPlos {
    config: PlosConfig,
    spec: AsyncSpec,
}

struct ClientOutcome {
    stats: TrafficStats,
    stale: usize,
    fresh: usize,
}

impl AsyncDistributedPlos {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `availability` is outside
    /// `(0, 1]` (devices that never compute can't train).
    pub fn new(config: PlosConfig, spec: AsyncSpec) -> Self {
        config.validate();
        assert!(
            spec.availability > 0.0 && spec.availability <= 1.0,
            "availability must be in (0,1], got {}",
            spec.availability
        );
        AsyncDistributedPlos { config, spec }
    }

    /// Trains over the simulated network with stragglers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] when the dataset has no users.
    /// Local solve failures on a device degrade that device to the consensus
    /// update instead of aborting the protocol.
    // Allowed: the slot map is created with one entry per device index and
    // the network runs each device closure exactly once per index, so the
    // take-once expect cannot fail.
    #[allow(clippy::expect_used)]
    pub fn fit(
        &self,
        dataset: &MultiUserDataset,
    ) -> Result<(PersonalizedModel, AsyncReport), CoreError> {
        let _span = plos_obs::Span::enter("async_fit");
        let prepared = problem::prepare(dataset, self.config.bias);
        let t_count = prepared.users.len();
        if t_count == 0 {
            return Err(CoreError::EmptyDataset);
        }
        let dim = prepared.dim;

        let slots: Mutex<Vec<Option<LocalSolver>>> = Mutex::new(
            prepared
                .users
                .iter()
                .enumerate()
                .map(|(t, u)| {
                    let mut cfg = self.config.clone();
                    cfg.seed = cfg.seed.wrapping_add(t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    Some(LocalSolver::new(u.clone(), cfg, t_count))
                })
                .collect(),
        );

        let network = star(t_count);
        let spec = self.spec;
        let (server_out, client_outs) = network.run_clients(
            |server_ends| self.server_loop(server_ends, dim, t_count),
            |t, endpoint| {
                let solver = slots.lock().get_mut(t).and_then(Option::take);
                let solver = solver.expect("each device slot taken once");
                Self::client_loop(solver, endpoint, spec, t)
            },
        );

        let (model, mut report) = server_out?;
        report.per_user_traffic = client_outs.iter().map(|c| c.stats).collect();
        report.stale_replies = client_outs.iter().map(|c| c.stale).collect();
        report.fresh_replies = client_outs.iter().map(|c| c.fresh).collect();
        if plos_obs::enabled() {
            plos_obs::emit(
                "async_summary",
                &[
                    ("admm_rounds", report.admm_iterations.into()),
                    ("cccp_rounds", report.cccp_rounds.into()),
                    ("staleness", report.staleness().into()),
                ],
            );
        }
        Ok((model, report))
    }

    fn client_loop(
        mut solver: LocalSolver,
        endpoint: Endpoint,
        spec: AsyncSpec,
        t: usize,
    ) -> ClientOutcome {
        let mut rng = rand::rngs::StdRng::seed_from_u64(
            spec.seed ^ (t as u64).wrapping_mul(0xd129_0d3a_37cf_1e2b),
        );
        let mut last: Option<LocalUpdate> = None;
        let mut stale = 0usize;
        let mut fresh = 0usize;
        loop {
            match endpoint.recv_timeout(CLIENT_IDLE) {
                Ok(Message::Broadcast { round, w0, u_t }) => {
                    if round == 0 {
                        let w_init =
                            solver.initial_hyperplane().unwrap_or_else(|| Vector::zeros(w0.len()));
                        let reply = Message::ClientUpdate {
                            round,
                            user: wire_u32(t),
                            w_t: w_init,
                            v_t: Vector::zeros(w0.len()),
                            xi_t: 0.0,
                        };
                        if endpoint.send(&reply).is_err() {
                            break;
                        }
                        continue;
                    }
                    // Straggler decision: busy devices reply with the stale
                    // solution; the very first round always computes.
                    let update = match &last {
                        Some(previous) if !rng.gen_bool(spec.availability) => {
                            stale += 1;
                            previous.clone()
                        }
                        _ => {
                            fresh += 1;
                            // A failed local solve degrades this device to
                            // the consensus update rather than poisoning the
                            // protocol.
                            let u = solver.solve(&w0, &u_t).unwrap_or_else(|_| LocalUpdate {
                                w_t: w0.clone(),
                                v_t: Vector::zeros(w0.len()),
                                xi_t: 0.0,
                            });
                            last = Some(u.clone());
                            u
                        }
                    };
                    let reply = Message::ClientUpdate {
                        round,
                        user: wire_u32(t),
                        w_t: update.w_t,
                        v_t: update.v_t,
                        xi_t: update.xi_t,
                    };
                    if endpoint.send(&reply).is_err() {
                        break;
                    }
                }
                Ok(Message::CccpAdvance { .. }) => {
                    solver.advance_cccp();
                    last = None; // the linearization changed; don't reuse
                }
                Ok(Message::Refine { round, w0 }) => {
                    let seed = solver.seed_for_round(round);
                    let update = solver.refine(&w0, seed).unwrap_or_else(|_| LocalUpdate {
                        w_t: w0.clone(),
                        v_t: Vector::zeros(w0.len()),
                        xi_t: 0.0,
                    });
                    fresh += 1;
                    last = Some(update.clone());
                    let reply = Message::ClientUpdate {
                        round,
                        user: wire_u32(t),
                        w_t: update.w_t,
                        v_t: update.v_t,
                        xi_t: update.xi_t,
                    };
                    if endpoint.send(&reply).is_err() {
                        break;
                    }
                }
                // The synchronous trainer's eviction machinery can shrink
                // the cohort; mirror the rescale so shared clients behave.
                Ok(Message::RosterUpdate { t_count }) => {
                    solver.set_cohort_size(t_count as usize);
                }
                // The async server never checkpoints (only the synchronous
                // protocol guarantees resumable state), but a shared client
                // must still honor the repositioning message.
                Ok(Message::Restore { round, t_count, w_t }) => {
                    solver.restore(w_t, t_count as usize);
                    last = None; // the anchor changed; a cached reply is stale
                    let reply = Message::ClientUpdate {
                        round,
                        user: wire_u32(t),
                        w_t: Vector::zeros(0),
                        v_t: Vector::zeros(0),
                        xi_t: 0.0,
                    };
                    if endpoint.send(&reply).is_err() {
                        break;
                    }
                }
                // Devices never receive peer updates; drop the stray frame.
                Ok(Message::ClientUpdate { .. }) => {}
                // Nothing from the server yet: keep listening.
                Err(TransportError::Timeout | TransportError::Codec(_)) => {}
                Ok(Message::Shutdown) | Err(TransportError::Disconnected) => break,
            }
        }
        ClientOutcome { stats: endpoint.stats(), stale, fresh }
    }

    /// The server thread. Transport failures propagate as
    /// [`CoreError::Transport`]; a reply of the wrong kind is a
    /// [`CoreError::Protocol`] — nothing panics.
    fn server_loop(
        &self,
        ends: &[Endpoint],
        dim: usize,
        t_count: usize,
    ) -> Result<(PersonalizedModel, AsyncReport), CoreError> {
        // Init: average provider hyperplanes (identical to Algorithm 2).
        let zero = Vector::zeros(dim);
        for end in ends {
            end.send(&Message::Broadcast { round: 0, w0: zero.clone(), u_t: zero.clone() })?;
        }
        let mut w0 = Vector::zeros(dim);
        let mut contributors = 0usize;
        for end in ends {
            if let Message::ClientUpdate { w_t, .. } = end.recv_timeout(SERVER_WAIT)? {
                if w_t.norm() > 0.0 {
                    w0 += &w_t;
                    contributors += 1;
                }
            }
        }
        if contributors > 0 {
            w0.scale_mut(1.0 / contributors as f64);
        } else {
            let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed);
            w0 = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let n = w0.norm();
            if n > 0.0 {
                w0.scale_mut(1.0 / n);
            }
        }

        let kappa = self.config.lambda / t_count as f64;
        let rho = self.config.rho;
        let sqrt_2t = (2.0 * t_count as f64).sqrt();
        let sqrt_t = (t_count as f64).sqrt();

        let mut us = vec![Vector::zeros(dim); t_count];
        let mut w_ts = vec![Vector::zeros(dim); t_count];
        let mut v_ts = vec![Vector::zeros(dim); t_count];
        let mut xi_ts = vec![0.0f64; t_count];
        let mut history = History::new();
        let mut round = 0u32;
        let mut admm_iterations = 0usize;
        let mut cccp_rounds = 0usize;

        for cccp_round in 0..self.config.max_cccp_rounds {
            cccp_rounds += 1;
            if cccp_round > 0 {
                for end in ends {
                    end.send(&Message::CccpAdvance { cccp_round: wire_u32(cccp_round) })?;
                }
            }
            for _ in 0..self.config.max_admm_iters {
                round += 1;
                admm_iterations += 1;
                for (end, u_t) in ends.iter().zip(&us) {
                    end.send(&Message::Broadcast { round, w0: w0.clone(), u_t: u_t.clone() })?;
                }
                for (t, end) in ends.iter().enumerate() {
                    match end.recv_timeout(SERVER_WAIT)? {
                        Message::ClientUpdate { w_t, v_t, xi_t, .. } => {
                            if let (Some(w), Some(v), Some(xi)) =
                                (w_ts.get_mut(t), v_ts.get_mut(t), xi_ts.get_mut(t))
                            {
                                *w = w_t;
                                *v = v_t;
                                *xi = xi_t;
                            }
                        }
                        other => {
                            return Err(CoreError::Protocol {
                                detail: format!("unexpected async gather reply: {other:?}"),
                            })
                        }
                    }
                }
                let mut w0_new = Vector::zeros(dim);
                for ((w_t, v_t), u_t) in w_ts.iter().zip(&v_ts).zip(&us) {
                    w0_new += w_t;
                    w0_new -= v_t;
                    w0_new += u_t;
                }
                w0_new.scale_mut(rho / (2.0 + t_count as f64 * rho));
                let dual_residual = rho * sqrt_2t * w0_new.distance(&w0);
                let mut primal_sq = 0.0;
                for ((w_t, v_t), u_t) in w_ts.iter().zip(&v_ts).zip(us.iter_mut()) {
                    let mut delta = w_t.clone();
                    delta -= &w0_new;
                    delta -= v_t;
                    // plos-lint: allow(D3): fold runs in fixed device-index order; this scalar trajectory is pinned by the golden digests
                    primal_sq += delta.norm_squared();
                    *u_t += &delta;
                }
                w0 = w0_new;
                let primal_residual = primal_sq.sqrt();
                plos_obs::emit(
                    "admm_round",
                    &[
                        ("round", round.into()),
                        ("primal_residual", primal_residual.into()),
                        ("dual_residual", dual_residual.into()),
                    ],
                );
                if dual_residual <= sqrt_2t * self.config.eps_abs
                    && primal_residual <= sqrt_t * self.config.eps_abs
                {
                    break;
                }
            }
            let objective = w0.norm_squared()
                + kappa * v_ts.iter().map(Vector::norm_squared).sum::<f64>()
                + xi_ts.iter().sum::<f64>();
            history.push(objective);
            plos_obs::emit(
                "cccp_round",
                &[("round", cccp_rounds.into()), ("objective", objective.into())],
            );
            if history.converged(self.config.cccp_tol) {
                break;
            }
        }

        // Refinement (always fresh — it anchors the final model).
        for _ in 0..self.config.refine_rounds {
            round += 1;
            for end in ends {
                end.send(&Message::Refine { round, w0: w0.clone() })?;
            }
            for (t, end) in ends.iter().enumerate() {
                match end.recv_timeout(SERVER_WAIT)? {
                    Message::ClientUpdate { w_t, v_t, xi_t, .. } => {
                        if let (Some(w), Some(v), Some(xi)) =
                            (w_ts.get_mut(t), v_ts.get_mut(t), xi_ts.get_mut(t))
                        {
                            *w = w_t;
                            *v = v_t;
                            *xi = xi_t;
                        }
                    }
                    other => {
                        return Err(CoreError::Protocol {
                            detail: format!("unexpected refine reply: {other:?}"),
                        })
                    }
                }
            }
            let mut mean = Vector::zeros(dim);
            for w_t in &w_ts {
                mean += w_t;
            }
            mean.scale_mut(1.0 / t_count as f64);
            w0 = mean.scaled(self.config.lambda / (1.0 + self.config.lambda));
        }

        for end in ends {
            let _ = end.send(&Message::Shutdown);
        }
        let biases: Vec<Vector> = w_ts.iter().map(|w_t| w_t - &w0).collect();
        let model = PersonalizedModel::new(w0, biases, self.config.bias);
        let report = AsyncReport {
            per_user_traffic: Vec::new(),
            admm_iterations,
            cccp_rounds,
            history,
            stale_replies: Vec::new(),
            fresh_replies: Vec::new(),
        };
        Ok((model, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{plos_predictions, score_predictions};
    use plos_sensing::dataset::LabelMask;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    fn cohort() -> MultiUserDataset {
        let spec = SyntheticSpec {
            num_users: 5,
            points_per_class: 25,
            max_rotation: std::f64::consts::FRAC_PI_4,
            flip_prob: 0.05,
        };
        generate_synthetic(&spec, 13).mask_labels(&LabelMask::providers(3, 0.2), 4)
    }

    fn overall(model: &PersonalizedModel, data: &MultiUserDataset) -> f64 {
        let acc = score_predictions(data, &plos_predictions(model, data));
        acc.overall(data.providers().len(), data.num_users() - data.providers().len())
    }

    #[test]
    fn stragglers_still_learn() {
        let data = cohort();
        let trainer =
            AsyncDistributedPlos::new(PlosConfig::fast(), AsyncSpec { availability: 0.5, seed: 3 });
        let (model, report) = trainer.fit(&data).unwrap();
        assert!(overall(&model, &data) > 0.75, "accuracy {}", overall(&model, &data));
        assert!(report.staleness() > 0.2, "staleness {}", report.staleness());
        assert_eq!(report.per_user_traffic.len(), 5);
    }

    #[test]
    fn full_availability_has_no_stale_replies() {
        let data = cohort();
        let trainer =
            AsyncDistributedPlos::new(PlosConfig::fast(), AsyncSpec { availability: 1.0, seed: 0 });
        let (_, report) = trainer.fit(&data).unwrap();
        assert_eq!(report.staleness(), 0.0);
        assert!(report.stale_replies.iter().all(|&s| s == 0));
    }

    #[test]
    fn staleness_tracks_availability() {
        let data = cohort();
        let run = |availability: f64| {
            let trainer =
                AsyncDistributedPlos::new(PlosConfig::fast(), AsyncSpec { availability, seed: 9 });
            trainer.fit(&data).unwrap().1.staleness()
        };
        assert!(run(0.3) > run(0.9), "lower availability must raise staleness");
    }

    #[test]
    fn async_accuracy_close_to_synchronous() {
        let data = cohort();
        let config = PlosConfig::fast();
        let (sync_model, _) = crate::DistributedPlos::new(config.clone()).fit(&data).unwrap();
        let trainer = AsyncDistributedPlos::new(config, AsyncSpec { availability: 0.6, seed: 1 });
        let (async_model, _) = trainer.fit(&data).unwrap();
        let gap = (overall(&sync_model, &data) - overall(&async_model, &data)).abs();
        assert!(gap < 0.12, "async parity gap {gap}");
    }

    #[test]
    #[should_panic(expected = "availability must be in")]
    fn zero_availability_rejected() {
        let _ =
            AsyncDistributedPlos::new(PlosConfig::fast(), AsyncSpec { availability: 0.0, seed: 0 });
    }
}
