//! Experiment harness: the paper's evaluation protocol.
//!
//! Sec. VI-A: "we apply the learned hyperplanes on the data and calculate
//! the difference between the labels assigned by the hyperplanes and the
//! ground truth labels. We report the accuracy on users with labels and
//! without labels separately." Unsupervised outputs (clustering fallbacks)
//! are scored "under the best class assignments".

use crate::baselines::{AllBaseline, GroupBaseline, GroupConfig, SingleBaseline, UserPredictions};
use crate::centralized::CentralizedPlos;
use crate::config::PlosConfig;
use crate::error::CoreError;
use crate::model::PersonalizedModel;
use plos_ml::svm::SvmParams;
use plos_sensing::dataset::MultiUserDataset;

/// Mean per-user accuracy, split by user type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accuracies {
    /// Mean accuracy over users who provided labels (`None` when the cohort
    /// has no providers).
    pub labeled_users: Option<f64>,
    /// Mean accuracy over users who provided no labels (`None` when every
    /// user is a provider).
    pub unlabeled_users: Option<f64>,
}

impl Accuracies {
    /// Mean accuracy over all users regardless of type.
    pub fn overall(&self, num_labeled: usize, num_unlabeled: usize) -> f64 {
        let total = (num_labeled + num_unlabeled) as f64;
        let l = self.labeled_users.unwrap_or(0.0) * num_labeled as f64;
        let u = self.unlabeled_users.unwrap_or(0.0) * num_unlabeled as f64;
        if total == 0.0 {
            0.0
        } else {
            (l + u) / total
        }
    }
}

/// Scores per-user predictions against ground truth, averaged separately
/// over label providers and non-providers.
///
/// # Panics
///
/// Panics if `predictions.len() != dataset.num_users()`.
pub fn score_predictions(
    dataset: &MultiUserDataset,
    predictions: &[UserPredictions],
) -> Accuracies {
    assert_eq!(predictions.len(), dataset.num_users(), "one prediction set per user required");
    let mut labeled = Vec::new();
    let mut unlabeled = Vec::new();
    for (t, (user, preds)) in dataset.users().iter().zip(predictions).enumerate() {
        let acc = preds.accuracy(&user.truth);
        if dataset.user(t).is_provider() {
            labeled.push(acc);
        } else {
            unlabeled.push(acc);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            None
        } else {
            Some(v.iter().sum::<f64>() / v.len() as f64)
        }
    };
    Accuracies { labeled_users: mean(&labeled), unlabeled_users: mean(&unlabeled) }
}

/// Predictions of a trained PLOS model on every user's full sample set.
pub fn plos_predictions(
    model: &PersonalizedModel,
    dataset: &MultiUserDataset,
) -> Vec<UserPredictions> {
    // Scoring each user is independent; results return in user order.
    let pool = plos_exec::Pool::current();
    pool.par_map(dataset.users(), |t, u| {
        UserPredictions::Labels(model.predict_batch(t, &u.features))
    })
}

/// One experiment's accuracy for the four methods the paper compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MethodScores {
    /// PLOS (centralized trainer).
    pub plos: Accuracies,
    /// The *All* baseline.
    pub all: Accuracies,
    /// The *Group* baseline.
    pub group: Accuracies,
    /// The *Single* baseline.
    pub single: Accuracies,
}

/// Harness configuration bundling every method's hyperparameters.
#[derive(Debug, Clone, Default)]
pub struct EvalConfig {
    /// PLOS hyperparameters.
    pub plos: PlosConfig,
    /// Group-baseline knobs.
    pub group: GroupConfig,
    /// SVM hyperparameters for the *All*/*Single* baselines.
    pub svm: SvmParams,
    /// Seed for baseline randomness (k-means restarts etc.).
    pub seed: u64,
}

/// Trains and scores all four methods on one masked dataset — one point of
/// one paper figure.
///
/// # Errors
///
/// Propagates the first training failure of any of the four methods.
pub fn compare_methods(
    dataset: &MultiUserDataset,
    config: &EvalConfig,
) -> Result<MethodScores, CoreError> {
    let _span = plos_obs::Span::enter("compare_methods");
    let plos_model = CentralizedPlos::new(config.plos.clone()).fit(dataset)?;
    let plos = score_predictions(dataset, &plos_predictions(&plos_model, dataset));

    let all_model = AllBaseline::fit_with(dataset, &config.svm)?;
    let all = score_predictions(dataset, &all_model.predict_all(dataset));

    let group_model = GroupBaseline::fit(dataset, &config.group)?;
    let group = score_predictions(dataset, &group_model.predict_all(dataset));

    let single_model = SingleBaseline::fit_with(dataset, &config.svm, config.seed)?;
    let single = score_predictions(dataset, &single_model.predict_all(dataset));

    Ok(MethodScores { plos, all, group, single })
}

/// Leave-one-provider-out cross-validation for `λ` (the paper selects
/// parameters "based on the accuracy reported by leave-one-out
/// cross-validation", Sec. VI-A).
///
/// Each fold hides one provider's labels entirely and measures how well the
/// model trained with candidate `λ` classifies that user — exactly the
/// situation PLOS is built for (a user the system has no labels for). The
/// candidate with the best mean held-out accuracy wins; ties keep the
/// earlier candidate. `max_folds` caps the number of held-out providers per
/// candidate to bound cost.
///
/// # Errors
///
/// Propagates the first training failure among the fold models.
///
/// # Panics
///
/// Panics if `candidates` is empty or the dataset has no providers.
pub fn select_lambda(
    dataset: &MultiUserDataset,
    candidates: &[f64],
    base: &PlosConfig,
    max_folds: usize,
) -> Result<f64, CoreError> {
    let _span = plos_obs::Span::enter("select_lambda");
    assert!(!candidates.is_empty(), "need at least one lambda candidate");
    let providers = dataset.providers();
    assert!(!providers.is_empty(), "cross-validation needs at least one provider");
    let folds: Vec<usize> = providers.into_iter().take(max_folds.max(1)).collect();

    // The grid-search closure cannot propagate errors; park the first
    // failure here (scoring the candidate -inf so it is never selected) and
    // surface it after the search.
    let mut fit_err: Option<CoreError> = None;
    let (best, _) = plos_ml::crossval::grid_search(candidates, |&lambda| {
        if fit_err.is_some() {
            return f64::NEG_INFINITY;
        }
        let config = base.clone().with_lambda(lambda);
        let mut score_sum = 0.0;
        for &held_out in &folds {
            // Hide the held-out provider's labels.
            let mut users = dataset.users().to_vec();
            if let Some(u) = users.get_mut(held_out) {
                u.observed.iter_mut().for_each(|l| *l = None);
            }
            let fold_data = MultiUserDataset::new(users);
            let model = match CentralizedPlos::new(config.clone()).fit(&fold_data) {
                Ok(m) => m,
                Err(e) => {
                    fit_err = Some(e);
                    return f64::NEG_INFINITY;
                }
            };
            let user = fold_data.user(held_out);
            let preds = model.predict_batch(held_out, &user.features);
            let correct = preds.iter().zip(&user.truth).filter(|(p, y)| p == y).count();
            // plos-lint: allow(D3): per-fold scores accumulate in fixed fold order across sequential fits, not over a slice
            score_sum += correct as f64 / user.num_samples() as f64;
        }
        score_sum / folds.len() as f64
    });
    match fit_err {
        Some(e) => Err(e),
        None => Ok(best),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_linalg::Vector;
    use plos_sensing::dataset::{LabelMask, UserData};
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

    #[test]
    fn scoring_splits_user_types() {
        let mut u0 =
            UserData::new(vec![Vector::from(vec![1.0]), Vector::from(vec![-1.0])], vec![1, -1]);
        u0.observed[0] = Some(1);
        let u1 =
            UserData::new(vec![Vector::from(vec![1.0]), Vector::from(vec![-1.0])], vec![1, -1]);
        let d = MultiUserDataset::new(vec![u0, u1]);
        let preds = vec![
            UserPredictions::Labels(vec![1, -1]), // provider: 100%
            UserPredictions::Labels(vec![1, 1]),  // non-provider: 50%
        ];
        let acc = score_predictions(&d, &preds);
        assert_eq!(acc.labeled_users, Some(1.0));
        assert_eq!(acc.unlabeled_users, Some(0.5));
        assert!((acc.overall(1, 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn all_providers_yields_no_unlabeled_score() {
        let spec = SyntheticSpec { num_users: 2, points_per_class: 10, ..Default::default() };
        let d = generate_synthetic(&spec, 0).mask_labels(&LabelMask::providers(2, 0.5), 0);
        let preds: Vec<UserPredictions> =
            d.users().iter().map(|u| UserPredictions::Labels(u.truth.clone())).collect();
        let acc = score_predictions(&d, &preds);
        assert_eq!(acc.labeled_users, Some(1.0));
        assert_eq!(acc.unlabeled_users, None);
    }

    #[test]
    fn compare_methods_runs_all_four() {
        let spec = SyntheticSpec {
            num_users: 4,
            points_per_class: 25,
            max_rotation: std::f64::consts::FRAC_PI_4,
            flip_prob: 0.05,
        };
        let d = generate_synthetic(&spec, 3).mask_labels(&LabelMask::providers(2, 0.2), 1);
        let config = EvalConfig { plos: PlosConfig::fast(), ..Default::default() };
        let scores = compare_methods(&d, &config).unwrap();
        for acc in [scores.plos, scores.all, scores.group, scores.single] {
            let l = acc.labeled_users.expect("providers exist");
            let u = acc.unlabeled_users.expect("non-providers exist");
            assert!((0.0..=1.0).contains(&l));
            assert!((0.0..=1.0).contains(&u));
        }
        // The paper's headline: PLOS is at least competitive with every
        // baseline on this mild-rotation cohort.
        let plos_overall = scores.plos.overall(2, 2);
        assert!(plos_overall > 0.75, "PLOS overall {plos_overall}");
    }

    #[test]
    fn lambda_selection_returns_a_candidate_deterministically() {
        let spec =
            SyntheticSpec { num_users: 3, points_per_class: 15, max_rotation: 0.3, flip_prob: 0.0 };
        let d = generate_synthetic(&spec, 4).mask_labels(&LabelMask::providers(2, 0.3), 0);
        let candidates = [1.0, 50.0];
        let cfg = PlosConfig::fast();
        let a = select_lambda(&d, &candidates, &cfg, 2).unwrap();
        let b = select_lambda(&d, &candidates, &cfg, 2).unwrap();
        assert_eq!(a, b, "CV must be deterministic");
        assert!(candidates.contains(&a));
    }

    #[test]
    #[should_panic(expected = "at least one lambda candidate")]
    fn lambda_selection_rejects_empty_grid() {
        let spec = SyntheticSpec { num_users: 2, points_per_class: 5, ..Default::default() };
        let d = generate_synthetic(&spec, 0).mask_labels(&LabelMask::providers(1, 0.5), 0);
        let _ = select_lambda(&d, &[], &PlosConfig::fast(), 1);
    }

    #[test]
    #[should_panic(expected = "one prediction set per user")]
    fn prediction_count_checked() {
        let spec = SyntheticSpec { num_users: 2, points_per_class: 5, ..Default::default() };
        let d = generate_synthetic(&spec, 0);
        let _ = score_predictions(&d, &[]);
    }
}
