// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Zero-dependency telemetry for the PLOS solvers.
//!
//! The paper's evaluation depends on seeing *inside* the training loops:
//! per-CCCP-iteration objectives (Eq. 10–11), cutting-plane working-set
//! growth (Eq. 12–15), and ADMM primal/dual residuals (Eq. 24). This crate
//! is the single funnel for that visibility — spans with wall-clock timers,
//! monotonic counters, gauges, and structured per-iteration trace events —
//! with two hard guarantees:
//!
//! 1. **Near-zero overhead when disabled.** Every entry point checks one
//!    relaxed atomic load and returns immediately when no sink is
//!    installed. No allocation, no locking, no clock reads.
//! 2. **No perturbation.** Telemetry only *reads* solver state; a run with
//!    tracing enabled produces bit-identical models to a run without it
//!    (enforced by the `trace_parity` gate in `ci.sh`).
//!
//! # Enabling the trace
//!
//! Set `PLOS_TRACE=<path>` to stream every event as one JSON object per
//! line (JSONL) to `<path>`. The environment is read once, lazily, on the
//! first telemetry call. Tests and embedders can instead install a sink
//! programmatically with [`set_sink`] (which takes precedence over the
//! environment).
//!
//! # Event shape
//!
//! Every event renders as a flat JSON object with an `"event"` key naming
//! it, e.g.
//!
//! ```json
//! {"event":"admm_round","round":3,"primal_residual":0.0125,"dual_residual":0.0031}
//! ```
//!
//! See DESIGN.md §9 for the full event catalogue.

pub mod json;

use std::collections::BTreeMap;
use std::fs;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// One telemetry field value. Numeric variants cover every counter and
/// residual the solvers emit; `Str` is reserved for identifiers (span
/// names, scenario labels) so constructing events stays allocation-light.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sizes, rounds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (objectives, residuals, rates).
    F64(f64),
    /// Boolean flag (convergence, degradation).
    Bool(bool),
    /// Short string label.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured trace event: a name plus ordered key/value fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (the `"event"` key in the JSONL rendering).
    pub name: &'static str,
    /// Ordered fields; order is preserved in the rendering.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Field as `f64`, converting integer variants.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }

    /// Field as `u64`.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        match self.field(key)? {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }
}

/// Destination for trace events. Implementations must be thread-safe: the
/// solver hot loops record from whichever thread holds the iteration.
pub trait Sink: Send + Sync {
    /// Records one event. Must not panic; I/O errors are swallowed (losing
    /// telemetry must never fail training).
    fn record(&self, event: &Event);
}

/// Fast-path switch. `false` until a sink is installed (via environment or
/// [`set_sink`]), so disabled telemetry costs one relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Guards the one-time `PLOS_TRACE` environment read. [`set_sink`] also
/// sets it so a programmatic sink is never clobbered by the environment.
static INIT: OnceLock<()> = OnceLock::new();

/// The installed sink, if any.
fn sink_slot() -> &'static RwLock<Option<Arc<dyn Sink>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Sink>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

/// Counter / gauge registries. `BTreeMap` keeps snapshots deterministic.
fn counter_registry() -> &'static Mutex<BTreeMap<&'static str, u64>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, u64>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn gauge_registry() -> &'static Mutex<BTreeMap<&'static str, f64>> {
    static REG: OnceLock<Mutex<BTreeMap<&'static str, f64>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn init_from_env() {
    INIT.get_or_init(|| {
        if let Ok(path) = std::env::var("PLOS_TRACE") {
            if !path.is_empty() {
                if let Ok(sink) = JsonlSink::create(&path) {
                    *sink_slot().write() = Some(Arc::new(sink));
                    ENABLED.store(true, Ordering::SeqCst);
                }
            }
        }
    });
}

/// Whether telemetry is live. The first call reads `PLOS_TRACE` (unless a
/// sink was already installed with [`set_sink`]); after that it is a single
/// relaxed atomic load.
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Installs (or with `None`, removes) the process-wide sink, overriding the
/// `PLOS_TRACE` environment. Intended for tests and embedders that need to
/// capture events in memory.
pub fn set_sink(sink: Option<Arc<dyn Sink>>) {
    // Mark env init done first, so a concurrent first call to `enabled()`
    // cannot re-install the environment sink over this one.
    let _ = INIT.set(());
    let on = sink.is_some();
    *sink_slot().write() = sink;
    ENABLED.store(on, Ordering::SeqCst);
}

/// Emits one event to the installed sink. A no-op (one atomic load) when
/// telemetry is disabled. Field slices are typically stack-allocated at the
/// call site:
///
/// ```
/// plos_obs::emit("cccp_round", &[("round", 2u64.into()), ("objective", 0.5.into())]);
/// ```
pub fn emit(name: &'static str, fields: &[(&'static str, Value)]) {
    if !enabled() {
        return;
    }
    let event = Event { name, fields: fields.to_vec() };
    let guard = sink_slot().read();
    if let Some(sink) = guard.as_deref() {
        sink.record(&event);
    }
}

/// Adds `delta` to the named monotonic counter (saturating, so multi-day
/// chaos runs cannot wrap into nonsense telemetry). No-op when disabled.
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    let mut reg = counter_registry().lock();
    let slot = reg.entry(name).or_insert(0);
    *slot = slot.saturating_add(delta);
}

/// Current value of a counter (0 if never touched).
pub fn counter_get(name: &str) -> u64 {
    counter_registry().lock().get(name).copied().unwrap_or(0)
}

/// Snapshot of every counter, sorted by name.
pub fn counters_snapshot() -> Vec<(&'static str, u64)> {
    counter_registry().lock().iter().map(|(k, v)| (*k, *v)).collect()
}

/// Sets the named gauge to `value`. No-op when disabled.
pub fn gauge_set(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    gauge_registry().lock().insert(name, value);
}

/// Current value of a gauge, if it has ever been set.
pub fn gauge_get(name: &str) -> Option<f64> {
    gauge_registry().lock().get(name).copied()
}

/// Clears all counters and gauges. Test hook: the registries are
/// process-global, so tests that assert exact counts reset first.
pub fn reset_metrics() {
    counter_registry().lock().clear();
    gauge_registry().lock().clear();
}

/// A wall-clock span. Construction stamps the clock (only when telemetry is
/// enabled); dropping emits a `span` event with the elapsed microseconds:
///
/// ```json
/// {"event":"span","name":"centralized_fit","duration_us":10250}
/// ```
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// Opens a span. Free (no clock read) when telemetry is disabled.
    pub fn enter(name: &'static str) -> Span {
        // plos-lint: allow(D2): span timing feeds telemetry duration fields only, never model state
        let start = if enabled() { Some(Instant::now()) } else { None };
        Span { name, start }
    }

    /// Closes the span now, emitting its duration. Equivalent to dropping.
    pub fn finish(self) {}
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let micros = start.elapsed().as_micros();
            // u64::MAX µs is ~585k years; saturate rather than truncate.
            let micros = u64::try_from(micros).unwrap_or(u64::MAX);
            emit("span", &[("name", self.name.into()), ("duration_us", micros.into())]);
        }
    }
}

/// Sink that appends one JSON object per event to a file (JSONL). Writes
/// are line-buffered and flushed per record so the trace is complete even
/// if the process exits without dropping the global sink.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<fs::File>>,
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<JsonlSink> {
        let file = fs::File::create(path)?;
        Ok(JsonlSink { out: Mutex::new(std::io::BufWriter::new(file)) })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = json::render(event);
        let mut out = self.out.lock();
        // Telemetry loss must never fail training: I/O errors are dropped.
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

/// Sink that buffers events in memory. Test scaffolding for asserting on
/// exactly what the solvers emitted.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// Empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Clones out everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drains and returns everything recorded so far.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock())
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink slot and registries are process-global; tests that install
    // sinks serialize on this lock so they cannot observe each other.
    fn global_guard() -> parking_lot::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_emit_is_a_no_op() {
        let _g = global_guard();
        set_sink(None);
        emit("never", &[("x", 1u64.into())]);
        assert!(!enabled());
    }

    #[test]
    fn memory_sink_captures_events_in_order() {
        let _g = global_guard();
        let sink = Arc::new(MemorySink::new());
        set_sink(Some(sink.clone()));
        emit("a", &[("n", 1u64.into())]);
        emit("b", &[("x", 2.5.into()), ("ok", true.into())]);
        set_sink(None);
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(events[1].field_f64("x"), Some(2.5));
        assert_eq!(events[1].field("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn counters_saturate_and_snapshot_sorted() {
        let _g = global_guard();
        let sink = Arc::new(MemorySink::new());
        set_sink(Some(sink));
        reset_metrics();
        counter_add("z_last", 2);
        counter_add("a_first", u64::MAX - 1);
        counter_add("a_first", 5);
        assert_eq!(counter_get("a_first"), u64::MAX, "saturates instead of wrapping");
        let snap = counters_snapshot();
        assert_eq!(snap[0].0, "a_first");
        assert_eq!(snap[1], ("z_last", 2));
        reset_metrics();
        set_sink(None);
    }

    #[test]
    fn gauges_hold_last_value() {
        let _g = global_guard();
        let sink = Arc::new(MemorySink::new());
        set_sink(Some(sink));
        reset_metrics();
        gauge_set("rho", 1.0);
        gauge_set("rho", 0.25);
        assert_eq!(gauge_get("rho"), Some(0.25));
        assert_eq!(gauge_get("missing"), None);
        reset_metrics();
        set_sink(None);
    }

    #[test]
    fn span_emits_duration() {
        let _g = global_guard();
        let sink = Arc::new(MemorySink::new());
        set_sink(Some(sink.clone()));
        Span::enter("unit_test_span").finish();
        set_sink(None);
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "span");
        assert_eq!(events[0].field("name"), Some(&Value::Str("unit_test_span".into())));
        assert!(events[0].field_u64("duration_us").is_some());
    }

    #[test]
    fn disabled_span_records_nothing() {
        let _g = global_guard();
        set_sink(None);
        let span = Span::enter("dark");
        assert!(span.start.is_none(), "no clock read when disabled");
        drop(span);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let _g = global_guard();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("plos_obs_test_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event { name: "e1", fields: vec![("k", Value::U64(7))] });
        sink.record(&Event { name: "e2", fields: vec![("s", Value::Str("x\"y".into()))] });
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"event\":\"e1\",\"k\":7}");
        assert_eq!(lines[1], "{\"event\":\"e2\",\"s\":\"x\\\"y\"}");
    }
}
