//! Minimal hand-rolled JSON: rendering for the JSONL trace sink and a
//! recursive-descent parser for reading traces back (tests, bench reports).
//!
//! This is deliberately not a general JSON library — it covers exactly the
//! subset the trace schema emits: flat-ish objects, arrays, strings with
//! escapes, integers, floats, booleans, and null. Non-finite floats render
//! as `null` (JSON has no NaN/Infinity).

use crate::{Event, Value};

/// Renders one event as a single-line JSON object:
/// `{"event":"<name>","k1":v1,...}`.
pub fn render(event: &Event) -> String {
    let mut out = String::with_capacity(64);
    out.push_str("{\"event\":");
    render_str(event.name, &mut out);
    for (key, value) in &event.fields {
        out.push(',');
        render_str(key, &mut out);
        out.push(':');
        render_value(value, &mut out);
    }
    out.push('}');
    out
}

/// Renders an arbitrary key/value list (no `"event"` key) as one JSON
/// object. Used by the bench suites for report headers.
pub fn render_object(fields: &[(&str, Value)]) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    for (i, (key, value)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_str(key, &mut out);
        out.push(':');
        render_value(value, &mut out);
    }
    out.push('}');
    out
}

/// Renders one [`Value`] into `out`.
pub fn render_value(value: &Value, out: &mut String) {
    use std::fmt::Write as _;
    match value {
        // Writing into a String cannot fail; the Results are vacuous.
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => render_f64(*v, out),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(s) => render_str(s, out),
    }
}

/// Renders a float. Rust's `Display` for `f64` produces the shortest
/// decimal that round-trips, which is exactly what a trace needs; NaN and
/// infinities become `null`.
pub fn render_f64(v: f64, out: &mut String) {
    use std::fmt::Write as _;
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // Keep floats syntactically floats so the parser round-trips the
        // numeric type: `1` parses as integer, `1.0` as float.
        if needs_float_marker(out) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// True when the rendered buffer's trailing number token has no `.` or `e`
/// (i.e. `Display` printed an integer-valued float like `3`).
fn needs_float_marker(out: &str) -> bool {
    let tail: &str = out
        .rfind(|c: char| !(c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' || c == '-'))
        .and_then(|i| out.get(i + 1..))
        .unwrap_or(out);
    !tail.is_empty() && !tail.contains(['.', 'e', 'E'])
}

/// Renders a JSON string with escapes.
pub fn render_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            // plos-lint: allow(C2): char to u32 is a widening scalar-value conversion, not a narrowing
            c if (c as u32) < 0x20 => {
                // plos-lint: allow(C2): char to u32 is a widening scalar-value conversion, not a narrowing
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null` (also what non-finite floats render as).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer without sign, fraction, or exponent.
    U64(u64),
    /// Negative integer without fraction or exponent.
    I64(i64),
    /// Any other number.
    F64(f64),
    /// String (escapes resolved).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member by key (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Exact unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse failure: what was expected and the byte offset where parsing
/// stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser was looking for.
    pub expected: &'static str,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "expected {} at byte {}", self.expected, self.at)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document. Trailing whitespace is allowed; trailing
/// non-whitespace is an error.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(ParseError { expected: "end of input", at: p.pos });
    }
    Ok(value)
}

/// Parses a JSONL trace: one JSON object per non-empty line.
///
/// # Errors
///
/// Returns the first line's [`ParseError`] (offset is within that line).
pub fn parse_jsonl(input: &str) -> Result<Vec<Json>, ParseError> {
    let mut out = Vec::new();
    for line in input.lines() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse(line)?);
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, expected: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(ParseError { expected, at: self.pos })
        }
    }

    fn eat_keyword(&mut self, word: &'static str) -> Result<(), ParseError> {
        let end = self.pos + word.len();
        if self.bytes.get(self.pos..end) == Some(word.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(ParseError { expected: word, at: self.pos })
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_keyword("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|()| Json::Bool(false)),
            Some(b'n') => self.eat_keyword("null").map(|()| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(ParseError { expected: "value", at: self.pos }),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{', "'{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Json::Obj(members)),
                _ => return Err(ParseError { expected: "',' or '}'", at: self.pos }),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(ParseError { expected: "',' or ']'", at: self.pos }),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError { expected: "4 hex digits", at: self.pos })?;
                        self.pos += 4;
                        // Surrogate pairs are out of scope for the trace
                        // schema; lone surrogates map to the replacement
                        // character rather than failing the whole trace.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(ParseError { expected: "escape", at: self.pos }),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-decode the UTF-8 sequence starting one byte back.
                    let start = self.pos - 1;
                    let rest = self
                        .bytes
                        .get(start..)
                        .and_then(|r| std::str::from_utf8(r).ok())
                        .ok_or(ParseError { expected: "utf-8", at: start })?;
                    let c =
                        rest.chars().next().ok_or(ParseError { expected: "char", at: start })?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
                None => return Err(ParseError { expected: "closing '\"'", at: self.pos }),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self
            .bytes
            .get(start..self.pos)
            .and_then(|t| std::str::from_utf8(t).ok())
            .ok_or(ParseError { expected: "number", at: start })?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| ParseError { expected: "number", at: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_value_kinds() {
        let event = Event {
            name: "kinds",
            fields: vec![
                ("u", Value::U64(42)),
                ("i", Value::I64(-7)),
                ("f", Value::F64(0.125)),
                ("whole", Value::F64(3.0)),
                ("b", Value::Bool(false)),
                ("s", Value::Str("a\"b\\c\nd".into())),
                ("nan", Value::F64(f64::NAN)),
            ],
        };
        assert_eq!(
            render(&event),
            "{\"event\":\"kinds\",\"u\":42,\"i\":-7,\"f\":0.125,\"whole\":3.0,\
             \"b\":false,\"s\":\"a\\\"b\\\\c\\nd\",\"nan\":null}"
        );
    }

    #[test]
    fn parses_what_it_renders() {
        let event = Event {
            name: "rt",
            fields: vec![
                ("round", Value::U64(3)),
                ("objective", Value::F64(-12.515625)),
                ("converged", Value::Bool(true)),
                ("label", Value::Str("drop 5%".into())),
            ],
        };
        let parsed = parse(&render(&event)).unwrap();
        assert_eq!(parsed.get("event").and_then(Json::as_str), Some("rt"));
        assert_eq!(parsed.get("round").and_then(Json::as_u64), Some(3));
        assert_eq!(parsed.get("objective").and_then(Json::as_f64), Some(-12.515625));
        assert_eq!(parsed.get("converged"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("label").and_then(Json::as_str), Some("drop 5%"));
    }

    #[test]
    fn floats_round_trip_exactly() {
        for &v in
            &[0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.2250738585072014e-308, 12345.678901]
        {
            let mut s = String::new();
            render_f64(v, &mut s);
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} rendered as {s}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        let mut s = String::new();
        render_f64(7.0, &mut s);
        assert_eq!(s, "7.0");
        assert_eq!(parse(&s).unwrap(), Json::F64(7.0));
        let mut neg = String::new();
        render_f64(-4.0, &mut neg);
        assert_eq!(neg, "-4.0");
    }

    #[test]
    fn parses_nested_structures() {
        let doc = parse("{\"points\":[{\"n\":1},{\"n\":2}],\"ok\":true,\"none\":null}").unwrap();
        let points = doc.get("points").and_then(Json::as_arr).unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1].get("n").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("none"), Some(&Json::Null));
    }

    #[test]
    fn parses_negative_and_exponent_numbers() {
        assert_eq!(parse("-5").unwrap(), Json::I64(-5));
        assert_eq!(parse("18446744073709551615").unwrap(), Json::U64(u64::MAX));
        assert_eq!(parse("2.5e-3").unwrap(), Json::F64(0.0025));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\there \"quoted\" back\\slash\nnewline \u{1}ctl unicode \u{3b1}";
        let mut rendered = String::new();
        render_str(original, &mut rendered);
        assert_eq!(parse(&rendered).unwrap(), Json::Str(original.to_string()));
    }

    #[test]
    fn jsonl_parses_line_by_line() {
        let text = "{\"event\":\"a\",\"n\":1}\n\n{\"event\":\"b\",\"n\":2}\n";
        let docs = parse_jsonl(text).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1].get("n").and_then(Json::as_u64), Some(2));
    }
}
