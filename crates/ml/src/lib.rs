// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Classical machine-learning substrate for the PLOS reproduction.
//!
//! Everything the paper's *baselines* and evaluation pipeline need, built on
//! `plos-linalg`/`plos-opt`:
//!
//! * [`svm`] — linear SVM trained by dual coordinate descent (the *All* and
//!   *Single* baselines, and the initializer for PLOS itself);
//! * [`kmeans`] — k-means++ clustering (the *Single* baseline for users with
//!   no labels, and the final step of spectral clustering);
//! * [`spectral`] — normalized spectral clustering (the *Group* baseline);
//! * [`lsh`] — sign-random-projection hashing of sensory data into discrete
//!   buckets (the *Group* baseline's user-similarity sketch, Sec. VI-A);
//! * [`similarity`] — histogram Jaccard similarity `Σ min / Σ max`;
//! * [`matching`] — Hungarian assignment for evaluating clusterings under
//!   the best cluster-to-class matching;
//! * [`metrics`] — accuracy and confusion counts;
//! * [`scale`] — standard (z-score) feature scaling;
//! * [`crossval`] — k-fold / leave-one-out splits and grid search, used for
//!   the paper's parameter selection.

pub mod crossval;
pub mod error;
pub mod kmeans;
pub mod lsh;
pub mod matching;
pub mod metrics;
pub mod scale;
pub mod similarity;
pub mod spectral;
pub mod svm;

pub use error::MlError;
pub use kmeans::{KMeans, KMeansResult};
pub use lsh::RandomHyperplaneHasher;
pub use matching::best_matching_accuracy;
pub use metrics::accuracy;
pub use scale::StandardScaler;
pub use similarity::histogram_jaccard;
pub use spectral::spectral_clustering;
pub use svm::{LinearSvm, SvmModel, SvmParams};
