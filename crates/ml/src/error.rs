//! Error type shared by the fallible trainers in this crate.

use plos_linalg::LinalgError;
use std::fmt;

/// Error returned by fallible routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// An error surfaced by the linear-algebra layer.
    Linalg(LinalgError),
    /// The input container was empty where a non-empty one is required.
    Empty {
        /// What was empty.
        what: &'static str,
    },
    /// Two paired inputs had inconsistent lengths or dimensions.
    LengthMismatch {
        /// What was mismatched.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        actual: usize,
    },
    /// A binary label was outside `{−1, +1}`.
    BadLabel {
        /// Index of the offending label.
        index: usize,
    },
    /// The requested cluster count is zero or exceeds the sample count.
    BadClusterCount {
        /// Requested number of clusters.
        k: usize,
        /// Number of samples available.
        n: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::Linalg(e) => write!(f, "{e}"),
            MlError::Empty { what } => write!(f, "empty input: {what}"),
            MlError::LengthMismatch { what, expected, actual } => {
                write!(f, "length mismatch in {what}: expected {expected}, got {actual}")
            }
            MlError::BadLabel { index } => {
                write!(f, "label at index {index} is not in {{-1, +1}}")
            }
            MlError::BadClusterCount { k, n } => {
                write!(f, "cluster count k={k} invalid for {n} samples")
            }
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for MlError {
    fn from(e: LinalgError) -> Self {
        MlError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<MlError> = vec![
            MlError::Linalg(LinalgError::Singular),
            MlError::Empty { what: "samples" },
            MlError::LengthMismatch { what: "labels", expected: 3, actual: 2 },
            MlError::BadLabel { index: 0 },
            MlError::BadClusterCount { k: 5, n: 3 },
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
            assert!(!format!("{c:?}").is_empty());
        }
    }
}
