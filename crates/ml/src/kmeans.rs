//! k-means clustering with k-means++ initialization.
//!
//! The *Single* baseline applies k-means to users with no labels
//! (Sec. VI-A), and spectral clustering finishes with k-means on the
//! embedded rows. Runs are deterministic given a seed.

use crate::error::MlError;
use plos_linalg::Vector;
use rand::{Rng, SeedableRng};

/// k-means trainer.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Stop when no assignment changes in an iteration.
    pub n_init: usize,
}

impl Default for KMeans {
    fn default() -> Self {
        KMeans { k: 2, max_iters: 300, n_init: 4 }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per sample, in `0..k`.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` of them.
    pub centroids: Vec<Vector>,
    /// Sum of squared distances of samples to their centroid.
    pub inertia: f64,
}

impl KMeans {
    /// Creates a trainer for `k` clusters with default iteration limits.
    pub fn new(k: usize) -> Self {
        KMeans { k, ..KMeans::default() }
    }

    /// Clusters `xs`, restarting `n_init` times and keeping the lowest
    /// inertia.
    ///
    /// # Errors
    ///
    /// * [`MlError::Empty`] if `xs` is empty.
    /// * [`MlError::BadClusterCount`] if `k == 0` or `k > xs.len()`.
    pub fn fit(&self, xs: &[Vector], seed: u64) -> Result<KMeansResult, MlError> {
        if xs.is_empty() {
            return Err(MlError::Empty { what: "k-means samples" });
        }
        if self.k == 0 || self.k > xs.len() {
            return Err(MlError::BadClusterCount { k: self.k, n: xs.len() });
        }
        let mut best = self.fit_once(xs, seed);
        for restart in 1..self.n_init.max(1) {
            let result = self.fit_once(xs, seed.wrapping_add(restart as u64));
            if result.inertia < best.inertia {
                best = result;
            }
        }
        Ok(best)
    }

    fn fit_once(&self, xs: &[Vector], seed: u64) -> KMeansResult {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut centroids = self.init_plus_plus(xs, &mut rng);
        let n = xs.len();
        let mut assignments = vec![0usize; n];

        for _ in 0..self.max_iters {
            // Assignment step.
            let mut changed = false;
            for (slot, x) in assignments.iter_mut().zip(xs) {
                let nearest = Self::nearest(&centroids, x).0;
                if *slot != nearest {
                    *slot = nearest;
                    changed = true;
                }
            }
            // Update step.
            let dim = xs.first().map_or(0, Vector::len);
            let mut sums = vec![Vector::zeros(dim); self.k];
            let mut counts = vec![0usize; self.k];
            for (x, &a) in xs.iter().zip(&assignments) {
                if let (Some(sum), Some(count)) = (sums.get_mut(a), counts.get_mut(a)) {
                    *sum += x;
                    *count += 1;
                }
            }
            let mut new_centroids = centroids.clone();
            for (c, (sum, count)) in new_centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if *count > 0 {
                    *c = sum.scaled(1.0 / *count as f64);
                } else if let Some(far) = xs.iter().max_by(|a, b| {
                    // Re-seed an empty cluster at the point farthest from its
                    // current nearest centroid to avoid dead clusters.
                    let da = Self::nearest(&centroids, a).1;
                    let db = Self::nearest(&centroids, b).1;
                    f64::total_cmp(&da, &db)
                }) {
                    *c = far.clone();
                }
            }
            centroids = new_centroids;
            if !changed {
                break;
            }
        }

        let inertia = xs
            .iter()
            .zip(&assignments)
            .map(|(x, &a)| centroids.get(a).map_or(0.0, |c| x.distance_squared(c)))
            .sum();
        KMeansResult { assignments, centroids, inertia }
    }

    // Allowed: `fit` guarantees non-empty `xs`, so `gen_range(0..xs.len())`
    // and the weighted index `chosen` (initialized to `len - 1`) are in
    // bounds by construction.
    #[allow(clippy::indexing_slicing)]
    fn init_plus_plus(&self, xs: &[Vector], rng: &mut impl Rng) -> Vec<Vector> {
        let mut centroids = Vec::with_capacity(self.k);
        centroids.push(xs[rng.gen_range(0..xs.len())].clone());
        while centroids.len() < self.k {
            let d2: Vec<f64> = xs.iter().map(|x| Self::nearest(&centroids, x).1).collect();
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                // All points coincide with existing centroids; pick uniformly.
                xs[rng.gen_range(0..xs.len())].clone()
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut chosen = xs.len() - 1;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        chosen = i;
                        break;
                    }
                    target -= w;
                }
                xs[chosen].clone()
            };
            centroids.push(next);
        }
        centroids
    }

    /// Index and squared distance of the nearest centroid.
    fn nearest(centroids: &[Vector], x: &Vector) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for (i, c) in centroids.iter().enumerate() {
            let d = x.distance_squared(c);
            if d < best.1 {
                best = (i, d);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn v(data: &[f64]) -> Vector {
        Vector::from(data)
    }

    #[test]
    fn two_well_separated_blobs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut xs = Vec::new();
        for _ in 0..30 {
            xs.push(v(&[10.0 + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]));
        }
        for _ in 0..30 {
            xs.push(v(&[-10.0 + rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)]));
        }
        let result = KMeans::new(2).fit(&xs, 9).unwrap();
        // All of the first 30 share one cluster, all of the last 30 the other.
        let first = result.assignments[0];
        assert!(result.assignments[..30].iter().all(|&a| a == first));
        assert!(result.assignments[30..].iter().all(|&a| a != first));
        assert!(result.inertia < 60.0);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let xs = vec![v(&[0.0]), v(&[5.0]), v(&[10.0])];
        let result = KMeans::new(3).fit(&xs, 3).unwrap();
        assert!(result.inertia < 1e-12);
        let mut sorted = result.assignments.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let xs = vec![v(&[1.0]), v(&[3.0])];
        let result = KMeans::new(1).fit(&xs, 0).unwrap();
        assert!((result.centroids[0][0] - 2.0).abs() < 1e-12);
        assert_eq!(result.assignments, vec![0, 0]);
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vector> = (0..20).map(|i| v(&[(i % 5) as f64, (i / 5) as f64])).collect();
        let a = KMeans::new(3).fit(&xs, 77).unwrap();
        let b = KMeans::new(3).fit(&xs, 77).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.inertia, b.inertia);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let xs = vec![v(&[1.0, 1.0]); 5];
        let result = KMeans::new(2).fit(&xs, 4).unwrap();
        assert!(result.inertia < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs_with_err() {
        assert!(matches!(
            KMeans::new(3).fit(&[v(&[1.0])], 0),
            Err(MlError::BadClusterCount { k: 3, n: 1 })
        ));
        assert!(matches!(KMeans::new(1).fit(&[], 0), Err(MlError::Empty { .. })));
        assert!(matches!(
            KMeans::new(0).fit(&[v(&[1.0])], 0),
            Err(MlError::BadClusterCount { k: 0, n: 1 })
        ));
    }
}
