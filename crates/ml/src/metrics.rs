//! Classification metrics reported by the paper's experiments.

/// Fraction of positions where `predicted[i] == actual[i]`.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
///
/// ```
/// use plos_ml::accuracy;
/// assert_eq!(accuracy(&[1, -1, 1], &[1, 1, 1]), 2.0 / 3.0);
/// ```
pub fn accuracy(predicted: &[i8], actual: &[i8]) -> f64 {
    assert!(!predicted.is_empty(), "accuracy of empty predictions is undefined");
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    correct as f64 / predicted.len() as f64
}

/// Binary confusion counts for labels in `{−1, +1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// Predicted +1, actual +1.
    pub true_positive: usize,
    /// Predicted +1, actual −1.
    pub false_positive: usize,
    /// Predicted −1, actual −1.
    pub true_negative: usize,
    /// Predicted −1, actual +1.
    pub false_negative: usize,
}

impl ConfusionCounts {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any label is not ±1.
    pub fn from_predictions(predicted: &[i8], actual: &[i8]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut c = ConfusionCounts::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            assert!(p.abs() == 1 && a.abs() == 1, "labels must be ±1");
            match (p, a) {
                (1, 1) => c.true_positive += 1,
                (1, -1) => c.false_positive += 1,
                (-1, -1) => c.true_negative += 1,
                (-1, 1) => c.false_negative += 1,
                _ => unreachable!(),
            }
        }
        c
    }

    /// Total number of samples tallied.
    pub fn total(&self) -> usize {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Overall accuracy; 0 for an empty tally.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / total as f64
    }

    /// Precision of the positive class; 0 when nothing was predicted +1.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            return 0.0;
        }
        self.true_positive as f64 / denom as f64
    }

    /// Recall of the positive class; 0 when nothing was actually +1.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            return 0.0;
        }
        self.true_positive as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 1, -1, -1], &[1, -1, -1, -1]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[1], &[-1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty predictions")]
    fn accuracy_empty_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_mismatch_panics() {
        let _ = accuracy(&[1], &[1, -1]);
    }

    #[test]
    fn confusion_counts_tally() {
        let c = ConfusionCounts::from_predictions(&[1, 1, -1, -1, 1], &[1, -1, -1, 1, 1]);
        assert_eq!(c.true_positive, 2);
        assert_eq!(c.false_positive, 1);
        assert_eq!(c.true_negative, 1);
        assert_eq!(c.false_negative, 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.accuracy(), 0.6);
    }

    #[test]
    fn precision_recall_f1() {
        let c = ConfusionCounts {
            true_positive: 3,
            false_positive: 1,
            true_negative: 4,
            false_negative: 2,
        };
        assert_eq!(c.precision(), 0.75);
        assert_eq!(c.recall(), 0.6);
        assert!((c.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tallies_return_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn confusion_rejects_bad_labels() {
        let _ = ConfusionCounts::from_predictions(&[0], &[1]);
    }
}
