//! Classification metrics reported by the paper's experiments.
//!
//! Every ratio here is total: degenerate tallies (empty test sets,
//! single-class ground truth, a model that predicts only one class) yield a
//! defined value or a typed [`MlError`] — never a `NaN` that poisons an
//! averaged experiment table downstream.

use crate::error::MlError;

/// Fraction of positions where `predicted[i] == actual[i]`.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths; use
/// [`try_accuracy`] where those cases can occur legitimately.
///
/// ```
/// use plos_ml::accuracy;
/// assert_eq!(accuracy(&[1, -1, 1], &[1, 1, 1]), 2.0 / 3.0);
/// ```
pub fn accuracy(predicted: &[i8], actual: &[i8]) -> f64 {
    assert!(!predicted.is_empty(), "accuracy of empty predictions is undefined");
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    correct as f64 / predicted.len() as f64
}

/// Fallible [`accuracy`]: an empty test set or a length mismatch is a typed
/// error instead of a panic (or a `0/0 = NaN`).
///
/// # Errors
///
/// [`MlError::Empty`] for an empty test set, [`MlError::LengthMismatch`]
/// when the slices disagree in length.
///
/// ```
/// use plos_ml::metrics::try_accuracy;
/// assert!(try_accuracy(&[], &[]).is_err());
/// assert_eq!(try_accuracy(&[1, -1], &[1, 1]).unwrap(), 0.5);
/// ```
pub fn try_accuracy(predicted: &[i8], actual: &[i8]) -> Result<f64, MlError> {
    if predicted.is_empty() {
        return Err(MlError::Empty { what: "predictions" });
    }
    if predicted.len() != actual.len() {
        return Err(MlError::LengthMismatch {
            what: "predictions vs actuals",
            expected: actual.len(),
            actual: predicted.len(),
        });
    }
    let correct = predicted.iter().zip(actual).filter(|(p, a)| p == a).count();
    Ok(correct as f64 / predicted.len() as f64)
}

/// Binary confusion counts for labels in `{−1, +1}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionCounts {
    /// Predicted +1, actual +1.
    pub true_positive: usize,
    /// Predicted +1, actual −1.
    pub false_positive: usize,
    /// Predicted −1, actual −1.
    pub true_negative: usize,
    /// Predicted −1, actual +1.
    pub false_negative: usize,
}

impl ConfusionCounts {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any label is not ±1; use
    /// [`ConfusionCounts::try_from_predictions`] where malformed input can
    /// occur legitimately.
    pub fn from_predictions(predicted: &[i8], actual: &[i8]) -> Self {
        assert_eq!(predicted.len(), actual.len(), "length mismatch");
        let mut c = ConfusionCounts::default();
        for (&p, &a) in predicted.iter().zip(actual) {
            assert!(p.abs() == 1 && a.abs() == 1, "labels must be ±1");
            match (p, a) {
                (1, 1) => c.true_positive += 1,
                (1, -1) => c.false_positive += 1,
                (-1, -1) => c.true_negative += 1,
                (-1, 1) => c.false_negative += 1,
                _ => unreachable!(),
            }
        }
        c
    }

    /// Fallible [`ConfusionCounts::from_predictions`]: malformed input is a
    /// typed error instead of a panic. An empty pair of slices is a valid
    /// empty tally (every derived ratio of which is a defined `0.0`).
    ///
    /// # Errors
    ///
    /// [`MlError::LengthMismatch`] when the slices disagree in length, and
    /// [`MlError::BadLabel`] (with the offending index) for any label
    /// outside `{−1, +1}`.
    pub fn try_from_predictions(predicted: &[i8], actual: &[i8]) -> Result<Self, MlError> {
        if predicted.len() != actual.len() {
            return Err(MlError::LengthMismatch {
                what: "predictions vs actuals",
                expected: actual.len(),
                actual: predicted.len(),
            });
        }
        let mut c = ConfusionCounts::default();
        for (index, (&p, &a)) in predicted.iter().zip(actual).enumerate() {
            match (p, a) {
                (1, 1) => c.true_positive += 1,
                (1, -1) => c.false_positive += 1,
                (-1, -1) => c.true_negative += 1,
                (-1, 1) => c.false_negative += 1,
                _ => return Err(MlError::BadLabel { index }),
            }
        }
        Ok(c)
    }

    /// Total number of samples tallied.
    pub fn total(&self) -> usize {
        self.true_positive + self.false_positive + self.true_negative + self.false_negative
    }

    /// Overall accuracy; 0 for an empty tally.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.true_positive + self.true_negative) as f64 / total as f64
    }

    /// Precision of the positive class; 0 when nothing was predicted +1.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positive + self.false_positive;
        if denom == 0 {
            return 0.0;
        }
        self.true_positive as f64 / denom as f64
    }

    /// Recall of the positive class; 0 when nothing was actually +1.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positive + self.false_negative;
        if denom == 0 {
            return 0.0;
        }
        self.true_positive as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[1, 1, -1, -1], &[1, -1, -1, -1]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[1], &[-1]), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty predictions")]
    fn accuracy_empty_panics() {
        let _ = accuracy(&[], &[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn accuracy_mismatch_panics() {
        let _ = accuracy(&[1], &[1, -1]);
    }

    #[test]
    fn confusion_counts_tally() {
        let c = ConfusionCounts::from_predictions(&[1, 1, -1, -1, 1], &[1, -1, -1, 1, 1]);
        assert_eq!(c.true_positive, 2);
        assert_eq!(c.false_positive, 1);
        assert_eq!(c.true_negative, 1);
        assert_eq!(c.false_negative, 1);
        assert_eq!(c.total(), 5);
        assert_eq!(c.accuracy(), 0.6);
    }

    #[test]
    fn precision_recall_f1() {
        let c = ConfusionCounts {
            true_positive: 3,
            false_positive: 1,
            true_negative: 4,
            false_negative: 2,
        };
        assert_eq!(c.precision(), 0.75);
        assert_eq!(c.recall(), 0.6);
        assert!((c.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
    }

    #[test]
    fn degenerate_tallies_return_zero() {
        let c = ConfusionCounts::default();
        assert_eq!(c.accuracy(), 0.0);
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn confusion_rejects_bad_labels() {
        let _ = ConfusionCounts::from_predictions(&[0], &[1]);
    }

    #[test]
    fn try_accuracy_empty_and_mismatch_are_typed_errors() {
        assert_eq!(try_accuracy(&[], &[]), Err(MlError::Empty { what: "predictions" }));
        assert_eq!(
            try_accuracy(&[1], &[1, -1]),
            Err(MlError::LengthMismatch { what: "predictions vs actuals", expected: 2, actual: 1 })
        );
        assert_eq!(try_accuracy(&[1, -1, 1], &[1, 1, 1]), Ok(2.0 / 3.0));
    }

    #[test]
    fn try_confusion_reports_offending_label_index() {
        assert_eq!(
            ConfusionCounts::try_from_predictions(&[1, 0], &[1, 1]),
            Err(MlError::BadLabel { index: 1 })
        );
        assert_eq!(
            ConfusionCounts::try_from_predictions(&[1], &[]),
            Err(MlError::LengthMismatch { what: "predictions vs actuals", expected: 0, actual: 1 })
        );
        assert_eq!(
            ConfusionCounts::try_from_predictions(&[1, -1], &[1, 1]).unwrap(),
            ConfusionCounts::from_predictions(&[1, -1], &[1, 1])
        );
    }

    #[test]
    fn empty_tally_is_valid_and_nan_free() {
        let c = ConfusionCounts::try_from_predictions(&[], &[]).unwrap();
        assert_eq!(c.total(), 0);
        for value in [c.accuracy(), c.precision(), c.recall(), c.f1()] {
            assert_eq!(value, 0.0, "degenerate ratio must be a defined 0.0, not NaN");
        }
    }

    #[test]
    fn single_class_test_set_is_nan_free() {
        // Ground truth is all +1: true negatives are impossible, and a
        // perfect predictor still has well-defined precision/recall/F1.
        let perfect = ConfusionCounts::try_from_predictions(&[1, 1, 1], &[1, 1, 1]).unwrap();
        assert_eq!(perfect.accuracy(), 1.0);
        assert_eq!(perfect.precision(), 1.0);
        assert_eq!(perfect.recall(), 1.0);
        assert_eq!(perfect.f1(), 1.0);

        // The opposite predictor on the same single-class truth: nothing
        // predicted +1, so precision's denominator is 0 — defined as 0.
        let inverted = ConfusionCounts::try_from_predictions(&[-1, -1, -1], &[1, 1, 1]).unwrap();
        for value in [inverted.accuracy(), inverted.precision(), inverted.recall(), inverted.f1()] {
            assert!(value == 0.0 && !value.is_nan(), "got {value}");
        }
    }

    #[test]
    fn all_one_class_predictions_are_nan_free() {
        // A degenerate model that always answers +1 against mixed truth:
        // recall is 1, precision is the positive rate, F1 is finite.
        let c = ConfusionCounts::try_from_predictions(&[1, 1, 1, 1], &[1, -1, -1, 1]).unwrap();
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.precision(), 0.5);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!(!c.f1().is_nan());

        // Always −1: the positive-class metrics collapse to a defined 0.
        let neg =
            ConfusionCounts::try_from_predictions(&[-1, -1, -1, -1], &[1, -1, -1, 1]).unwrap();
        assert_eq!(neg.accuracy(), 0.5);
        assert_eq!(neg.precision(), 0.0);
        assert_eq!(neg.recall(), 0.0);
        assert_eq!(neg.f1(), 0.0);
    }
}
