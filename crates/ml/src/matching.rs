//! Cluster-to-class matching for evaluating unsupervised predictions.
//!
//! The *Single* baseline clusters unlabeled users with k-means, and "since
//! the cluster may mismatch with the ground truth labels, we conduct label
//! matching on the clustering results and evaluate them under the best class
//! assignments" (Sec. VI-A). The optimal one-to-one matching is found with
//! the Hungarian algorithm on the cluster/class contingency table.

/// Solves the assignment problem: given an `n × n` cost matrix (row i
/// assigned to column `perm[i]`), returns the permutation minimizing total
/// cost. O(n³) Hungarian algorithm (Jonker–Volgenant style potentials).
///
/// # Panics
///
/// Panics if `cost` is empty or ragged.
// Allowed: the algorithm's 1-indexed potential/matching arrays are all sized
// `n + 1` and every index stays in `0..=n` by construction; the squareness
// assert above the loops guarantees `cost[i0 - 1][j - 1]` is in bounds.
#[allow(clippy::indexing_slicing)]
pub fn hungarian_min_assignment(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be non-empty");
    assert!(cost.iter().all(|row| row.len() == n), "cost matrix must be square");

    // Potentials and matching arrays are 1-indexed internally.
    let inf = f64::INFINITY;
    let mut u = vec![0.0; n + 1];
    let mut v = vec![0.0; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; n + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut perm = vec![0usize; n];
    for j in 1..=n {
        if p[j] > 0 {
            perm[p[j] - 1] = j - 1;
        }
    }
    perm
}

/// Accuracy of a clustering against ground-truth class ids, evaluated under
/// the best one-to-one cluster→class matching.
///
/// `clusters[i]` and `classes[i]` are ids in `0..k` (ids above `k−1` are
/// allowed; the matrix is sized by the max id seen). Returns a fraction in
/// `[0, 1]`.
///
/// # Panics
///
/// Panics if the slices are empty or of different lengths.
// Allowed: `counts` is sized `k × k` where `k` exceeds every id seen, and
// `hungarian_min_assignment` returns a permutation of `0..k`, so all the
// contingency-table indices below are in bounds by construction.
#[allow(clippy::indexing_slicing)]
pub fn best_matching_accuracy(clusters: &[usize], classes: &[usize]) -> f64 {
    assert!(!clusters.is_empty(), "empty inputs");
    assert_eq!(clusters.len(), classes.len(), "length mismatch");
    let k = clusters.iter().chain(classes.iter()).copied().max().map_or(0, |m| m + 1);
    // Contingency counts.
    let mut counts = vec![vec![0.0_f64; k]; k];
    for (&c, &y) in clusters.iter().zip(classes) {
        counts[c][y] += 1.0;
    }
    // Maximize matches == minimize negated counts.
    let cost: Vec<Vec<f64>> = counts.iter().map(|row| row.iter().map(|&c| -c).collect()).collect();
    let perm = hungarian_min_assignment(&cost);
    let matched: f64 = (0..k).map(|c| counts[c][perm[c]]).sum();
    matched / clusters.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_assignment_on_diagonal_costs() {
        let cost = vec![vec![0.0, 9.0, 9.0], vec![9.0, 0.0, 9.0], vec![9.0, 9.0, 0.0]];
        assert_eq!(hungarian_min_assignment(&cost), vec![0, 1, 2]);
    }

    #[test]
    fn permuted_optimum() {
        let cost = vec![vec![9.0, 0.0, 9.0], vec![9.0, 9.0, 0.0], vec![0.0, 9.0, 9.0]];
        assert_eq!(hungarian_min_assignment(&cost), vec![1, 2, 0]);
    }

    #[test]
    fn classic_example_total_cost() {
        // Known optimal assignment cost = 5 (1-indexed classic example).
        let cost = vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]];
        let perm = hungarian_min_assignment(&cost);
        let total: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
        assert_eq!(total, 5.0);
    }

    #[test]
    fn one_by_one() {
        assert_eq!(hungarian_min_assignment(&[vec![3.0]]), vec![0]);
    }

    #[test]
    fn assignment_is_a_permutation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for n in [2usize, 3, 5, 8] {
            let cost: Vec<Vec<f64>> =
                (0..n).map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()).collect();
            let perm = hungarian_min_assignment(&cost);
            let mut seen = vec![false; n];
            for &j in &perm {
                assert!(!seen[j], "duplicate column {j}");
                seen[j] = true;
            }
        }
    }

    #[test]
    fn brute_force_agreement_on_small_instances() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..30 {
            let n = rng.gen_range(2..5);
            let cost: Vec<Vec<f64>> =
                (0..n).map(|_| (0..n).map(|_| rng.gen_range(0.0..10.0)).collect()).collect();
            let perm = hungarian_min_assignment(&cost);
            let got: f64 = perm.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
            // Brute force over all permutations.
            let mut best = f64::INFINITY;
            let mut idx: Vec<usize> = (0..n).collect();
            permute(&mut idx, 0, &mut |p| {
                let c: f64 = p.iter().enumerate().map(|(i, &j)| cost[i][j]).sum();
                if c < best {
                    best = c;
                }
            });
            assert!((got - best).abs() < 1e-9, "hungarian {got} vs brute {best}");
        }
    }

    fn permute(idx: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
        if k == idx.len() {
            f(idx);
            return;
        }
        for i in k..idx.len() {
            idx.swap(k, i);
            permute(idx, k + 1, f);
            idx.swap(k, i);
        }
    }

    #[test]
    fn matching_accuracy_perfect_after_relabeling() {
        // Clusters are classes with swapped ids.
        let clusters = vec![1, 1, 0, 0];
        let classes = vec![0, 0, 1, 1];
        assert_eq!(best_matching_accuracy(&clusters, &classes), 1.0);
    }

    #[test]
    fn matching_accuracy_partial() {
        let clusters = vec![0, 0, 0, 1];
        let classes = vec![0, 0, 1, 1];
        assert_eq!(best_matching_accuracy(&clusters, &classes), 0.75);
    }

    #[test]
    fn matching_accuracy_three_way() {
        let clusters = vec![2, 2, 0, 0, 1, 1];
        let classes = vec![0, 0, 1, 1, 2, 2];
        assert_eq!(best_matching_accuracy(&clusters, &classes), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn matching_length_mismatch_panics() {
        let _ = best_matching_accuracy(&[0], &[0, 1]);
    }
}
