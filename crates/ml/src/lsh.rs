//! Sign-random-projection hashing (random hyperplane LSH).
//!
//! The *Group* baseline (Sec. VI-A) "applies the random hyperplane algorithm
//! [Charikar 2002] on their sensory data, which hashes the continuous
//! sensory data to n discrete buckets while keeping the distance between the
//! data", with `n = 128` buckets. With `b` random hyperplanes each sample
//! maps to a `b`-bit sign pattern, i.e. one of `2^b` buckets — `b = 7` gives
//! the paper's 128 buckets. Per-user bucket-frequency histograms then feed
//! the Jaccard similarity.

use plos_linalg::Vector;
use rand::distributions::Distribution;
use rand::{Rng, SeedableRng};

/// A fixed set of random hyperplanes hashing vectors to `2^bits` buckets.
#[derive(Debug, Clone)]
pub struct RandomHyperplaneHasher {
    hyperplanes: Vec<Vector>,
}

impl RandomHyperplaneHasher {
    /// Samples `bits` Gaussian hyperplanes in dimension `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `bits == 0`, `bits > 20` (bucket table would explode), or
    /// `dim == 0`.
    pub fn new(dim: usize, bits: usize, seed: u64) -> Self {
        assert!(bits > 0 && bits <= 20, "bits must be in 1..=20, got {bits}");
        assert!(dim > 0, "dim must be positive");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let normal = StandardNormal;
        let hyperplanes =
            (0..bits).map(|_| (0..dim).map(|_| normal.sample(&mut rng)).collect()).collect();
        RandomHyperplaneHasher { hyperplanes }
    }

    /// Number of hash bits.
    pub fn bits(&self) -> usize {
        self.hyperplanes.len()
    }

    /// Number of buckets (`2^bits`).
    pub fn num_buckets(&self) -> usize {
        1 << self.bits()
    }

    /// Hashes one vector to its bucket index.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn bucket(&self, x: &Vector) -> usize {
        let mut idx = 0usize;
        for (bit, h) in self.hyperplanes.iter().enumerate() {
            if h.dot(x) >= 0.0 {
                idx |= 1 << bit;
            }
        }
        idx
    }

    /// Builds a bucket-frequency histogram over a set of samples.
    ///
    /// The histogram has `num_buckets()` entries and sums to `xs.len()`.
    pub fn histogram(&self, xs: &[Vector]) -> Vec<f64> {
        let mut hist = vec![0.0; self.num_buckets()];
        for x in xs {
            if let Some(slot) = hist.get_mut(self.bucket(x)) {
                *slot += 1.0;
            }
        }
        hist
    }
}

/// Standard normal sampler via Box–Muller (keeps us off rand_distr, which is
/// not on the offline crate list).
struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        loop {
            let u1: f64 = rng.gen::<f64>();
            let u2: f64 = rng.gen::<f64>();
            if u1 > f64::MIN_POSITIVE {
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f64]) -> Vector {
        Vector::from(data)
    }

    #[test]
    fn bucket_count_is_power_of_two() {
        let h = RandomHyperplaneHasher::new(4, 7, 0);
        assert_eq!(h.bits(), 7);
        assert_eq!(h.num_buckets(), 128);
    }

    #[test]
    fn hashing_is_deterministic() {
        let h1 = RandomHyperplaneHasher::new(3, 5, 42);
        let h2 = RandomHyperplaneHasher::new(3, 5, 42);
        let x = v(&[0.3, -1.2, 0.8]);
        assert_eq!(h1.bucket(&x), h2.bucket(&x));
    }

    #[test]
    fn identical_vectors_share_a_bucket() {
        let h = RandomHyperplaneHasher::new(3, 7, 1);
        let x = v(&[1.0, 2.0, 3.0]);
        assert_eq!(h.bucket(&x), h.bucket(&x.clone()));
        // Positive scaling preserves all signs, hence the bucket.
        assert_eq!(h.bucket(&x), h.bucket(&x.scaled(3.0)));
    }

    #[test]
    fn opposite_vectors_land_in_complementary_buckets() {
        let h = RandomHyperplaneHasher::new(3, 7, 2);
        let x = v(&[0.5, -0.25, 2.0]);
        let bx = h.bucket(&x);
        let bnx = h.bucket(&(-&x));
        // Sign flips every bit except exact-zero projections (measure zero).
        assert_eq!(bx ^ bnx, h.num_buckets() - 1);
    }

    #[test]
    fn histogram_sums_to_sample_count() {
        let h = RandomHyperplaneHasher::new(2, 4, 3);
        let xs: Vec<Vector> =
            (0..50).map(|i| v(&[(i as f64 * 0.37).sin(), (i as f64 * 0.91).cos()])).collect();
        let hist = h.histogram(&xs);
        assert_eq!(hist.len(), 16);
        assert_eq!(hist.iter().sum::<f64>(), 50.0);
    }

    #[test]
    fn nearby_vectors_usually_collide_more_than_far_ones() {
        // Angular LSH property: collision prob = 1 − θ/π per bit.
        let trials = 200;
        let mut near_hits = 0;
        let mut far_hits = 0;
        for seed in 0..trials {
            let h = RandomHyperplaneHasher::new(2, 1, seed);
            let x = v(&[1.0, 0.0]);
            let near = v(&[0.95, 0.1]); // ~6 degrees away
            let far = v(&[-0.9, 0.5]); // ~150 degrees away
            if h.bucket(&x) == h.bucket(&near) {
                near_hits += 1;
            }
            if h.bucket(&x) == h.bucket(&far) {
                far_hits += 1;
            }
        }
        assert!(near_hits > far_hits, "near={near_hits} far={far_hits}");
        assert!(near_hits as f64 / trials as f64 > 0.9);
    }

    #[test]
    #[should_panic(expected = "bits must be in")]
    fn zero_bits_panics() {
        let _ = RandomHyperplaneHasher::new(2, 0, 0);
    }

    #[test]
    #[should_panic(expected = "dim must be positive")]
    fn zero_dim_panics() {
        let _ = RandomHyperplaneHasher::new(0, 3, 0);
    }
}
