//! Normalized spectral clustering (Ng–Jordan–Weiss).
//!
//! The *Group* baseline clusters users into groups through "spectral
//! clustering" of their pairwise Jaccard similarities (Sec. VI-A, with 3
//! clusters). Pipeline: symmetric-normalized Laplacian
//! `L = I − D^{−1/2} W D^{−1/2}`, bottom-`k` eigenvectors via the Jacobi
//! eigensolver, row-normalization, k-means on the embedded rows.

use crate::error::MlError;
use crate::kmeans::KMeans;
use plos_linalg::{LinalgError, Matrix, SymmetricEigen, Vector};

/// Clusters the nodes of an affinity graph into `k` groups.
///
/// `affinity` must be square, symmetric and non-negative; entry `(i, j)` is
/// the similarity between nodes `i` and `j` (self-similarities on the
/// diagonal are ignored — the algorithm zeroes them before normalizing, the
/// usual convention).
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] (wrapped in [`MlError::Linalg`]) for a
///   non-square affinity.
/// * [`LinalgError::DimensionMismatch`] (wrapped) if `k` is 0 or exceeds the
///   number of nodes.
/// * Propagates eigensolver and k-means failures.
pub fn spectral_clustering(affinity: &Matrix, k: usize, seed: u64) -> Result<Vec<usize>, MlError> {
    if !affinity.is_square() {
        return Err(MlError::Linalg(LinalgError::NotSquare {
            rows: affinity.nrows(),
            cols: affinity.ncols(),
        }));
    }
    let n = affinity.nrows();
    if k == 0 || k > n {
        return Err(MlError::Linalg(LinalgError::DimensionMismatch {
            op: "spectral_clustering (k)",
            expected: n,
            actual: k,
        }));
    }
    if k == n {
        return Ok((0..n).collect());
    }

    // W with zeroed diagonal; D = row sums.
    let mut w = affinity.clone();
    for i in 0..n {
        w[(i, i)] = 0.0;
    }
    let degrees: Vec<f64> = (0..n).map(|i| w.row(i).iter().sum()).collect();

    // L_sym = I − D^{−1/2} W D^{−1/2}; isolated nodes keep L_ii = 1.
    let mut lap = Matrix::identity(n);
    for (i, &di) in degrees.iter().enumerate() {
        for (j, &dj) in degrees.iter().enumerate() {
            if i != j && di > 0.0 && dj > 0.0 {
                lap[(i, j)] = -w[(i, j)] / (di * dj).sqrt();
            }
        }
    }

    let eig = SymmetricEigen::decompose(&lap)?;
    // Embed each node as the i-th row of the bottom-k eigenvector matrix.
    let mut rows: Vec<Vector> = Vec::with_capacity(n);
    for i in 0..n {
        let mut row: Vector = (0..k).map(|j| eig.eigenvectors()[(i, j)]).collect();
        let norm = row.norm();
        if norm > 0.0 {
            row.scale_mut(1.0 / norm);
        }
        rows.push(row);
    }

    let result = KMeans::new(k).fit(&rows, seed)?;
    Ok(result.assignments)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Block-diagonal affinity with `sizes` dense blocks and `off` weight
    /// between blocks.
    fn block_affinity(sizes: &[usize], within: f64, off: f64) -> Matrix {
        let n: usize = sizes.iter().sum();
        let mut block_of = Vec::with_capacity(n);
        for (b, &s) in sizes.iter().enumerate() {
            block_of.extend(std::iter::repeat_n(b, s));
        }
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = if block_of[i] == block_of[j] { within } else { off };
            }
        }
        m
    }

    fn agree_up_to_relabeling(a: &[usize], b: &[usize]) -> bool {
        // Same partition iff the co-membership relations match.
        for i in 0..a.len() {
            for j in 0..a.len() {
                if (a[i] == a[j]) != (b[i] == b[j]) {
                    return false;
                }
            }
        }
        true
    }

    #[test]
    fn recovers_two_clean_blocks() {
        let aff = block_affinity(&[5, 5], 1.0, 0.01);
        let labels = spectral_clustering(&aff, 2, 0).unwrap();
        let expected = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        assert!(agree_up_to_relabeling(&labels, &expected), "{labels:?}");
    }

    #[test]
    fn recovers_three_blocks_like_the_paper() {
        // The paper's Group baseline uses 3 clusters.
        let aff = block_affinity(&[4, 4, 4], 1.0, 0.05);
        let labels = spectral_clustering(&aff, 3, 1).unwrap();
        let expected = vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2];
        assert!(agree_up_to_relabeling(&labels, &expected), "{labels:?}");
    }

    #[test]
    fn unequal_block_sizes() {
        let aff = block_affinity(&[6, 2], 1.0, 0.02);
        let labels = spectral_clustering(&aff, 2, 5).unwrap();
        let expected = vec![0, 0, 0, 0, 0, 0, 1, 1];
        assert!(agree_up_to_relabeling(&labels, &expected), "{labels:?}");
    }

    #[test]
    fn k_equals_n_is_identity_partition() {
        let aff = block_affinity(&[3], 1.0, 0.0);
        let labels = spectral_clustering(&aff, 3, 0).unwrap();
        assert_eq!(labels, vec![0, 1, 2]);
    }

    #[test]
    fn single_cluster_groups_everything() {
        let aff = block_affinity(&[2, 2], 1.0, 0.1);
        let labels = spectral_clustering(&aff, 1, 0).unwrap();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(spectral_clustering(&Matrix::zeros(2, 3), 1, 0).is_err());
        let aff = Matrix::identity(3);
        assert!(spectral_clustering(&aff, 0, 0).is_err());
        assert!(spectral_clustering(&aff, 4, 0).is_err());
    }

    #[test]
    fn isolated_nodes_do_not_crash() {
        // Zero affinity everywhere: every node is isolated.
        let aff = Matrix::zeros(4, 4);
        let labels = spectral_clustering(&aff, 2, 0).unwrap();
        assert_eq!(labels.len(), 4);
        assert!(labels.iter().all(|&l| l < 2));
    }
}
