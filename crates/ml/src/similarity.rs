//! Histogram similarity used to compare users in the *Group* baseline.
//!
//! Given per-user bucket-frequency histograms `(u₁…u_n)` and `(v₁…v_n)`, the
//! paper defines `S(u, v) = Σᵢ min(uᵢ, vᵢ) / Σᵢ max(uᵢ, vᵢ)` — the weighted
//! Jaccard similarity coefficient (Sec. VI-A).

/// Weighted Jaccard similarity `Σ min / Σ max` of two non-negative
/// histograms.
///
/// Returns `1.0` when both histograms are entirely zero (two empty users are
/// considered identical), matching the convention that Jaccard of two empty
/// sets is 1.
///
/// # Panics
///
/// Panics if the histograms have different lengths or contain negative
/// entries.
///
/// ```
/// use plos_ml::histogram_jaccard;
/// let s = histogram_jaccard(&[1.0, 2.0], &[2.0, 1.0]);
/// assert!((s - 0.5).abs() < 1e-12);
/// ```
pub fn histogram_jaccard(u: &[f64], v: &[f64]) -> f64 {
    assert_eq!(u.len(), v.len(), "histogram length mismatch");
    let mut min_sum = 0.0;
    let mut max_sum = 0.0;
    for (&a, &b) in u.iter().zip(v) {
        assert!(a >= 0.0 && b >= 0.0, "histograms must be non-negative");
        // plos-lint: allow(D3): bin-order fold is fixed by the histogram layout; changing it would shift blessed similarity digests
        min_sum += a.min(b);
        // plos-lint: allow(D3): bin-order fold is fixed by the histogram layout; changing it would shift blessed similarity digests
        max_sum += a.max(b);
    }
    if max_sum == 0.0 {
        1.0
    } else {
        min_sum / max_sum
    }
}

/// Builds the symmetric pairwise similarity matrix for a set of histograms.
///
/// Entry `(i, j)` is [`histogram_jaccard`] of histograms `i` and `j`; the
/// diagonal is 1.
///
/// # Panics
///
/// Panics if histograms are ragged (via [`histogram_jaccard`]).
pub fn similarity_matrix(histograms: &[Vec<f64>]) -> plos_linalg::Matrix {
    let n = histograms.len();
    // Upper-triangle rows are independent; fan them out on the fork-join
    // pool and mirror sequentially. Row order is preserved, so the result
    // is identical at any pool size.
    let pool = plos_exec::Pool::current();
    let rows: Vec<Vec<f64>> = pool.par_map(histograms, |i, hi| {
        histograms.iter().skip(i + 1).map(|hj| histogram_jaccard(hi, hj)).collect()
    });
    let mut m = plos_linalg::Matrix::zeros(n, n);
    for (i, row) in rows.iter().enumerate() {
        m[(i, i)] = 1.0;
        for (offset, &s) in row.iter().enumerate() {
            let j = i + 1 + offset;
            m[(i, j)] = s;
            m[(j, i)] = s;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_histograms_have_similarity_one() {
        assert_eq!(histogram_jaccard(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 1.0);
    }

    #[test]
    fn disjoint_histograms_have_similarity_zero() {
        assert_eq!(histogram_jaccard(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // min = [1, 1], max = [2, 2] => 2/4.
        assert!((histogram_jaccard(&[1.0, 2.0], &[2.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_histograms_are_identical() {
        assert_eq!(histogram_jaccard(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn symmetry() {
        let u = [3.0, 0.0, 1.0];
        let v = [1.0, 2.0, 1.0];
        assert_eq!(histogram_jaccard(&u, &v), histogram_jaccard(&v, &u));
    }

    #[test]
    fn bounded_in_unit_interval() {
        let u = [5.0, 0.1, 2.0, 0.0];
        let v = [0.0, 4.0, 2.0, 1.0];
        let s = histogram_jaccard(&u, &v);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_input_panics() {
        let _ = histogram_jaccard(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_entries_panic() {
        let _ = histogram_jaccard(&[-1.0], &[1.0]);
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diagonal() {
        let hists = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let m = similarity_matrix(&hists);
        assert!(m.is_symmetric(1e-12));
        for i in 0..3 {
            assert_eq!(m[(i, i)], 1.0);
        }
        assert_eq!(m[(0, 1)], 0.0);
        assert!((m[(0, 2)] - 0.5).abs() < 1e-12);
    }
}
