//! Standard (z-score) feature scaling.
//!
//! The paper normalizes sensor signals before feature extraction and the
//! experiments standardize feature matrices so the margin-based objectives
//! are comparable across users.

use crate::error::MlError;
use plos_linalg::Vector;

/// Per-dimension standardizer: `x' = (x − mean) / std`.
///
/// Dimensions with zero variance are shifted to zero but not rescaled.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vector,
    stds: Vector,
}

impl StandardScaler {
    /// Fits means and standard deviations on a sample of vectors.
    ///
    /// # Errors
    ///
    /// * [`MlError::Empty`] if `xs` is empty.
    /// * [`MlError::LengthMismatch`] if the feature vectors are ragged.
    pub fn fit(xs: &[Vector]) -> Result<Self, MlError> {
        if xs.is_empty() {
            return Err(MlError::Empty { what: "scaler samples" });
        }
        let d = xs.first().map_or(0, Vector::len);
        if let Some(bad) = xs.iter().find(|x| x.len() != d) {
            return Err(MlError::LengthMismatch {
                what: "feature dimensions",
                expected: d,
                actual: bad.len(),
            });
        }
        let n = xs.len() as f64;
        let mut means = Vector::zeros(d);
        for x in xs {
            means += x;
        }
        means.scale_mut(1.0 / n);
        let mut vars = Vector::zeros(d);
        for x in xs {
            for j in 0..d {
                let diff = x[j] - means[j];
                vars[j] += diff * diff;
            }
        }
        let stds: Vector = vars.iter().map(|&v| (v / n).sqrt()).collect();
        Ok(StandardScaler { means, stds })
    }

    /// Dimension the scaler was fitted on.
    pub fn dim(&self) -> usize {
        self.means.len()
    }

    /// Standardizes one vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn transform(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.dim(), "dimension mismatch");
        (0..x.len())
            .map(|j| {
                let centered = x[j] - self.means[j];
                if self.stds[j] > 0.0 {
                    centered / self.stds[j]
                } else {
                    centered
                }
            })
            .collect()
    }

    /// Standardizes a batch.
    pub fn transform_batch(&self, xs: &[Vector]) -> Vec<Vector> {
        xs.iter().map(|x| self.transform(x)).collect()
    }

    /// Convenience: fit on `xs` and return the transformed batch plus the
    /// fitted scaler.
    ///
    /// # Errors
    ///
    /// Propagates the same errors as [`StandardScaler::fit`].
    pub fn fit_transform(xs: &[Vector]) -> Result<(Vec<Vector>, Self), MlError> {
        let scaler = Self::fit(xs)?;
        let out = scaler.transform_batch(xs);
        Ok((out, scaler))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f64]) -> Vector {
        Vector::from(data)
    }

    #[test]
    fn transformed_data_has_zero_mean_unit_std() {
        let xs = vec![v(&[1.0, 10.0]), v(&[2.0, 20.0]), v(&[3.0, 30.0])];
        let (out, scaler) = StandardScaler::fit_transform(&xs).unwrap();
        assert_eq!(scaler.dim(), 2);
        for j in 0..2 {
            let col: Vec<f64> = out.iter().map(|x| x[j]).collect();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn constant_dimension_is_centered_not_scaled() {
        let xs = vec![v(&[5.0, 1.0]), v(&[5.0, 3.0])];
        let (out, _) = StandardScaler::fit_transform(&xs).unwrap();
        assert_eq!(out[0][0], 0.0);
        assert_eq!(out[1][0], 0.0);
        assert!(out[0][1] != 0.0);
    }

    #[test]
    fn transform_applies_train_statistics_to_new_data() {
        let xs = vec![v(&[0.0]), v(&[2.0])];
        let scaler = StandardScaler::fit(&xs).unwrap();
        // mean=1, std=1 -> x=3 maps to 2.
        assert!((scaler.transform(&v(&[3.0]))[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_inputs_with_err() {
        assert!(matches!(StandardScaler::fit(&[]), Err(MlError::Empty { .. })));
        assert!(matches!(
            StandardScaler::fit(&[v(&[1.0]), v(&[1.0, 2.0])]),
            Err(MlError::LengthMismatch { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_dim_transform_panics() {
        let scaler = StandardScaler::fit(&[v(&[1.0])]).unwrap();
        let _ = scaler.transform(&v(&[1.0, 2.0]));
    }
}
