//! Cross-validation splits and grid search.
//!
//! The paper selects hyperparameters "based on the accuracy reported by
//! leave-one-out cross-validation" (Sec. VI-A). These helpers produce the
//! index splits and drive a simple grid search over candidate parameter
//! values.

use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One train/validation split (index sets into the caller's sample array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Split {
    /// Indices to train on.
    pub train: Vec<usize>,
    /// Indices to validate on.
    pub validation: Vec<usize>,
}

/// Produces `k` shuffled folds over `n` samples.
///
/// Every sample appears in exactly one validation set; fold sizes differ by
/// at most one.
///
/// Determinism (rule D1 audit): assignment is order-deterministic by
/// construction — a seeded Fisher–Yates shuffle of `0..n` followed by a
/// round-robin deal into `Vec` folds, and train sets assembled by walking
/// the folds in fold order. No hash-ordered container appears anywhere on
/// this path, so identical `(n, k, seed)` always yields bit-identical
/// splits; the `fold_digests_pinned` regression test pins the exact
/// assignments.
///
/// # Panics
///
/// Panics if `k == 0` or `k > n`.
pub fn k_fold(n: usize, k: usize, seed: u64) -> Vec<Split> {
    assert!(k > 0, "k must be positive");
    assert!(k <= n, "k={k} exceeds n={n}");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (pos, idx) in order.into_iter().enumerate() {
        if let Some(fold) = folds.get_mut(pos % k) {
            fold.push(idx);
        }
    }
    folds
        .iter()
        .enumerate()
        .map(|(f, validation_fold)| {
            let train = folds
                .iter()
                .enumerate()
                .filter(|(g, _)| *g != f)
                .flat_map(|(_, fold)| fold.iter().copied())
                .collect();
            Split { train, validation: validation_fold.clone() }
        })
        .collect()
}

/// Leave-one-out splits over `n` samples (`n` folds of one validation
/// sample each).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn leave_one_out(n: usize) -> Vec<Split> {
    assert!(n > 0, "n must be positive");
    (0..n)
        .map(|i| Split { train: (0..n).filter(|&j| j != i).collect(), validation: vec![i] })
        .collect()
}

/// Exhaustive grid search: evaluates `score` on every candidate and returns
/// the `(best_candidate, best_score)` pair (higher is better; ties keep the
/// earliest candidate).
///
/// # Panics
///
/// Panics if `candidates` is empty or a score is NaN.
pub fn grid_search<P: Clone>(candidates: &[P], mut score: impl FnMut(&P) -> f64) -> (P, f64) {
    assert!(!candidates.is_empty(), "grid search needs at least one candidate");
    let mut best: Option<(P, f64)> = None;
    for c in candidates {
        let s = score(c);
        assert!(!s.is_nan(), "score must not be NaN");
        if best.as_ref().is_none_or(|(_, bs)| s > *bs) {
            best = Some((c.clone(), s));
        }
    }
    // Allowed: the non-empty assert above guarantees the loop ran at least
    // once, so `best` is always `Some` here.
    #[allow(clippy::expect_used)]
    best.expect("non-empty candidates")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn k_fold_partitions_all_indices() {
        let splits = k_fold(10, 3, 0);
        assert_eq!(splits.len(), 3);
        let mut seen = HashSet::new();
        for s in &splits {
            for &i in &s.validation {
                assert!(seen.insert(i), "index {i} validated twice");
            }
            // Train and validation are disjoint and cover everything.
            let train: HashSet<_> = s.train.iter().copied().collect();
            assert!(s.validation.iter().all(|i| !train.contains(i)));
            assert_eq!(s.train.len() + s.validation.len(), 10);
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn k_fold_sizes_balanced() {
        let splits = k_fold(11, 4, 1);
        let sizes: Vec<usize> = splits.iter().map(|s| s.validation.len()).collect();
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 11);
    }

    #[test]
    fn k_fold_deterministic_per_seed() {
        assert_eq!(k_fold(8, 2, 5), k_fold(8, 2, 5));
        assert_ne!(k_fold(8, 2, 5), k_fold(8, 2, 6));
    }

    #[test]
    fn loo_has_n_singleton_folds() {
        let splits = leave_one_out(4);
        assert_eq!(splits.len(), 4);
        for (i, s) in splits.iter().enumerate() {
            assert_eq!(s.validation, vec![i]);
            assert_eq!(s.train.len(), 3);
            assert!(!s.train.contains(&i));
        }
    }

    #[test]
    fn grid_search_picks_max() {
        let (best, score) = grid_search(&[1.0, 2.0, 3.0], |&x| -(x - 2.0_f64).powi(2));
        assert_eq!(best, 2.0);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn grid_search_ties_keep_first() {
        let (best, _) = grid_search(&["a", "b"], |_| 1.0);
        assert_eq!(best, "a");
    }

    /// FNV-1a over a split list: digests the exact index order of every
    /// train and validation set.
    fn split_digest(splits: &[Split]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for s in splits {
            eat(s.train.len() as u64);
            for &i in &s.train {
                eat(i as u64);
            }
            eat(s.validation.len() as u64);
            for &i in &s.validation {
                eat(i as u64);
            }
        }
        h
    }

    /// Regression gate for the D1 audit: the fold assignment for a fixed
    /// `(n, k, seed)` is part of the blessed numeric trajectory (it decides
    /// which samples train which fold model). Any change to the shuffle,
    /// the deal, or the train-assembly order shows up here as a digest
    /// mismatch before it can silently shift downstream accuracy numbers.
    #[test]
    fn fold_digests_pinned() {
        assert_eq!(split_digest(&k_fold(10, 3, 0)), 0x8306_bc19_a587_d466);
        assert_eq!(split_digest(&k_fold(11, 4, 1)), 0x274d_82e5_1d50_e8c5);
        assert_eq!(split_digest(&k_fold(8, 2, 5)), 0xaf50_500c_a0f3_d3e5);
        assert_eq!(split_digest(&leave_one_out(4)), 0x1430_3948_c36c_6fa5);
    }

    #[test]
    #[should_panic(expected = "k=5 exceeds n=3")]
    fn k_fold_rejects_excess_k() {
        let _ = k_fold(3, 5, 0);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_grid_panics() {
        let _ = grid_search::<f64>(&[], |_| 0.0);
    }
}
