//! Linear support-vector machine trained by dual coordinate descent.
//!
//! PLOS "inherits the spirit of SVM" (Sec. IV-A); the *All* and *Single*
//! baselines are plain linear SVMs, and the PLOS solvers use one as the
//! initialization of the global hyperplane. This is the standard
//! liblinear-style solver for the L1-loss (hinge) dual:
//!
//! ```text
//! min_α ½ αᵀ Q̄ α − 1ᵀα    s.t. 0 ≤ α_i ≤ C_i,   Q̄_ij = y_i y_j ⟨x_i, x_j⟩
//! ```
//!
//! maintaining `w = Σ α_i y_i x_i` so each coordinate update costs `O(d)`.
//!
//! Hyperplanes pass through the origin, exactly as in the paper; a bias is
//! obtained by augmenting features with a constant `1` (footnote 1), which
//! [`SvmParams::bias`] automates.

use crate::error::MlError;
use plos_linalg::Vector;

/// Training hyperparameters for [`LinearSvm`].
#[derive(Debug, Clone)]
pub struct SvmParams {
    /// Misclassification cost `C` (identical for every sample).
    pub c: f64,
    /// Stop when the largest projected-gradient magnitude in a sweep falls
    /// below this tolerance.
    pub tol: f64,
    /// Maximum number of full passes over the data.
    pub max_sweeps: usize,
    /// If `Some(b)`, every feature vector is augmented with the constant `b`
    /// so the learned hyperplane carries a bias term.
    pub bias: Option<f64>,
}

impl Default for SvmParams {
    fn default() -> Self {
        SvmParams { c: 1.0, tol: 1e-6, max_sweeps: 2000, bias: Some(1.0) }
    }
}

/// Trainer for a binary linear SVM with labels in `{−1, +1}`.
#[derive(Debug, Clone, Default)]
pub struct LinearSvm {
    params: SvmParams,
}

/// A trained linear decision function `f(x) = w · x̃` where `x̃` is `x`
/// augmented with the bias constant when one was configured.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    weights: Vector,
    bias: Option<f64>,
}

impl LinearSvm {
    /// Creates a trainer with the given parameters.
    pub fn new(params: SvmParams) -> Self {
        LinearSvm { params }
    }

    /// Trains on `(x_i, y_i)` pairs with `y_i ∈ {−1, +1}`.
    ///
    /// # Errors
    ///
    /// * [`MlError::Empty`] if `xs` is empty.
    /// * [`MlError::LengthMismatch`] if `xs.len() != ys.len()` or feature
    ///   vectors are ragged.
    /// * [`MlError::BadLabel`] if any label is not `±1`.
    pub fn fit(&self, xs: &[Vector], ys: &[i8]) -> Result<SvmModel, MlError> {
        if xs.is_empty() {
            return Err(MlError::Empty { what: "training samples" });
        }
        if xs.len() != ys.len() {
            return Err(MlError::LengthMismatch {
                what: "labels",
                expected: xs.len(),
                actual: ys.len(),
            });
        }
        if let Some(index) = ys.iter().position(|&y| y != 1 && y != -1) {
            return Err(MlError::BadLabel { index });
        }
        let d = xs.first().map_or(0, Vector::len);
        if let Some(bad) = xs.iter().find(|x| x.len() != d) {
            return Err(MlError::LengthMismatch {
                what: "feature dimensions",
                expected: d,
                actual: bad.len(),
            });
        }

        let augmented: Vec<Vector> = match self.params.bias {
            Some(b) => xs.iter().map(|x| x.with_appended(b)).collect(),
            None => xs.to_vec(),
        };
        let dim = augmented.first().map_or(0, Vector::len);
        let n = augmented.len();

        let sq_norms: Vec<f64> = augmented.iter().map(Vector::norm_squared).collect();
        let mut alpha = vec![0.0_f64; n];
        let mut w = Vector::zeros(dim);

        for _ in 0..self.params.max_sweeps {
            let mut max_pg = 0.0_f64;
            for ((alpha_i, x), (&yi8, &qn)) in
                alpha.iter_mut().zip(&augmented).zip(ys.iter().zip(&sq_norms))
            {
                let yi = yi8 as f64;
                let g = yi * w.dot(x) - 1.0;
                // Projected gradient for the box constraint 0 <= alpha <= C.
                let pg = if *alpha_i <= 0.0 {
                    g.min(0.0)
                } else if *alpha_i >= self.params.c {
                    g.max(0.0)
                } else {
                    g
                };
                if pg.abs() > 1e-14 {
                    max_pg = max_pg.max(pg.abs());
                    let qii = qn.max(1e-12);
                    let new_alpha = (*alpha_i - g / qii).clamp(0.0, self.params.c);
                    let delta = new_alpha - *alpha_i;
                    if delta != 0.0 {
                        w.axpy(delta * yi, x);
                        *alpha_i = new_alpha;
                    }
                }
            }
            if max_pg < self.params.tol {
                break;
            }
        }
        Ok(SvmModel { weights: w, bias: self.params.bias })
    }
}

impl SvmModel {
    /// Builds a model directly from a weight vector (no bias augmentation).
    ///
    /// Useful for wrapping hyperplanes produced by other solvers (e.g. the
    /// PLOS personalized hyperplanes) in the common predict interface.
    pub fn from_weights(weights: Vector) -> Self {
        SvmModel { weights, bias: None }
    }

    /// The learned weight vector (including the bias weight as the last
    /// component when bias augmentation was used).
    pub fn weights(&self) -> &Vector {
        &self.weights
    }

    /// Signed decision value `w · x̃`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision_function(&self, x: &Vector) -> f64 {
        match self.bias {
            Some(b) => self.weights.dot(&x.with_appended(b)),
            None => self.weights.dot(x),
        }
    }

    /// Predicted label in `{−1, +1}` (ties break to `+1`).
    pub fn predict(&self, x: &Vector) -> i8 {
        if self.decision_function(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Predicts a batch of samples.
    pub fn predict_batch(&self, xs: &[Vector]) -> Vec<i8> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn v(data: &[f64]) -> Vector {
        Vector::from(data)
    }

    #[test]
    fn separable_1d_problem() {
        let xs = vec![v(&[-2.0]), v(&[-1.0]), v(&[1.0]), v(&[2.0])];
        let ys = vec![-1, -1, 1, 1];
        let model = LinearSvm::new(SvmParams::default()).fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(model.predict(x), *y);
        }
    }

    #[test]
    fn bias_shifts_the_boundary() {
        // Classes split at x = 3: impossible through the origin without bias.
        let xs = vec![v(&[1.0]), v(&[2.0]), v(&[4.0]), v(&[5.0])];
        let ys = vec![-1, -1, 1, 1];
        let with_bias = LinearSvm::new(SvmParams::default()).fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(with_bias.predict(x), *y, "with bias, x={x}");
        }
        let no_bias =
            LinearSvm::new(SvmParams { bias: None, ..SvmParams::default() }).fit(&xs, &ys).unwrap();
        let errs = xs.iter().zip(&ys).filter(|(x, y)| no_bias.predict(x) != **y).count();
        assert!(errs >= 1, "origin-constrained SVM cannot separate a shifted split");
    }

    #[test]
    fn margin_is_maximized_on_symmetric_data() {
        // Symmetric ±1 points: max-margin hyperplane is x = 0, and the
        // functional margin at the support vectors is 1.
        let xs = vec![v(&[-1.0]), v(&[1.0])];
        let ys = vec![-1, 1];
        let params = SvmParams { c: 1000.0, bias: None, ..SvmParams::default() };
        let model = LinearSvm::new(params).fit(&xs, &ys).unwrap();
        assert!((model.decision_function(&v(&[1.0])) - 1.0).abs() < 1e-4);
        assert!((model.decision_function(&v(&[-1.0])) + 1.0).abs() < 1e-4);
    }

    #[test]
    fn noisy_2d_blobs_high_accuracy() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..100 {
            let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
            let cx = 2.0 * y as f64;
            xs.push(v(&[cx + rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)]));
            ys.push(y);
        }
        let model = LinearSvm::new(SvmParams::default()).fit(&xs, &ys).unwrap();
        let preds = model.predict_batch(&xs);
        let correct = preds.iter().zip(&ys).filter(|(p, y)| p == y).count();
        assert!(correct as f64 / xs.len() as f64 > 0.95);
    }

    #[test]
    fn soft_margin_tolerates_label_noise() {
        let mut xs: Vec<Vector> = (0..20).map(|i| v(&[i as f64 - 10.0])).collect();
        let mut ys: Vec<i8> = xs.iter().map(|x| if x[0] >= 0.0 { 1 } else { -1 }).collect();
        // Flip one label deep inside the negative class.
        ys[0] = 1;
        xs.push(v(&[-10.5]));
        ys.push(-1);
        let model =
            LinearSvm::new(SvmParams { c: 0.1, ..SvmParams::default() }).fit(&xs, &ys).unwrap();
        // The flipped point must not dominate: boundary stays near 0.
        assert_eq!(model.predict(&v(&[5.0])), 1);
        assert_eq!(model.predict(&v(&[-5.0])), -1);
    }

    #[test]
    fn from_weights_skips_augmentation() {
        let m = SvmModel::from_weights(v(&[2.0, -1.0]));
        assert_eq!(m.decision_function(&v(&[1.0, 1.0])), 1.0);
        assert_eq!(m.predict(&v(&[0.0, 1.0])), -1);
    }

    #[test]
    fn rejects_bad_inputs_with_err() {
        use crate::error::MlError;
        let svm = LinearSvm::new(SvmParams::default());
        assert!(matches!(svm.fit(&[v(&[1.0])], &[0]), Err(MlError::BadLabel { index: 0 })));
        assert!(matches!(svm.fit(&[], &[]), Err(MlError::Empty { .. })));
        assert!(matches!(svm.fit(&[v(&[1.0])], &[1, -1]), Err(MlError::LengthMismatch { .. })));
        assert!(matches!(
            svm.fit(&[v(&[1.0]), v(&[1.0, 2.0])], &[1, -1]),
            Err(MlError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn single_class_data_trains_without_panic() {
        // All-positive data: decision function should be positive on them.
        let xs = vec![v(&[1.0]), v(&[2.0])];
        let model = LinearSvm::new(SvmParams::default()).fit(&xs, &[1, 1]).unwrap();
        assert_eq!(model.predict(&v(&[1.5])), 1);
    }
}
