//! Per-file syntax model.
//!
//! One pass over the token stream recovers the structure the rules need:
//! flattened use-trees, `fn` items with signature/body extents, `#[cfg(test)]`
//! module extents, loop headers and bodies, `let` bindings, and attributes.
//! This is deliberately not a full Rust parser — it tracks exactly the
//! structure the rule engine consumes, and it degrades gracefully on input
//! it does not understand (missing structure, never wrong structure).

use crate::lexer::{Tok, TokKind};

/// One leaf path from a flattened use-tree: `use std::sync::{Mutex, Arc}`
/// yields `["std","sync","Mutex"]` and `["std","sync","Arc"]`.
#[derive(Debug, Clone)]
pub struct UsePath {
    /// Path segments, root first.
    pub segments: Vec<String>,
    /// 1-based line of the `use` keyword.
    pub line: usize,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// True for bare `pub` (not `pub(crate)`/`pub(super)`: those are not
    /// public API).
    pub is_pub: bool,
    /// Token range `[start, end)` of the signature: from the `fn` keyword to
    /// the body `{` or terminating `;` (exclusive).
    pub sig: (usize, usize),
    /// Token range `[start, end)` of the body including both braces, when
    /// the fn has one.
    pub body: Option<(usize, usize)>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// One attribute, outer (`#[..]`) or inner (`#![..]`).
#[derive(Debug, Clone)]
pub struct Attr {
    /// Token range `[start, end)` covering `#` through `]`.
    pub range: (usize, usize),
    /// Rendered content between the brackets, tokens joined by one space.
    pub content: String,
    /// 1-based line of the `#`.
    pub line: usize,
}

/// One loop: `for`, `while` (incl. `while let`) or `loop`.
#[derive(Debug, Clone)]
pub struct LoopItem {
    /// For `for` loops, the token range of the iterated expression (between
    /// `in` and the body `{`); empty range for `while`/`loop`.
    pub header: (usize, usize),
    /// Token range `[start, end)` of the body including both braces.
    pub body: (usize, usize),
}

/// One single-identifier `let` binding (destructuring patterns are skipped).
#[derive(Debug, Clone)]
pub struct LetBinding {
    /// Bound name.
    pub name: String,
    /// Type-ascription tokens joined by one space (empty when inferred).
    pub ty: String,
    /// First tokens of the initializer, joined by one space (capped).
    pub init: String,
    /// Token index of the bound name.
    pub idx: usize,
}

/// Everything the rule engine reads about one file.
#[derive(Debug, Default)]
pub struct FileModel {
    /// Flattened use-tree leaves.
    pub uses: Vec<UsePath>,
    /// `fn` items, in source order.
    pub fns: Vec<FnItem>,
    /// Attributes, in source order.
    pub attrs: Vec<Attr>,
    /// Token ranges of `#[cfg(test)]` (or `mod tests`) module bodies.
    pub test_ranges: Vec<(usize, usize)>,
    /// Loops, in source order.
    pub loops: Vec<LoopItem>,
    /// Single-identifier `let` bindings, in source order.
    pub lets: Vec<LetBinding>,
}

impl FileModel {
    /// True when the token at `idx` sits inside a `#[cfg(test)]` module.
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| idx >= s && idx < e)
    }

    /// True when the token at `idx` sits inside some loop body.
    pub fn in_loop_body(&self, idx: usize) -> bool {
        self.loops.iter().any(|l| idx > l.body.0 && idx < l.body.1)
    }

    /// The innermost function whose body contains `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| idx >= s && idx < e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }
}

/// Index of the token closing the brace opened at `open` (which must hold a
/// `{`), or `toks.len()` when unbalanced.
fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while let Some(t) = toks.get(i) {
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Finds the next `{` or `;` at zero paren/bracket depth starting at `from`.
/// Returns `(index, is_brace)`.
fn next_body_or_semi(toks: &[Tok], from: usize) -> (usize, bool) {
    let mut depth = 0isize;
    let mut i = from;
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "{" if t.kind == TokKind::Punct && depth == 0 => return (i, true),
            ";" if t.kind == TokKind::Punct && depth == 0 => return (i, false),
            _ => {}
        }
        i += 1;
    }
    (toks.len(), false)
}

/// Builds the [`FileModel`] for a token stream.
pub fn build(toks: &[Tok]) -> FileModel {
    let mut model = FileModel::default();
    // Attributes seen since the last non-attribute token, for the
    // `#[cfg(test)] mod` association.
    let mut pending_attrs: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while let Some(t) = toks.get(i) {
        // ---- attributes ----
        if t.is_punct("#") {
            let bang = toks.get(i + 1).is_some_and(|t| t.is_punct("!"));
            let open = i + 1 + usize::from(bang);
            if toks.get(open).is_some_and(|t| t.is_punct("[")) {
                let mut depth = 0isize;
                let mut j = open;
                while let Some(tj) = toks.get(j) {
                    if tj.is_punct("[") {
                        depth += 1;
                    } else if tj.is_punct("]") {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                let end = (j + 1).min(toks.len());
                let content = render(toks, open + 1, j);
                model.attrs.push(Attr { range: (i, end), content, line: t.line });
                pending_attrs.push(model.attrs.len() - 1);
                i = end;
                continue;
            }
        }
        // ---- use declarations ----
        if t.is_ident("use") {
            // A use-tree may contain `{..}` groups but never a `;`, so the
            // next semicolon terminates the declaration.
            let mut semi = i + 1;
            while toks.get(semi).is_some_and(|t| !t.is_punct(";")) {
                semi += 1;
            }
            let line = t.line;
            let mut leaves = Vec::new();
            flatten_use(toks, i + 1, semi, &[], &mut leaves);
            model.uses.extend(leaves.into_iter().map(|segments| UsePath { segments, line }));
            pending_attrs.clear();
            i = semi + 1;
            continue;
        }
        // ---- mod items (for cfg(test) scoping) ----
        if t.is_ident("mod") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
            if toks.get(i + 2).is_some_and(|t| t.is_punct("{")) {
                let close = matching_brace(toks, i + 2);
                let is_test = name == "tests"
                    || pending_attrs.iter().any(|&a| {
                        model
                            .attrs
                            .get(a)
                            .is_some_and(|attr| attr.content.replace(' ', "").contains("cfg(test)"))
                    });
                if is_test {
                    model.test_ranges.push((i + 2, close + 1));
                }
                pending_attrs.clear();
                // Recurse into the module body by just continuing the scan.
                i += 3;
                continue;
            }
        }
        // ---- fn items ----
        if t.is_ident("fn") && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Ident) {
            let name = toks.get(i + 1).map(|t| t.text.clone()).unwrap_or_default();
            let is_pub = fn_is_pub(toks, i);
            let (stop, is_brace) = next_body_or_semi(toks, i + 1);
            let body = if is_brace {
                let close = matching_brace(toks, stop);
                Some((stop, close + 1))
            } else {
                None
            };
            model.fns.push(FnItem { name, is_pub, sig: (i, stop), body, line: t.line });
            pending_attrs.clear();
            i += 2;
            continue;
        }
        // ---- loops ----
        if t.is_ident("for") && !toks.get(i + 1).is_some_and(|t| t.is_punct("<")) {
            // Distinguish a for-loop from `impl Trait for Type`: a loop has
            // an `in` at zero depth before its body brace.
            if let Some(in_idx) = find_loop_in(toks, i + 1) {
                let (open, is_brace) = next_body_or_semi(toks, in_idx + 1);
                if is_brace {
                    let close = matching_brace(toks, open);
                    model
                        .loops
                        .push(LoopItem { header: (in_idx + 1, open), body: (open, close + 1) });
                }
            }
            pending_attrs.clear();
            i += 1;
            continue;
        }
        if (t.is_ident("while"))
            || (t.is_ident("loop") && toks.get(i + 1).is_some_and(|t| t.is_punct("{")))
        {
            let (open, is_brace) = next_body_or_semi(toks, i + 1);
            if is_brace {
                let close = matching_brace(toks, open);
                model.loops.push(LoopItem { header: (open, open), body: (open, close + 1) });
            }
            pending_attrs.clear();
            i += 1;
            continue;
        }
        // ---- let bindings ----
        if t.is_ident("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.kind == TokKind::Ident)
                && toks
                    .get(j + 1)
                    .is_some_and(|t| t.is_punct(":") || t.is_punct("=") || t.is_punct(";"))
            {
                let name = toks.get(j).map(|t| t.text.clone()).unwrap_or_default();
                let mut ty = String::new();
                let mut k = j + 1;
                if toks.get(k).is_some_and(|t| t.is_punct(":")) {
                    // Type ascription runs to the `=`/`;` at zero depth
                    // (angle brackets do not nest with parens here, so track
                    // `<`/`>` alongside parens/brackets).
                    let ty_start = k + 1;
                    let mut depth = 0isize;
                    while let Some(tk) = toks.get(k) {
                        match tk.text.as_str() {
                            "(" | "[" | "<" if tk.kind == TokKind::Punct => depth += 1,
                            ")" | "]" | ">" if tk.kind == TokKind::Punct => depth -= 1,
                            "=" | ";" if tk.kind == TokKind::Punct && depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    ty = render(toks, ty_start, k);
                }
                let mut init = String::new();
                if toks.get(k).is_some_and(|t| t.is_punct("=")) {
                    let init_end = (k + 9).min(toks.len());
                    init = render(toks, k + 1, init_end);
                }
                model.lets.push(LetBinding { name, ty, init, idx: j });
            }
            pending_attrs.clear();
            i += 1;
            continue;
        }
        if t.kind != TokKind::Punct || !t.text.starts_with('#') {
            pending_attrs.clear();
        }
        i += 1;
    }
    model
}

/// True when the `fn` keyword at `fn_idx` is preceded by a bare `pub`
/// (qualifiers `const`/`unsafe`/`async`/`extern "C"` may intervene).
fn fn_is_pub(toks: &[Tok], fn_idx: usize) -> bool {
    let mut i = fn_idx;
    while i > 0 {
        i -= 1;
        let Some(t) = toks.get(i) else { break };
        match t.text.as_str() {
            "const" | "unsafe" | "async" | "extern" => continue,
            _ if t.kind == TokKind::Literal => continue, // extern "C"
            ")" => {
                // `pub(crate)` / `pub(super)`: restricted, not public API.
                return false;
            }
            "pub" => return true,
            _ => return false,
        }
    }
    false
}

/// Finds the `in` of a for-loop header starting after the `for` keyword, at
/// zero paren/bracket/brace depth; `None` when this `for` is not a loop.
fn find_loop_in(toks: &[Tok], from: usize) -> Option<usize> {
    let mut depth = 0isize;
    let mut i = from;
    while let Some(t) = toks.get(i) {
        match t.text.as_str() {
            "(" | "[" if t.kind == TokKind::Punct => depth += 1,
            ")" | "]" if t.kind == TokKind::Punct => depth -= 1,
            "{" if t.kind == TokKind::Punct && depth == 0 => return None,
            ";" if t.kind == TokKind::Punct && depth == 0 => return None,
            "in" if t.kind == TokKind::Ident && depth == 0 => return Some(i),
            _ => {}
        }
        i += 1;
    }
    None
}

/// Joins token texts in `[start, end)` with single spaces.
pub fn render(toks: &[Tok], start: usize, end: usize) -> String {
    let mut out = String::new();
    for t in toks.iter().take(end).skip(start) {
        if !out.is_empty() {
            out.push(' ');
        }
        out.push_str(&t.text);
    }
    out
}

/// Flattens the use-tree tokens in `[from, to)` into leaf segment paths.
/// `prefix` carries the segments accumulated so far.
fn flatten_use(
    toks: &[Tok],
    from: usize,
    to: usize,
    prefix: &[String],
    out: &mut Vec<Vec<String>>,
) {
    let mut segments: Vec<String> = Vec::new();
    let mut i = from;
    while i < to {
        let Some(t) = toks.get(i) else { break };
        if t.kind == TokKind::Ident && t.text != "as" {
            segments.push(t.text.clone());
            i += 1;
        } else if t.is_punct("::") {
            i += 1;
        } else if t.is_punct("{") {
            // Group: recurse per comma-separated branch.
            let close = matching_group(toks, i, to);
            let mut branch_start = i + 1;
            let mut depth = 0isize;
            let mut j = i + 1;
            while j < close {
                let Some(tj) = toks.get(j) else { break };
                if tj.is_punct("{") {
                    depth += 1;
                } else if tj.is_punct("}") {
                    depth -= 1;
                } else if tj.is_punct(",") && depth == 0 {
                    let mut nested = prefix.to_vec();
                    nested.extend(segments.iter().cloned());
                    flatten_use(toks, branch_start, j, &nested, out);
                    branch_start = j + 1;
                }
                j += 1;
            }
            let mut nested = prefix.to_vec();
            nested.extend(segments.iter().cloned());
            flatten_use(toks, branch_start, close, &nested, out);
            return;
        } else if t.is_punct("*") {
            segments.push("*".to_string());
            i += 1;
        } else if t.is_ident("as") {
            // Rename: the path itself is what matters; skip the alias.
            break;
        } else {
            i += 1;
        }
    }
    if !segments.is_empty() || !prefix.is_empty() {
        let mut leaf = prefix.to_vec();
        leaf.append(&mut segments);
        if !leaf.is_empty() {
            out.push(leaf);
        }
    }
}

/// Matching `}` for the `{` at `open`, bounded by `to`.
fn matching_group(toks: &[Tok], open: usize, to: usize) -> usize {
    let mut depth = 0isize;
    let mut i = open;
    while i < to {
        let Some(t) = toks.get(i) else { break };
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    to
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        build(&lex(src).toks)
    }

    #[test]
    fn use_trees_flatten() {
        let m = model("use std::sync::{Mutex, atomic::{AtomicBool, Ordering}};\nuse a::b;");
        let paths: Vec<String> = m.uses.iter().map(|u| u.segments.join("::")).collect();
        assert!(paths.contains(&"std::sync::Mutex".to_string()), "{paths:?}");
        assert!(paths.contains(&"std::sync::atomic::AtomicBool".to_string()), "{paths:?}");
        assert!(paths.contains(&"std::sync::atomic::Ordering".to_string()), "{paths:?}");
        assert!(paths.contains(&"a::b".to_string()), "{paths:?}");
    }

    #[test]
    fn fns_with_bodies_and_visibility() {
        let m = model("pub fn fit(x: usize) -> Result<(), ()> { x; }\nfn helper() {}\npub(crate) fn inner() {}");
        assert_eq!(m.fns.len(), 3);
        assert!(m.fns.first().is_some_and(|f| f.is_pub && f.name == "fit" && f.body.is_some()));
        assert!(m.fns.get(1).is_some_and(|f| !f.is_pub));
        assert!(m.fns.get(2).is_some_and(|f| !f.is_pub), "pub(crate) is not public API");
    }

    #[test]
    fn cfg_test_mod_ranges() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests { fn t() { bad(); } }";
        let m = model(src);
        assert_eq!(m.test_ranges.len(), 1);
        let lexed = lex(src);
        let bad = lexed.toks.iter().position(|t| t.is_ident("bad"));
        assert!(bad.is_some_and(|i| m.in_test(i)));
        let lib = lexed.toks.iter().position(|t| t.is_ident("lib"));
        assert!(lib.is_some_and(|i| !m.in_test(i)));
    }

    #[test]
    fn for_loop_vs_impl_for() {
        let m = model("impl Display for Foo { fn f(&self) { for x in 0..3 { y(x); } } }");
        assert_eq!(m.loops.len(), 1);
    }

    #[test]
    fn let_bindings_record_type_and_init() {
        let m = model("fn f() { let mut acc: f64 = 0.0; let v = Vec::new(); }");
        assert_eq!(m.lets.len(), 2);
        assert!(m.lets.first().is_some_and(|l| l.name == "acc" && l.ty == "f64"));
        assert!(m.lets.get(1).is_some_and(|l| l.init.starts_with("Vec :: new")));
    }

    #[test]
    fn enclosing_fn_and_loops() {
        let src = "fn outer() { while go() { step(); } }";
        let m = model(src);
        let lexed = lex(src);
        let step = lexed.toks.iter().position(|t| t.is_ident("step"));
        assert!(step.is_some_and(|i| m.in_loop_body(i)));
        assert!(step.and_then(|i| m.enclosing_fn(i)).is_some_and(|f| f.name == "outer"));
    }
}
