//! plos-lint: a parser-based determinism and concurrency analyzer for the
//! PLOS workspace.
//!
//! Pipeline: [`lexer`] turns source text into significant tokens plus a
//! comment side-channel, [`syntax`] recovers a lightweight per-file model
//! (use-trees, fn items, `#[cfg(test)]` extents, loops, let bindings), and
//! [`rules`] runs the scope-aware rule engine over it. This crate replaces
//! the eight textual rules that used to live in `xtask` — because rules now
//! see tokens and scopes, string literals and test modules can no longer
//! produce false positives, and a new family of determinism (D1–D3) and
//! concurrency (C1–C3) rules becomes expressible.
//!
//! Violations are suppressed by **justification directives** written in
//! comments. The grammar requires naming the rule and giving a reason:
//!
//! * line-scoped, on the line above or trailing the offending line:
//!   `plos-lint: allow(C2): device count is bounded by the u32 wire format`
//! * file-scoped, anywhere in the file:
//!   `plos-lint: allow-file(D2): bench-only crate, timing is the product`
//!
//! A directive with an unknown rule ID or a missing reason is itself a
//! violation (A1), so stale or vague suppressions fail the gate.

pub mod lexer;
pub mod rules;
pub mod syntax;

pub use rules::{FileFindings, LockEdge, Scope, Violation};

use std::path::{Path, PathBuf};

/// One catalogue entry: a machine-readable ID plus a short name and summary.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Machine-readable ID (`R1`..`R8`, `D1`..`D3`, `C1`..`C3`, `A1`).
    pub id: &'static str,
    /// Short kebab-case name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full rule catalogue.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        name: "std-sync",
        summary: "std::sync::Mutex/RwLock banned in library code; use parking_lot",
    },
    RuleInfo {
        id: "R2",
        name: "thread-spawn",
        summary: "thread::spawn/scope only inside crates/exec and crates/net",
    },
    RuleInfo {
        id: "R3",
        name: "solver-result",
        summary: "public solve*/fit*/train* entry points must return Result",
    },
    RuleInfo {
        id: "R4",
        name: "float-cast",
        summary: "f64→usize casts in crates/sensing must round explicitly",
    },
    RuleInfo {
        id: "R5",
        name: "allow-justification",
        summary: "#[allow] attributes need a justification comment above",
    },
    RuleInfo {
        id: "R6",
        name: "endpoint-recv",
        summary: "transport waits are timeout-driven and fallible, never bare recv()/expect",
    },
    RuleInfo {
        id: "R7",
        name: "no-stdout",
        summary: "no print!-family macros in library crates; use plos-obs",
    },
    RuleInfo {
        id: "R8",
        name: "ckpt-write",
        summary: "direct fs writes only inside plos-ckpt/plos-obs",
    },
    RuleInfo {
        id: "D1",
        name: "map-iteration",
        summary: "no HashMap/HashSet iteration in library code (unordered breaks bit-parity)",
    },
    RuleInfo {
        id: "D2",
        name: "wall-clock",
        summary: "Instant::now/SystemTime::now outside net/bench needs an audited justification",
    },
    RuleInfo {
        id: "D3",
        name: "float-fold",
        summary: "float += reductions in loops must use fixed-order linalg::kernels accumulators",
    },
    RuleInfo {
        id: "C1",
        name: "lock-order",
        summary: "parking_lot locks held simultaneously must be acquired in one global order",
    },
    RuleInfo {
        id: "C2",
        name: "narrowing-cast",
        summary: "no `as` narrowing casts on lengths/indices in library code",
    },
    RuleInfo {
        id: "C3",
        name: "counter-arith",
        summary: "counters/byte totals accumulate with saturating_*/checked_*",
    },
    RuleInfo {
        id: "A1",
        name: "allow-directive",
        summary: "justification directives must name a known rule and give a reason",
    },
];

/// Short name for a rule ID (`"unknown"` for IDs not in the catalogue).
pub fn rule_name(id: &str) -> &'static str {
    RULES.iter().find(|r| r.id == id).map_or("unknown", |r| r.name)
}

/// True when `id` names a suppressible rule (everything except A1, which
/// polices the directives themselves).
fn suppressible(id: &str) -> bool {
    id != "A1" && RULES.iter().any(|r| r.id == id)
}

/// Computes the path-derived [`Scope`] for a workspace-relative path
/// (forward-slash separated).
pub fn scope_of(rel: &str) -> Scope {
    let is_bin = rel.contains("/bin/") || rel.ends_with("src/main.rs");
    let in_crate = |name: &str| rel.starts_with(&format!("crates/{name}/"));
    let is_library = ((rel.starts_with("crates/") && rel.contains("/src/"))
        || rel.starts_with("src/"))
        && !is_bin;
    let in_bench = in_crate("bench");
    Scope {
        is_library,
        in_net: in_crate("net"),
        in_exec: in_crate("exec"),
        in_sensing: in_crate("sensing"),
        in_linalg: in_crate("linalg"),
        in_bench,
        stdout_banned: is_library && !in_bench,
        fs_write_banned: is_library && !in_bench && !in_crate("ckpt") && !in_crate("obs"),
    }
}

/// Parsed justification directives for one file.
#[derive(Debug, Default)]
struct Allows {
    /// Rule IDs allowed for the whole file.
    file_wide: Vec<String>,
    /// `(line, rule)` pairs: the rule is allowed on that line.
    lines: Vec<(usize, String)>,
    /// A1 violations: malformed directives.
    bad: Vec<(usize, String)>,
}

/// The directive marker, split so this file does not read as a directive to
/// itself when the workspace lints its own sources.
const MARKER: &str = concat!("plos-", "lint:");

/// Parses every justification directive in the comment side-channel.
/// `tok_lines` must hold the sorted list of lines bearing significant
/// tokens (for trailing-vs-preceding resolution).
fn parse_allows(comments: &[lexer::Comment], tok_lines: &[usize]) -> Allows {
    let mut out = Allows::default();
    for c in comments {
        let body = c.text.trim_start_matches('/').trim();
        let Some(rest) = body.strip_prefix(MARKER) else { continue };
        let rest = rest.trim();
        let (file_wide, rest) = match rest.strip_prefix("allow-file(") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow(") {
                Some(r) => (false, r),
                None => {
                    out.bad.push((
                        c.line,
                        "directive must be `allow(<rule>): <reason>` or \
                         `allow-file(<rule>): <reason>`"
                            .to_string(),
                    ));
                    continue;
                }
            },
        };
        let Some((id, tail)) = rest.split_once(')') else {
            out.bad.push((c.line, "unclosed rule ID parenthesis".to_string()));
            continue;
        };
        let id = id.trim();
        if !suppressible(id) {
            out.bad.push((c.line, format!("unknown or unsuppressible rule ID `{id}`")));
            continue;
        }
        let reason = tail.trim().strip_prefix(':').map(str::trim).unwrap_or("");
        if reason.is_empty() {
            out.bad.push((c.line, format!("directive for {id} needs a reason after the colon")));
            continue;
        }
        if file_wide {
            out.file_wide.push(id.to_string());
        } else {
            // Trailing form: a token shares the comment's line. Preceding
            // form: the directive covers the next line bearing a token.
            let target = if tok_lines.binary_search(&c.line).is_ok() {
                Some(c.line)
            } else {
                tok_lines.iter().find(|&&l| l > c.line).copied()
            };
            if let Some(line) = target {
                out.lines.push((line, id.to_string()));
            }
        }
    }
    out
}

impl Allows {
    fn covers(&self, rule: &str, line: usize) -> bool {
        self.file_wide.iter().any(|r| r == rule)
            || self.lines.iter().any(|(l, r)| *l == line && r == rule)
    }
}

/// Lints one in-memory source file, returning violations plus the
/// lock-order facts needed for the cross-file C1 pass.
pub fn lint_source(rel: &str, src: &str) -> FileFindings {
    let lexed = lexer::lex(src);
    let model = syntax::build(&lexed.toks);
    let scope = scope_of(rel);
    let ctx =
        rules::FileCtx { rel, toks: &lexed.toks, comments: &lexed.comments, model: &model, scope };
    let found = rules::check_file(&ctx);
    let mut tok_lines: Vec<usize> = lexed.toks.iter().map(|t| t.line).collect();
    tok_lines.dedup();
    let allows = parse_allows(&lexed.comments, &tok_lines);
    let mut violations: Vec<Violation> =
        found.violations.into_iter().filter(|v| !allows.covers(v.rule, v.line)).collect();
    for (line, msg) in &allows.bad {
        violations.push(Violation {
            path: rel.to_string(),
            line: *line,
            col: 1,
            rule: "A1",
            name: rule_name("A1"),
            message: msg.clone(),
        });
    }
    let lock_edges =
        found.lock_edges.into_iter().filter(|e| !allows.covers("C1", e.line)).collect();
    FileFindings { violations, lock_edges }
}

/// Lints a set of in-memory files as one unit, including the cross-file C1
/// lock-order consistency pass. Returns violations sorted by
/// (path, line, col, rule).
pub fn lint_sources(files: &[(String, String)]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    for (rel, src) in files {
        let mut f = lint_source(rel, src);
        violations.append(&mut f.violations);
        edges.append(&mut f.lock_edges);
    }
    violations.extend(lock_order_conflicts(&edges));
    violations
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    violations
}

/// Lints one file standalone (the cross-file C1 pass still runs, over this
/// file's own edges).
pub fn lint_file(rel: &str, src: &str) -> Vec<Violation> {
    lint_sources(&[(rel.to_string(), src.to_string())])
}

/// C1 cross-file pass: if (a, b) and (b, a) acquisition orders both occur
/// anywhere in the linted set, every edge of the rarer direction is flagged,
/// naming a counterexample site.
fn lock_order_conflicts(edges: &[LockEdge]) -> Vec<Violation> {
    let mut out = Vec::new();
    for e in edges {
        let reversed = edges.iter().find(|o| o.first == e.second && o.second == e.first);
        let Some(rev) = reversed else { continue };
        // Flag only the direction that is lexicographically later, so one
        // conflicting pair yields violations on one side, not both.
        if (e.first.as_str(), e.second.as_str()) < (rev.first.as_str(), rev.second.as_str()) {
            continue;
        }
        out.push(Violation {
            path: e.path.clone(),
            line: e.line,
            col: e.col,
            rule: "C1",
            name: rule_name("C1"),
            message: format!(
                "lock order `{}` then `{}` conflicts with the reverse order at \
                 {}:{} — pick one global acquisition order",
                e.first, e.second, rev.path, rev.line
            ),
        });
    }
    out
}

/// First-party Rust sources under `root`: `crates/`, `src/`, `tests/`,
/// `examples/`, skipping `target/`, `vendor/`, dot-directories, and the
/// analyzer's own `lint_fixtures` corpus (those files trip rules by design).
pub fn first_party_rust_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, files: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target"
                || name == "vendor"
                || name == "lint_fixtures"
                || name.starts_with('.')
            {
                continue;
            }
            walk(&path, files)?;
        } else if name.ends_with(".rs") {
            files.push(path);
        }
    }
    Ok(())
}

/// Lints the whole workspace rooted at `root`. Reads every first-party
/// Rust file and runs the full engine including the cross-file C1 pass.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut sources = Vec::new();
    for path in first_party_rust_files(root)? {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        sources.push((rel, text));
    }
    Ok(lint_sources(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_directive_suppresses_on_preceding_line() {
        let src = format!(
            "use std::time::Instant;\nfn f() {{\n    // {} allow(D2): timeout only\n    let t = Instant::now();\n}}\n",
            MARKER
        );
        assert!(lint_file("crates/core/src/a.rs", &src).is_empty());
    }

    #[test]
    fn allow_directive_suppresses_trailing() {
        let src = format!(
            "use std::time::Instant;\nfn f() {{\n    let t = Instant::now(); // {} allow(D2): timeout only\n}}\n",
            MARKER
        );
        assert!(lint_file("crates/core/src/a.rs", &src).is_empty());
    }

    #[test]
    fn allow_file_covers_whole_file() {
        let src = format!(
            "// {} allow-file(C2): indices bounded by wire format\nfn f(a: usize, b: usize) -> u32 {{ (a as u32) + (b as u32) }}\n",
            MARKER
        );
        assert!(lint_file("crates/core/src/a.rs", &src).is_empty());
    }

    #[test]
    fn unknown_rule_id_is_a1() {
        let src = format!("// {} allow(Z9): nope\nfn f() {{}}\n", MARKER);
        let v = lint_file("crates/core/src/a.rs", &src);
        assert_eq!(v.len(), 1);
        assert!(v.first().is_some_and(|v| v.rule == "A1"));
    }

    #[test]
    fn missing_reason_is_a1() {
        let src = format!("// {} allow(C2)\nfn f(n: usize) -> u32 {{ n as u32 }}\n", MARKER);
        let v = lint_file("crates/core/src/a.rs", &src);
        assert!(v.iter().any(|v| v.rule == "A1"));
        assert!(v.iter().any(|v| v.rule == "C2"), "unreasoned directive must not suppress");
    }

    #[test]
    fn cross_file_lock_order_conflict() {
        let a = "fn f(x: &M, y: &M) { let a = x.lock(); let b = y.lock(); }".to_string();
        let b = "fn g(x: &M, y: &M) { let a = y.lock(); let b = x.lock(); }".to_string();
        let v = lint_sources(&[
            ("crates/core/src/a.rs".to_string(), a),
            ("crates/core/src/b.rs".to_string(), b),
        ]);
        assert_eq!(v.iter().filter(|v| v.rule == "C1").count(), 1, "{v:?}");
    }

    #[test]
    fn consistent_lock_order_is_clean() {
        let a = "fn f(x: &M, y: &M) { let a = x.lock(); let b = y.lock(); }".to_string();
        let b = "fn g(x: &M, y: &M) { let a = x.lock(); let b = y.lock(); }".to_string();
        let v = lint_sources(&[
            ("crates/core/src/a.rs".to_string(), a),
            ("crates/core/src/b.rs".to_string(), b),
        ]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn scope_classifies_paths() {
        assert!(scope_of("crates/core/src/lib.rs").is_library);
        assert!(!scope_of("crates/bench/src/main.rs").is_library);
        assert!(!scope_of("tests/parity.rs").is_library);
        assert!(scope_of("crates/net/src/sim.rs").in_net);
        assert!(!scope_of("crates/obs/src/lib.rs").fs_write_banned);
        assert!(scope_of("crates/core/src/lib.rs").fs_write_banned);
    }
}
