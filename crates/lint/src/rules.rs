//! The rule engine: scope-aware checks over the token stream + syntax model.
//!
//! Each rule consumes the [`FileCtx`] (tokens, comments, syntax model, path
//! scope) and pushes [`Violation`]s. Rules are written against *tokens*, so
//! string literals and comments can never trip them, and `#[cfg(test)]`
//! modules inside library files are recognized and exempted from the
//! library-code rules (the old textual linter could do neither).
//!
//! The catalogue (see [`crate::RULES`]):
//!
//! * **R1 std-sync** — `std::sync::Mutex`/`RwLock` banned in library code.
//! * **R2 thread-spawn** — `thread::spawn`/`scope` outside exec/net.
//! * **R3 solver-result** — public `solve*`/`fit*`/`train*` return `Result`.
//! * **R4 float-cast** — unrounded `f64 → usize` casts in `crates/sensing`.
//! * **R5 allow-justification** — `#[allow]` needs a comment line above.
//! * **R6 endpoint-recv** — transport waits are timeout-driven + fallible.
//! * **R7 no-stdout** — no `print!`-family macros in library crates.
//! * **R8 ckpt-write** — direct fs writes only in `ckpt`/`obs`.
//! * **D1 map-iteration** — no `HashMap`/`HashSet` iteration in libraries.
//! * **D2 wall-clock** — `Instant::now`/`SystemTime::now` outside net/bench
//!   requires a justification naming the rule.
//! * **D3 float-fold** — ad-hoc `+=` float reductions in loops must route
//!   through `linalg::kernels` fixed-order accumulators.
//! * **C1 lock-order** — consistent lock-acquisition order (engine-level,
//!   cross-file; see [`crate::lint_files`]).
//! * **C2 narrowing-cast** — no `as` casts to sub-64-bit integers.
//! * **C3 counter-arith** — counters/byte totals use saturating arithmetic.

use crate::lexer::{Tok, TokKind};
use crate::syntax::{render, FileModel};

/// One rule violation with a machine-readable ID and a source span.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Machine-readable rule ID (`R1`..`R8`, `D1`..`D3`, `C1`..`C3`, `A1`).
    pub rule: &'static str,
    /// Human-oriented short rule name.
    pub name: &'static str,
    /// What went wrong and what to do instead.
    pub message: String,
}

/// Path-derived scope of one file, computed by [`crate::scope_of`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// First-party library code (`crates/*/src/**` or facade `src/`,
    /// excluding `src/main.rs` and `src/bin/`).
    pub is_library: bool,
    /// Inside `crates/net` (transport implementation).
    pub in_net: bool,
    /// Inside `crates/exec` (the sanctioned spawn site).
    pub in_exec: bool,
    /// Inside `crates/sensing` (rule R4's scope).
    pub in_sensing: bool,
    /// Inside `crates/linalg` (home of the fixed-order accumulators).
    pub in_linalg: bool,
    /// Inside `crates/bench` (figure harness; prints and times by design).
    pub in_bench: bool,
    /// R7 applies: library code that is not a binary and not the bench
    /// harness.
    pub stdout_banned: bool,
    /// R8 applies: library code outside `ckpt`/`obs`/bench/binaries.
    pub fs_write_banned: bool,
}

/// One lock-acquisition ordering fact: `first` was (heuristically) still
/// held when `second` was acquired.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Receiver text of the earlier acquisition.
    pub first: String,
    /// Receiver text of the later acquisition.
    pub second: String,
    /// Workspace-relative path of the acquiring function.
    pub path: String,
    /// 1-based line of the later acquisition.
    pub line: usize,
    /// 1-based column of the later acquisition.
    pub col: usize,
}

/// Everything the per-file pass hands back to the engine.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Violations found in this file (C1 conflicts are added later by the
    /// cross-file pass).
    pub violations: Vec<Violation>,
    /// Lock-order facts for the cross-file C1 pass.
    pub lock_edges: Vec<LockEdge>,
}

/// Per-file context handed to every rule.
pub struct FileCtx<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Significant tokens.
    pub toks: &'a [Tok],
    /// Comments (for R5's justification lookup).
    pub comments: &'a [crate::lexer::Comment],
    /// Syntax model.
    pub model: &'a FileModel,
    /// Path-derived scope.
    pub scope: Scope,
}

impl FileCtx<'_> {
    fn push(&self, out: &mut Vec<Violation>, tok: &Tok, rule: &'static str, message: String) {
        let name = crate::rule_name(rule);
        out.push(Violation {
            path: self.rel.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            name,
            message,
        });
    }

    /// Library-scope check for the token at `idx`: inside library code and
    /// outside any `#[cfg(test)]` module.
    fn lib_at(&self, idx: usize) -> bool {
        self.scope.is_library && !self.model.in_test(idx)
    }
}

/// Runs every per-file rule.
pub fn check_file(ctx: &FileCtx) -> FileFindings {
    let mut f = FileFindings::default();
    rule_r1_std_sync(ctx, &mut f.violations);
    rule_r2_thread_spawn(ctx, &mut f.violations);
    rule_r3_solver_result(ctx, &mut f.violations);
    rule_r4_float_cast(ctx, &mut f.violations);
    rule_r5_allow_justification(ctx, &mut f.violations);
    rule_r6_endpoint_recv(ctx, &mut f.violations);
    rule_r7_no_stdout(ctx, &mut f.violations);
    rule_r8_ckpt_write(ctx, &mut f.violations);
    rule_d1_map_iteration(ctx, &mut f.violations);
    rule_d2_wall_clock(ctx, &mut f.violations);
    rule_d3_float_fold(ctx, &mut f.violations);
    rule_c1_collect_locks(ctx, &mut f);
    rule_c2_narrowing_cast(ctx, &mut f.violations);
    rule_c3_counter_arith(ctx, &mut f.violations);
    f
}

/// The `::`-joined path chain ending at the identifier at `idx`, root first
/// (e.g. for the `now` of `std::time::Instant::now`, returns
/// `["std","time","Instant","now"]`).
fn path_ending_at(toks: &[Tok], idx: usize) -> Vec<String> {
    let mut segments = Vec::new();
    let Some(tail) = toks.get(idx) else { return segments };
    if tail.kind != TokKind::Ident {
        return segments;
    }
    segments.push(tail.text.clone());
    let mut i = idx;
    while i >= 2 {
        let sep = toks.get(i - 1);
        let seg = toks.get(i - 2);
        match (sep, seg) {
            (Some(sep), Some(seg)) if sep.is_punct("::") && seg.kind == TokKind::Ident => {
                segments.push(seg.text.clone());
                i -= 2;
            }
            _ => break,
        }
    }
    segments.reverse();
    segments
}

/// True when `chain` ends with the given suffix of segments.
fn chain_ends_with(chain: &[String], suffix: &[&str]) -> bool {
    chain.len() >= suffix.len() && chain.iter().rev().zip(suffix.iter().rev()).all(|(a, b)| a == b)
}

/// R1: `std::sync::Mutex`/`RwLock` (inline paths and use-tree leaves).
fn rule_r1_std_sync(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.is_ident("Mutex") || t.is_ident("RwLock")) || !ctx.lib_at(i) {
            continue;
        }
        let chain = path_ending_at(ctx.toks, i);
        if chain_ends_with(&chain, &["std", "sync", &t.text]) || in_std_sync_use(ctx, &t.text) {
            ctx.push(
                out,
                t,
                "R1",
                format!("std::sync::{} is banned; use parking_lot (no poisoning)", t.text),
            );
        }
    }
}

/// Whether a use-tree leaf imports `std::sync::<name>`.
fn in_std_sync_use(ctx: &FileCtx, name: &str) -> bool {
    ctx.model.uses.iter().any(|u| {
        u.segments.len() == 3
            && u.segments.first().is_some_and(|s| s == "std")
            && u.segments.get(1).is_some_and(|s| s == "sync")
            && u.segments.get(2).is_some_and(|s| s == name)
    })
}

/// R2: `thread::spawn`/`thread::scope` outside exec/net, including the
/// `use std::thread::spawn` import form the old linter missed.
fn rule_r2_thread_spawn(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library || ctx.scope.in_exec || ctx.scope.in_net {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !(t.is_ident("spawn") || t.is_ident("scope")) || !ctx.lib_at(i) {
            continue;
        }
        let chain = path_ending_at(ctx.toks, i);
        if chain_ends_with(&chain, &["thread", &t.text]) {
            ctx.push(
                out,
                t,
                "R2",
                format!(
                    "bare thread::{} outside crates/exec and crates/net; route solver \
                     work through the plos-exec pool and network work through the \
                     transport",
                    t.text
                ),
            );
        }
    }
    for u in &ctx.model.uses {
        let leaf = u.segments.last().map(String::as_str).unwrap_or("");
        if (leaf == "spawn" || leaf == "scope")
            && u.segments.first().is_some_and(|s| s == "std")
            && u.segments.get(1).is_some_and(|s| s == "thread")
        {
            if let Some(tok) = ctx.toks.iter().find(|t| t.line == u.line) {
                ctx.push(
                    out,
                    tok,
                    "R2",
                    format!("importing std::thread::{leaf} outside crates/exec and crates/net"),
                );
            }
        }
    }
}

/// R3: public solver entry points (`solve*`/`fit*`/`train*`) return Result.
fn rule_r3_solver_result(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library {
        return;
    }
    for f in &ctx.model.fns {
        if !f.is_pub
            || ctx.model.in_test(f.sig.0)
            || !["solve", "fit", "train"].iter().any(|p| f.name.starts_with(p))
        {
            continue;
        }
        let sig = render(ctx.toks, f.sig.0, f.sig.1);
        if !sig.contains("Result") {
            if let Some(tok) = ctx.toks.get(f.sig.0) {
                ctx.push(
                    out,
                    tok,
                    "R3",
                    format!(
                        "public solver entry `{}` must return Result (panicking trainers \
                         poison the distributed protocol)",
                        f.name
                    ),
                );
            }
        }
    }
}

/// R4: float→usize casts in `crates/sensing` must round explicitly. The
/// source expression (back to the nearest statement boundary) must not
/// contain float evidence without a rounding call.
fn rule_r4_float_cast(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library || !ctx.scope.in_sensing {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("as")
            || !ctx.toks.get(i + 1).is_some_and(|t| t.is_ident("usize"))
            || !ctx.lib_at(i)
        {
            continue;
        }
        let window = stmt_window_before(ctx.toks, i);
        let has_float = window.iter().any(|w| {
            ctx.toks
                .get(*w)
                .is_some_and(|t| t.kind == TokKind::Float || t.is_ident("f64") || t.is_ident("f32"))
        });
        let has_rounding = window.iter().any(|w| {
            ctx.toks
                .get(*w)
                .is_some_and(|t| ["round", "floor", "ceil", "trunc"].iter().any(|m| t.is_ident(m)))
                && ctx.toks.get(w + 1).is_some_and(|t| t.is_punct("("))
        });
        if has_float && !has_rounding {
            ctx.push(
                out,
                t,
                "R4",
                "truncating f64→usize cast; round explicitly (.round()/.floor()/.ceil()) \
                 before casting"
                    .to_string(),
            );
        }
    }
}

/// Token indices from the nearest statement boundary before `idx` up to
/// (excluding) `idx`.
fn stmt_window_before(toks: &[Tok], idx: usize) -> Vec<usize> {
    let mut start = idx;
    while start > 0 {
        let Some(t) = toks.get(start - 1) else { break };
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), ";" | "{" | "}" | "=" | ",") {
            break;
        }
        if t.is_ident("let") || t.is_ident("return") {
            break;
        }
        start -= 1;
        if idx - start > 48 {
            break;
        }
    }
    (start..idx).collect()
}

/// R5: every `allow` attribute carries a justification comment on the
/// nearest preceding non-empty line. Applies to all first-party code,
/// including tests, benches and examples.
fn rule_r5_allow_justification(ctx: &FileCtx, out: &mut Vec<Violation>) {
    for attr in &ctx.model.attrs {
        let mentions_allow = attr_mentions_allow(ctx.toks, attr.range);
        if !mentions_allow {
            continue;
        }
        // Nearest content strictly above the attribute's first line: the
        // greater of (last token line, last comment end-line) below it.
        let tok_line =
            ctx.toks.iter().take_while(|t| t.line < attr.line).map(|t| t.line).max().unwrap_or(0);
        let comment_line =
            ctx.comments.iter().filter(|c| c.end_line < attr.line).map(|c| c.end_line).max();
        let justified = comment_line.is_some_and(|c| c >= tok_line);
        if !justified {
            if let Some(tok) = ctx.toks.get(attr.range.0) {
                ctx.push(
                    out,
                    tok,
                    "R5",
                    "#[allow] without a justification comment on the line above".to_string(),
                );
            }
        }
    }
}

/// Whether the attribute tokens contain `allow (` (covers `#[allow]`,
/// `#![allow]` and `#[cfg_attr(.., allow(..))]`).
fn attr_mentions_allow(toks: &[Tok], range: (usize, usize)) -> bool {
    (range.0..range.1).any(|i| {
        toks.get(i).is_some_and(|t| t.is_ident("allow"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
    })
}

/// R6: transport consumers never block without a timeout and never panic on
/// a send/recv.
fn rule_r6_endpoint_recv(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library || ctx.scope.in_net {
        return;
    }
    let talks = ctx.model.uses.iter().any(|u| u.segments.first().is_some_and(|s| s == "plos_net"))
        || ctx.toks.iter().any(|t| t.is_ident("plos_net"));
    if !talks {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !ctx.lib_at(i) {
            continue;
        }
        // Bare blocking `.recv()`.
        if t.is_ident("recv")
            && i > 0
            && ctx.toks.get(i - 1).is_some_and(|t| t.is_punct("."))
            && ctx.toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && ctx.toks.get(i + 2).is_some_and(|t| t.is_punct(")"))
        {
            ctx.push(
                out,
                t,
                "R6",
                "bare blocking recv() on the transport; use recv_timeout under a \
                 RetryPolicy so a dead device cannot hang the trainer"
                    .to_string(),
            );
        }
        // `.expect(` chained onto a send/recv in the same statement.
        if t.is_ident("expect")
            && i > 0
            && ctx.toks.get(i - 1).is_some_and(|t| t.is_punct("."))
            && ctx.toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        {
            let window = stmt_window_before(ctx.toks, i);
            let chained_io = window.iter().any(|w| {
                ctx.toks.get(*w).is_some_and(|t| {
                    t.is_ident("send") || t.is_ident("recv") || t.is_ident("recv_timeout")
                }) && w
                    .checked_sub(1)
                    .and_then(|p| ctx.toks.get(p))
                    .is_some_and(|t| t.is_punct("."))
            });
            if chained_io {
                ctx.push(
                    out,
                    t,
                    "R6",
                    "expect on a transport send/recv; propagate CoreError::Transport \
                     instead of panicking"
                        .to_string(),
                );
            }
        }
    }
}

/// R7: no `print!`-family macros in library crates (diagnostics go through
/// plos-obs). Binaries and the bench harness are exempt.
fn rule_r7_no_stdout(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.stdout_banned {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        let is_print = ["println", "eprintln", "print", "eprint"].iter().any(|m| t.is_ident(m));
        if is_print && ctx.toks.get(i + 1).is_some_and(|t| t.is_punct("!")) && !ctx.model.in_test(i)
        {
            ctx.push(
                out,
                t,
                "R7",
                format!("{}! in a library crate; emit a plos-obs event or counter instead", t.text),
            );
        }
    }
}

/// R8: direct filesystem writes outside the checkpoint store and trace sink.
fn rule_r8_ckpt_write(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.fs_write_banned {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.model.in_test(i) || !ctx.toks.get(i + 1).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        let chain = path_ending_at(ctx.toks, i);
        let banned = (t.is_ident("write") && chain_ends_with(&chain, &["fs", "write"]))
            || (t.is_ident("create") && chain_ends_with(&chain, &["File", "create"]));
        if banned {
            ctx.push(
                out,
                t,
                "R8",
                "direct filesystem write in a library crate; persist state through the \
                 plos-ckpt store (versioned, digest-verified, atomic) instead"
                    .to_string(),
            );
        }
    }
}

/// Iteration-inducing methods on maps/sets whose order is not defined.
const MAP_ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// D1: no iteration over `HashMap`/`HashSet` in library code — unordered
/// iteration feeding model state breaks the bit-parity gates.
fn rule_d1_map_iteration(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library {
        return;
    }
    // Identifiers bound to a HashMap/HashSet in this file (type ascription
    // or constructor initializer).
    let map_names: Vec<&str> = ctx
        .model
        .lets
        .iter()
        .filter(|l| {
            l.ty.contains("HashMap")
                || l.ty.contains("HashSet")
                || l.init.starts_with("HashMap")
                || l.init.starts_with("HashSet")
        })
        .map(|l| l.name.as_str())
        .collect();
    let mut flagged_lines: Vec<usize> = Vec::new();
    // (a) for-loops whose iterated expression mentions a map binding or a
    // map constructor inline.
    for l in &ctx.model.loops {
        let (hs, he) = l.header;
        if hs == he || ctx.model.in_test(hs) {
            continue;
        }
        let mentions = (hs..he).any(|i| {
            ctx.toks.get(i).is_some_and(|t| {
                t.is_ident("HashMap")
                    || t.is_ident("HashSet")
                    || map_names.iter().any(|n| t.is_ident(n))
            })
        });
        if mentions {
            if let Some(tok) = ctx.toks.get(hs) {
                if !flagged_lines.contains(&tok.line) {
                    flagged_lines.push(tok.line);
                    ctx.push(
                        out,
                        tok,
                        "D1",
                        "iterating a HashMap/HashSet in library code; unordered iteration \
                         breaks bit-parity — use a Vec/BTreeMap or sort keys first"
                            .to_string(),
                    );
                }
            }
        }
    }
    // (b) iteration methods invoked on a map binding anywhere (covers
    // `.iter().map(..)` chains outside for-headers).
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.model.in_test(i) {
            continue;
        }
        let is_iter_method = MAP_ITER_METHODS.iter().any(|m| t.is_ident(m))
            && i > 0
            && ctx.toks.get(i - 1).is_some_and(|t| t.is_punct("."))
            && ctx.toks.get(i + 1).is_some_and(|t| t.is_punct("("));
        if !is_iter_method {
            continue;
        }
        let receiver_is_map = i
            .checked_sub(2)
            .and_then(|r| ctx.toks.get(r))
            .is_some_and(|r| map_names.iter().any(|n| r.is_ident(n)));
        if receiver_is_map {
            if let Some(tok) = ctx.toks.get(i) {
                if !flagged_lines.contains(&tok.line) {
                    flagged_lines.push(tok.line);
                    ctx.push(
                        out,
                        tok,
                        "D1",
                        format!(
                            "calling .{}() on a HashMap/HashSet in library code; unordered \
                             iteration breaks bit-parity — use a Vec/BTreeMap or sort first",
                            t.text
                        ),
                    );
                }
            }
        }
    }
}

/// D2: wall-clock reads in library code outside net/bench need an audited
/// justification (timeouts are fine; model-affecting decisions are not).
fn rule_d2_wall_clock(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library || ctx.scope.in_net || ctx.scope.in_bench {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("now") || !ctx.lib_at(i) {
            continue;
        }
        let chain = path_ending_at(ctx.toks, i);
        if chain_ends_with(&chain, &["Instant", "now"])
            || chain_ends_with(&chain, &["SystemTime", "now"])
        {
            ctx.push(
                out,
                t,
                "D2",
                "wall-clock read in library code; timeouts are fine but model-affecting \
                 control flow is not — audit the dataflow and justify with \
                 `// plos-lint: allow(D2): <why>`"
                    .to_string(),
            );
        }
    }
}

/// D3: float `+=` reductions inside loops, outside `crates/linalg`: route
/// them through the fixed-order `linalg::kernels` accumulators or justify.
fn rule_d3_float_fold(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library || ctx.scope.in_linalg {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_punct("+=") || !ctx.model.in_loop_body(i) || ctx.model.in_test(i) {
            continue;
        }
        // Plain-identifier LHS only: `acc += ..`, not `xs[i] += ..` or
        // `self.field += ..` (element updates are not reductions).
        let Some(lhs_idx) = i.checked_sub(1) else { continue };
        let Some(lhs) = ctx.toks.get(lhs_idx) else { continue };
        if lhs.kind != TokKind::Ident {
            continue;
        }
        let plain = lhs_idx
            .checked_sub(1)
            .and_then(|p| ctx.toks.get(p))
            .is_none_or(|p| !(p.is_punct(".") || p.is_punct("]") || p.is_punct("::")));
        if !plain {
            continue;
        }
        let float_bound = ctx.model.lets.iter().any(|l| {
            l.name == lhs.text
                && l.idx < i
                && (l.ty.contains("f64")
                    || l.ty.contains("f32")
                    || l.init.split(' ').next().is_some_and(|first| {
                        first.contains('.') && first.chars().next().is_some_and(char::is_numeric)
                    }))
        });
        if float_bound {
            ctx.push(
                out,
                lhs,
                "D3",
                format!(
                    "ad-hoc float reduction `{} +=` inside a loop; route the fold \
                     through the fixed-order linalg::kernels accumulators or justify \
                     the ordering with `// plos-lint: allow(D3): <why>`",
                    lhs.text
                ),
            );
        }
    }
}

/// C1 per-file pass: collect lock-acquisition order facts and flag
/// same-function reentrant acquisition outright.
fn rule_c1_collect_locks(ctx: &FileCtx, f: &mut FileFindings) {
    if !ctx.scope.is_library {
        return;
    }
    for item in &ctx.model.fns {
        let Some((body_start, body_end)) = item.body else { continue };
        if ctx.model.in_test(body_start) {
            continue;
        }
        // Acquisitions: (receiver, acquire idx, release idx).
        let mut held: Vec<(String, usize, usize)> = Vec::new();
        let mut i = body_start;
        while i < body_end {
            let Some(t) = ctx.toks.get(i) else { break };
            if t.is_ident("lock")
                && i > 0
                && ctx.toks.get(i - 1).is_some_and(|t| t.is_punct("."))
                && ctx.toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                let receiver = receiver_before(ctx.toks, i - 1, body_start);
                let guard_name = let_guard_name(ctx.toks, i, body_start);
                let release = match &guard_name {
                    Some(name) => find_drop(ctx.toks, i, body_end, name),
                    None => next_semi(ctx.toks, i, body_end),
                };
                // Overlap with anything still held: ordering fact (or a
                // reentrant acquisition if it is the same receiver).
                for (prev, _acq, rel) in &held {
                    if *rel > i {
                        if *prev == receiver {
                            ctx.push(
                                &mut f.violations,
                                t,
                                "C1",
                                format!(
                                    "re-acquiring `{receiver}.lock()` while its guard is \
                                     still live deadlocks parking_lot"
                                ),
                            );
                        } else {
                            f.lock_edges.push(LockEdge {
                                first: prev.clone(),
                                second: receiver.clone(),
                                path: ctx.rel.to_string(),
                                line: t.line,
                                col: t.col,
                            });
                        }
                    }
                }
                held.push((receiver, i, release));
            }
            i += 1;
        }
    }
}

/// Receiver text of a method call: walks back from the `.` over the path /
/// call chain (`self.slots`, `counter_registry()`, `a.b`).
fn receiver_before(toks: &[Tok], dot_idx: usize, floor: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot_idx;
    while i > floor {
        let Some(prev) = toks.get(i - 1) else { break };
        match prev.text.as_str() {
            ")" | "]" => {
                // Skip the balanced group; record it as `()` so
                // `counter_registry()` and `counter_registry(x)` coincide.
                let open = if prev.text == ")" { "(" } else { "[" };
                let mut depth = 0isize;
                let mut j = i - 1;
                while j > floor {
                    let Some(tj) = toks.get(j) else { break };
                    if tj.text == prev.text {
                        depth += 1;
                    } else if tj.text == open {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j -= 1;
                }
                parts.push("()".to_string());
                i = j;
            }
            "." | "::" => {
                parts.push(prev.text.clone());
                i -= 1;
            }
            _ if prev.kind == TokKind::Ident => {
                parts.push(prev.text.clone());
                i -= 1;
                // Stop unless the next-left token continues the chain.
                let cont = i
                    .checked_sub(1)
                    .and_then(|p| toks.get(p))
                    .is_some_and(|p| p.is_punct(".") || p.is_punct("::"));
                if !cont {
                    break;
                }
            }
            _ => break,
        }
    }
    parts.reverse();
    parts.concat()
}

/// When the `.lock()` at `lock_idx` is the RHS of `let g = ..`, the guard
/// name `g`; `None` for a temporary.
fn let_guard_name(toks: &[Tok], lock_idx: usize, floor: usize) -> Option<String> {
    // Walk back to the statement start and look for `let [mut] name =`.
    let mut i = lock_idx;
    while i > floor {
        let Some(prev) = toks.get(i - 1) else { break };
        if prev.kind == TokKind::Punct && matches!(prev.text.as_str(), ";" | "{" | "}") {
            break;
        }
        i -= 1;
    }
    if toks.get(i).is_some_and(|t| t.is_ident("let")) {
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let name = toks.get(j).filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
        if toks.get(j + 1).is_some_and(|t| t.is_punct("=") || t.is_punct(":")) {
            return name;
        }
    }
    None
}

/// Index of `drop(name)` after `from` (guard release), or `to` when the
/// guard lives to the end of the function.
fn find_drop(toks: &[Tok], from: usize, to: usize, name: &str) -> usize {
    let mut i = from;
    while i < to {
        if toks.get(i).is_some_and(|t| t.is_ident("drop"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            && toks.get(i + 2).is_some_and(|t| t.is_ident(name))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
        {
            return i;
        }
        i += 1;
    }
    to
}

/// Next `;` after `from` (end of a temporary guard's statement).
fn next_semi(toks: &[Tok], from: usize, to: usize) -> usize {
    let mut i = from;
    while i < to {
        if toks.get(i).is_some_and(|t| t.is_punct(";")) {
            return i;
        }
        i += 1;
    }
    to
}

/// Integer types an `as` cast may silently truncate into.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// C2: `as` casts to sub-64-bit integer types in library code: convert to
/// `try_into` with a typed error or justify the range argument.
fn rule_c2_narrowing_cast(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_ident("as") || !ctx.lib_at(i) {
            continue;
        }
        let Some(target) = ctx.toks.get(i + 1) else { continue };
        if !NARROW_TARGETS.iter().any(|n| target.is_ident(n)) {
            continue;
        }
        // A literal source is compile-time checkable; skip it.
        if ctx.toks.get(i.wrapping_sub(1)).is_some_and(|t| t.kind == TokKind::Int) {
            continue;
        }
        ctx.push(
            out,
            t,
            "C2",
            format!(
                "narrowing `as {}` cast in library code; use try_into with a typed \
                 error or justify the range with `// plos-lint: allow(C2): <why>`",
                target.text
            ),
        );
    }
}

/// Identifier fragments that mark an unbounded counter or byte total.
const COUNTER_FRAGMENTS: &[&str] =
    &["bytes", "total", "errors", "discards", "failures", "evictions", "hits", "misses"];

/// C3: counters and byte totals accumulate with `saturating_*`/`checked_*`,
/// never bare `+=` (multi-day runs must clamp, not wrap or panic).
fn rule_c3_counter_arith(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !ctx.scope.is_library {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if !t.is_punct("+=") || ctx.model.in_test(i) {
            continue;
        }
        let Some(lhs) = i.checked_sub(1).and_then(|p| ctx.toks.get(p)) else { continue };
        if lhs.kind != TokKind::Ident {
            continue;
        }
        let lower = lhs.text.to_lowercase();
        if COUNTER_FRAGMENTS.iter().any(|f| lower.contains(f)) {
            ctx.push(
                out,
                lhs,
                "C3",
                format!(
                    "counter `{}` accumulates with bare `+=`; use saturating_add/\
                     checked_add so long runs clamp instead of wrapping",
                    lhs.text
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::syntax::build;

    fn run(rel: &str, src: &str) -> Vec<Violation> {
        let lexed = lex(src);
        let model = build(&lexed.toks);
        let ctx = FileCtx {
            rel,
            toks: &lexed.toks,
            comments: &lexed.comments,
            model: &model,
            scope: crate::scope_of(rel),
        };
        check_file(&ctx).violations
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn r1_fires_on_path_and_use_not_on_strings() {
        let fire = run("crates/core/src/a.rs", "use std::sync::Mutex;\nfn f() {}");
        assert_eq!(rules(&fire), vec!["R1"]);
        let clean = run(
            "crates/core/src/a.rs",
            "use parking_lot::Mutex;\nfn f() { let m = Mutex::new(0); }",
        );
        assert!(rules(&clean).is_empty(), "{clean:?}");
        let in_string = run("crates/core/src/a.rs", "fn f() { let s = \"std::sync::Mutex\"; }");
        assert!(rules(&in_string).is_empty());
    }

    #[test]
    fn d2_exempts_net_and_tests() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        assert_eq!(rules(&run("crates/core/src/a.rs", src)), vec!["D2"]);
        assert!(rules(&run("crates/net/src/a.rs", src)).is_empty());
        let test_only = "#[cfg(test)]\nmod tests { use std::time::Instant;\nfn f() { let t = Instant::now(); } }";
        assert!(rules(&run("crates/core/src/a.rs", test_only)).is_empty());
    }

    #[test]
    fn c2_skips_literals_and_tests() {
        assert_eq!(
            rules(&run("crates/core/src/a.rs", "fn f(n: usize) -> u32 { n as u32 }")),
            vec!["C2"]
        );
        assert!(rules(&run("crates/core/src/a.rs", "fn f() -> u32 { 7 as u32 }")).is_empty());
        assert!(rules(&run("tests/a.rs", "fn f(n: usize) -> u32 { n as u32 }")).is_empty());
    }

    #[test]
    fn d3_needs_float_binding_in_loop() {
        let fire = "fn f(xs: &[f64]) -> f64 { let mut acc = 0.0; for x in xs { acc += x; } acc }";
        assert_eq!(rules(&run("crates/opt/src/a.rs", fire)), vec!["D3"]);
        let int = "fn f(xs: &[u64]) -> u64 { let mut n = 0; for _x in xs { n += 1; } n }";
        assert!(rules(&run("crates/opt/src/a.rs", int)).is_empty());
        let linalg = run("crates/linalg/src/kernels.rs", fire);
        assert!(rules(&linalg).is_empty(), "linalg hosts the accumulators");
    }

    #[test]
    fn c1_reentrant_lock_fires() {
        let src = "fn f(m: &Mutex<u32>) { let a = m.lock(); let b = m.lock(); }";
        let v = run("crates/core/src/a.rs", src);
        assert_eq!(rules(&v), vec!["C1"]);
    }

    #[test]
    fn c1_edges_collected_for_cross_file_pass() {
        let src = "fn f() { let a = x.lock(); let b = y.lock(); }";
        let lexed = lex(src);
        let model = build(&lexed.toks);
        let ctx = FileCtx {
            rel: "crates/core/src/a.rs",
            toks: &lexed.toks,
            comments: &lexed.comments,
            model: &model,
            scope: crate::scope_of("crates/core/src/a.rs"),
        };
        let f = check_file(&ctx);
        assert_eq!(f.lock_edges.len(), 1);
        assert!(f.lock_edges.first().is_some_and(|e| e.first == "x" && e.second == "y"));
    }
}
