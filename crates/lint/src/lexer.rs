//! Hand-rolled Rust lexer.
//!
//! Produces the significant token stream plus a separate comment list, each
//! carrying a line/column span. Unlike the old regex linter, everything
//! downstream sees *tokens*: string literals, char literals and comments can
//! never be mistaken for code, so a rule message that mentions `println!`
//! does not trip the rule it documents.
//!
//! The lexer is deliberately forgiving — it never fails. Unknown bytes
//! become single-character punctuation tokens, and an unterminated literal
//! runs to end of file. A linter must degrade to "no findings on garbage",
//! not abort the gate.

/// What a significant token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (keywords are not distinguished here).
    Ident,
    /// Lifetime such as `'a` (the quote is kept in the text).
    Lifetime,
    /// Integer literal, including suffixed forms (`42u32`, `0xff`).
    Int,
    /// Float literal, including suffixed forms (`1.0f64`, `2e-3`).
    Float,
    /// String, raw-string, byte-string or char literal.
    Literal,
    /// Punctuation; multi-character operators are fused (see `OPERATORS`).
    Punct,
}

/// One significant token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Verbatim source text (for `Literal` the quotes are included).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
    /// 1-based source column of the token's first character.
    pub col: usize,
}

impl Tok {
    /// True when the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True when the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokKind::Punct && self.text == text
    }
}

/// One comment, line (`//`, `///`, `//!`) or block (`/* .. */`).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text including its delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// 1-based line the comment ends on (differs for block comments).
    pub end_line: usize,
}

/// Lexer output: significant tokens plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators fused into one `Punct` token, longest first.
/// `>>`/`<<` are intentionally absent so closing generic brackets stay
/// individual `>` tokens.
const OPERATORS: &[&str] = &[
    "..=", "::", "->", "=>", "+=", "-=", "*=", "/=", "%=", "^=", "&&", "||", "==", "!=", "<=",
    ">=", "..",
];

/// Character-cursor over the source with line/column tracking.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(text: &str) -> Self {
        Cursor { chars: text.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// Consumes characters while `keep` holds, returning the consumed text.
    fn take_while(&mut self, keep: impl Fn(char) -> bool) -> String {
        let mut out = String::new();
        while let Some(c) = self.peek(0) {
            if !keep(c) {
                break;
            }
            out.push(c);
            self.bump();
        }
        out
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `text` into tokens and comments. Never fails; see module docs.
pub fn lex(text: &str) -> Lexed {
    let mut cur = Cursor::new(text);
    let mut out = Lexed::default();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let body = cur.take_while(|ch| ch != '\n');
            out.comments.push(Comment { text: body, line, end_line: line });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let comment = lex_block_comment(&mut cur);
            out.comments.push(Comment { text: comment, line, end_line: cur.line });
            continue;
        }
        // Raw strings and raw identifiers: r"..", r#".."#, r#ident, br#"..".
        if (c == 'r' || c == 'b') && starts_raw_or_byte(&cur) {
            let (kind, tok_text) = lex_r_or_b(&mut cur);
            out.toks.push(Tok { kind, text: tok_text, line, col });
            continue;
        }
        // Plain strings.
        if c == '"' {
            let s = lex_string(&mut cur);
            out.toks.push(Tok { kind: TokKind::Literal, text: s, line, col });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let (kind, s) = lex_quote(&mut cur);
            out.toks.push(Tok { kind, text: s, line, col });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let (kind, s) = lex_number(&mut cur);
            out.toks.push(Tok { kind, text: s, line, col });
            continue;
        }
        // Identifiers / keywords.
        if is_ident_start(c) {
            let s = cur.take_while(is_ident_continue);
            out.toks.push(Tok { kind: TokKind::Ident, text: s, line, col });
            continue;
        }
        // Fused multi-character operators, longest first.
        if let Some(op) = OPERATORS.iter().find(|op| matches_at(&cur, op)) {
            for _ in 0..op.len() {
                cur.bump();
            }
            out.toks.push(Tok { kind: TokKind::Punct, text: (*op).to_string(), line, col });
            continue;
        }
        // Anything else: one punctuation character.
        cur.bump();
        out.toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, col });
    }
    out
}

fn matches_at(cur: &Cursor, op: &str) -> bool {
    op.chars().enumerate().all(|(i, expected)| cur.peek(i) == Some(expected))
}

/// True when the cursor sits on a raw string / raw ident / byte literal
/// introducer rather than a plain identifier starting with `r` or `b`.
fn starts_raw_or_byte(cur: &Cursor) -> bool {
    match cur.peek(0) {
        Some('r') => matches!(cur.peek(1), Some('"' | '#')),
        Some('b') => match cur.peek(1) {
            Some('"' | '\'') => true,
            Some('r') => matches!(cur.peek(2), Some('"' | '#')),
            _ => false,
        },
        _ => false,
    }
}

/// Lexes the `r`/`b`-introduced forms: raw strings, raw identifiers, byte
/// strings and byte chars.
fn lex_r_or_b(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    if cur.peek(0) == Some('b') {
        text.push('b');
        cur.bump();
        match cur.peek(0) {
            Some('"') => {
                text.push_str(&lex_string(cur));
                return (TokKind::Literal, text);
            }
            Some('\'') => {
                let (_, s) = lex_quote(cur);
                text.push_str(&s);
                return (TokKind::Literal, text);
            }
            _ => {}
        }
    }
    if cur.peek(0) == Some('r') {
        text.push('r');
        cur.bump();
        // Raw identifier r#ident (no quote after the hashes).
        if cur.peek(0) == Some('#') && cur.peek(1).is_some_and(is_ident_start) {
            cur.bump();
            let ident = cur.take_while(is_ident_continue);
            return (TokKind::Ident, ident);
        }
        let mut hashes = 0usize;
        while cur.peek(0) == Some('#') {
            text.push('#');
            cur.bump();
            hashes += 1;
        }
        if cur.peek(0) == Some('"') {
            text.push('"');
            cur.bump();
            // Consume until `"` followed by `hashes` hash marks.
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '"' && (0..hashes).all(|i| cur.peek(i) == Some('#')) {
                    for _ in 0..hashes {
                        text.push('#');
                        cur.bump();
                    }
                    break;
                }
            }
            return (TokKind::Literal, text);
        }
    }
    // `r` or `b` that turned out to start a plain identifier after all.
    let rest = cur.take_while(is_ident_continue);
    text.push_str(&rest);
    (TokKind::Ident, text)
}

/// Lexes a `"`-delimited string with escapes; cursor sits on the quote.
fn lex_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    while let Some(c) = cur.bump() {
        text.push(c);
        match c {
            '\\' => {
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                }
            }
            '"' => break,
            _ => {}
        }
    }
    text
}

/// Disambiguates `'a'` (char literal) from `'a` (lifetime); cursor sits on
/// the opening quote.
fn lex_quote(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    if let Some(q) = cur.bump() {
        text.push(q);
    }
    match cur.peek(0) {
        // Escape: definitely a char literal.
        Some('\\') => {
            if let Some(backslash) = cur.bump() {
                text.push(backslash);
            }
            if let Some(escaped) = cur.bump() {
                text.push(escaped);
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            (TokKind::Literal, text)
        }
        Some(c) if is_ident_start(c) => {
            let ident = cur.take_while(is_ident_continue);
            text.push_str(&ident);
            if cur.peek(0) == Some('\'') && ident.chars().count() == 1 {
                // 'x' — a char literal after all.
                text.push('\'');
                cur.bump();
                (TokKind::Literal, text)
            } else {
                (TokKind::Lifetime, text)
            }
        }
        // Any other single char: 'x' with x non-ident (e.g. '+', ' ').
        Some(_) => {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            if cur.peek(0) == Some('\'') {
                text.push('\'');
                cur.bump();
            }
            (TokKind::Literal, text)
        }
        None => (TokKind::Literal, text),
    }
}

/// Lexes a numeric literal; cursor sits on the first digit.
fn lex_number(cur: &mut Cursor) -> (TokKind, String) {
    let mut text = String::new();
    let mut float = false;
    // Hex/octal/binary prefixes never contain `.`.
    if cur.peek(0) == Some('0') && matches!(cur.peek(1), Some('x' | 'o' | 'b')) {
        text.push_str(&cur.take_while(|c| c.is_alphanumeric() || c == '_'));
        return (TokKind::Int, text);
    }
    text.push_str(&cur.take_while(|c| c.is_ascii_digit() || c == '_'));
    // Fractional part: a `.` followed by a digit (so `1.max(2)` and `0..n`
    // stay integer + punctuation).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        text.push('.');
        cur.bump();
        text.push_str(&cur.take_while(|c| c.is_ascii_digit() || c == '_'));
    }
    // A trailing `1.` form (digit, dot, not a digit/ident/dot after): float.
    if !float
        && cur.peek(0) == Some('.')
        && !cur.peek(1).is_some_and(|c| is_ident_start(c) || c == '.')
    {
        float = true;
        text.push('.');
        cur.bump();
    }
    // Exponent.
    if matches!(cur.peek(0), Some('e' | 'E'))
        && (cur.peek(1).is_some_and(|c| c.is_ascii_digit())
            || (matches!(cur.peek(1), Some('+' | '-'))
                && cur.peek(2).is_some_and(|c| c.is_ascii_digit())))
    {
        float = true;
        text.push_str(&cur.take_while(|c| {
            c.is_ascii_digit() || c == 'e' || c == 'E' || c == '+' || c == '-' || c == '_'
        }));
    }
    // Type suffix (u32, f64, usize, ...).
    let suffix = cur.take_while(is_ident_continue);
    if suffix.starts_with('f') {
        float = true;
    }
    text.push_str(&suffix);
    (if float { TokKind::Float } else { TokKind::Int }, text)
}

/// Lexes a (possibly nested) block comment; cursor sits on the `/`.
fn lex_block_comment(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut depth = 0usize;
    // Consume "/*".
    for _ in 0..2 {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    depth += 1;
    while depth > 0 {
        match cur.bump() {
            Some('/') if cur.peek(0) == Some('*') => {
                text.push('/');
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
                depth += 1;
            }
            Some('*') if cur.peek(0) == Some('/') => {
                text.push('*');
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
                depth -= 1;
            }
            Some(c) => text.push(c),
            None => break,
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let lexed = lex("let x = \"println!(HashMap)\"; // Instant::now\n/* fs::write */ y");
        let idents: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "y"]);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("<'a> 'x' '\\n' 'static");
        assert!(toks.contains(&(TokKind::Lifetime, "'a".to_string())));
        assert!(toks.contains(&(TokKind::Literal, "'x'".to_string())));
        assert!(toks.contains(&(TokKind::Literal, "'\\n'".to_string())));
        assert!(toks.contains(&(TokKind::Lifetime, "'static".to_string())));
    }

    #[test]
    fn raw_strings_swallow_quotes() {
        let lexed = lex("r#\"a \" b\"# end");
        assert_eq!(lexed.toks.len(), 2);
        assert!(lexed.toks.first().is_some_and(|t| t.kind == TokKind::Literal));
        assert!(lexed.toks.get(1).is_some_and(|t| t.is_ident("end")));
    }

    #[test]
    fn numbers_classified() {
        assert_eq!(
            kinds("1 1.5 0xff 2e-3 1f64 3usize"),
            vec![
                (TokKind::Int, "1".into()),
                (TokKind::Float, "1.5".into()),
                (TokKind::Int, "0xff".into()),
                (TokKind::Float, "2e-3".into()),
                (TokKind::Float, "1f64".into()),
                (TokKind::Int, "3usize".into()),
            ]
        );
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("0..n 1..=2");
        assert!(toks.contains(&(TokKind::Punct, "..".into())));
        assert!(toks.contains(&(TokKind::Punct, "..=".into())));
        assert!(toks.contains(&(TokKind::Int, "0".into())));
    }

    #[test]
    fn operators_fused() {
        let toks = kinds("a += b::c -> d => e");
        assert!(toks.contains(&(TokKind::Punct, "+=".into())));
        assert!(toks.contains(&(TokKind::Punct, "::".into())));
        assert!(toks.contains(&(TokKind::Punct, "->".into())));
        assert!(toks.contains(&(TokKind::Punct, "=>".into())));
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner */ still */ x");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.toks.len(), 1);
    }

    #[test]
    fn generic_closers_stay_single() {
        let toks = kinds("Vec<Vec<u8>>");
        let gt: usize = toks.iter().filter(|(k, t)| *k == TokKind::Punct && t == ">").count();
        assert_eq!(gt, 2);
    }

    #[test]
    fn line_and_col_tracking() {
        let lexed = lex("a\n  b");
        let b = lexed.toks.get(1).cloned();
        assert!(b.is_some_and(|t| t.line == 2 && t.col == 3));
    }
}
