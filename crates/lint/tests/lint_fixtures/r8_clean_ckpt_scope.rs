//@path crates/ckpt/src/fx.rs
fn save(p: &str, b: &[u8]) {
    let _ = std::fs::write(p, b);
}
