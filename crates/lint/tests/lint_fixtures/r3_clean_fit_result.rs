//@path crates/core/src/fx.rs
pub fn fit_linear(x: f64) -> Result<f64, String> {
    Ok(x)
}
