//@path crates/core/src/fx.rs
#[cfg(test)]
mod tests {
    fn f() {
        println!("debug {}", 1);
    }
}
