//@path crates/core/src/fx.rs
pub fn fit_linear(x: f64) -> f64 {
    x
}
