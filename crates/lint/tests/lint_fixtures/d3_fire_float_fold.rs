//@path crates/opt/src/fx.rs
fn f(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x;
    }
    acc
}
