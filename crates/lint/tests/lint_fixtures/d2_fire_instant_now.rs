//@path crates/core/src/fx.rs
use std::time::Instant;
fn f() {
    let _t = Instant::now();
}
