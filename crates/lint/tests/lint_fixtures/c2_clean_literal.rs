//@path crates/core/src/fx.rs
fn f() -> u32 {
    7 as u32
}
fn g(n: u32) -> u64 {
    u64::from(n)
}
