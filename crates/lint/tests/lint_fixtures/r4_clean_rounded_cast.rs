//@path crates/sensing/src/fx.rs
fn f(x: f64) -> usize {
    (x * 2.0).round() as usize
}
