//@path crates/core/src/fx.rs
fn a() {}
#[allow(dead_code)]
fn f() {}
