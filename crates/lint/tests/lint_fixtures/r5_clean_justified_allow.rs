//@path crates/core/src/fx.rs
fn a() {}
// held for the follow-up change that wires this entry point in
#[allow(dead_code)]
fn f() {}
