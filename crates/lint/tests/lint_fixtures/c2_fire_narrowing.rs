//@path crates/core/src/fx.rs
fn f(n: usize) -> u32 {
    n as u32
}
