//@path crates/core/src/fx.rs
use plos_net::Endpoint;
fn f(e: &Endpoint) {
    let _m = e.recv();
}
