//@path crates/core/src/fx.rs
fn f(n: usize) -> u32 {
    // plos-lint: allow(C2): n is a device index bounded by the u32 roster
    n as u32
}
