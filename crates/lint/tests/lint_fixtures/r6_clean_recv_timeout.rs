//@path crates/core/src/fx.rs
use plos_net::Endpoint;
use std::time::Duration;
fn f(e: &Endpoint) {
    let _m = e.recv_timeout(Duration::from_millis(5));
}
