//@path crates/core/src/fx.rs
struct Stats {
    total_bytes: u64,
}
fn f(s: &mut Stats, n: u64) {
    s.total_bytes = s.total_bytes.saturating_add(n);
}
