//@path crates/exec/src/fx.rs
fn f() {
    std::thread::spawn(|| ());
}
