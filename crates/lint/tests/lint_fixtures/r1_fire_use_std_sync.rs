//@path crates/core/src/fx.rs
use std::sync::Mutex;
fn f() {}
