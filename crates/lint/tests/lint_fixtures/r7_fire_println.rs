//@path crates/core/src/fx.rs
fn f() {
    println!("debug {}", 1);
}
