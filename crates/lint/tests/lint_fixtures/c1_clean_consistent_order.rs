//@path crates/core/src/fx.rs
fn f(x: &parking_lot::Mutex<u64>, y: &parking_lot::Mutex<u64>) {
    let a = x.lock();
    let b = y.lock();
    drop(b);
    drop(a);
}
fn g(x: &parking_lot::Mutex<u64>, y: &parking_lot::Mutex<u64>) {
    let a = x.lock();
    let b = y.lock();
    drop(b);
    drop(a);
}
