//@path crates/core/src/fx.rs
use std::time::Instant;
fn f() {
    let _t = Instant::now(); // plos-lint: allow(D2): arming a retry timeout only
}
