//@path crates/core/src/fx.rs
use std::collections::HashMap;
fn f() -> u64 {
    let m: HashMap<u64, u64> = HashMap::new();
    let mut s = 0;
    for (_k, v) in m.iter() { s += *v; }
    s
}
