//@path crates/core/src/fx.rs
// plos-lint: allow(C2)
fn f() {}
