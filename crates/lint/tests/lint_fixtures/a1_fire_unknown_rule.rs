//@path crates/core/src/fx.rs
// plos-lint: allow(Z9): this rule id does not exist
fn f() {}
