//@path crates/core/src/fx.rs
use parking_lot::Mutex;
fn f() {
    let _m = Mutex::new(0u64);
}
