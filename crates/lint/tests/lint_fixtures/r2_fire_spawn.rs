//@path crates/core/src/fx.rs
fn f() {
    std::thread::spawn(|| ());
}
