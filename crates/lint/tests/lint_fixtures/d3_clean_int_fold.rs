//@path crates/opt/src/fx.rs
fn f(xs: &[u64]) -> u64 {
    let mut n = 0;
    for _x in xs {
        n += 1;
    }
    n
}
