//@path crates/core/src/fx.rs
use std::collections::BTreeMap;
fn f() -> u64 {
    let m: BTreeMap<u64, u64> = BTreeMap::new();
    let mut s = 0;
    for (_k, v) in m.iter() { s += *v; }
    s
}
