//@path crates/core/src/fx.rs
fn f(m: &parking_lot::Mutex<u64>) {
    let a = m.lock();
    let b = m.lock();
    drop(b);
    drop(a);
}
