//! Fixture corpus driver: every `.rs` file under `tests/lint_fixtures/`
//! encodes its expectation in its name.
//!
//! * `<rule>_fire_<desc>.rs` — linting the file must produce **exactly one**
//!   violation, carrying that rule's ID.
//! * `<rule>_clean_<desc>.rs` — linting the file must produce **zero**
//!   violations.
//!
//! The first line of every fixture is a `//@path <pretend path>` header:
//! the file is linted *as if* it lived at that workspace-relative path, so
//! fixtures can exercise path-derived scopes (library vs test vs the
//! net/exec/sensing/ckpt carve-outs) without living there. The corpus
//! directory itself is skipped by `first_party_rust_files`, so these
//! intentionally-violating files never reach the workspace gate.

// Tests assert by panicking; the panic-free gate applies to library code
// only (see [workspace.lints] in the root Cargo.toml).
#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("lint_fixtures")
}

/// `(file stem, expected rule ID, expects a firing, source text)` for every
/// fixture, sorted by file name.
fn corpus() -> Vec<(String, String, bool, String)> {
    let mut out = Vec::new();
    for entry in fs::read_dir(fixtures_dir()).expect("fixture corpus directory") {
        let path = entry.expect("read fixture entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let mut parts = stem.splitn(3, '_');
        let rule = parts.next().expect("rule segment").to_uppercase();
        let kind = parts.next().unwrap_or("");
        let fire = match kind {
            "fire" => true,
            "clean" => false,
            other => panic!("{stem}: second segment must be fire/clean, got `{other}`"),
        };
        let src = fs::read_to_string(&path).expect("read fixture");
        out.push((stem, rule, fire, src));
    }
    out.sort();
    assert!(!out.is_empty(), "fixture corpus is empty");
    out
}

/// The `//@path` header of a fixture.
fn pretend_path(stem: &str, src: &str) -> String {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("//@path "))
        .map(|p| p.trim().to_string())
        .unwrap_or_else(|| panic!("{stem}: first line must be `//@path <pretend path>`"))
}

#[test]
fn every_fixture_meets_its_expectation() {
    let mut failures = Vec::new();
    for (stem, rule, fire, src) in corpus() {
        let rel = pretend_path(&stem, &src);
        let violations = plos_lint::lint_file(&rel, &src);
        if fire {
            if violations.len() != 1 {
                failures.push(format!(
                    "{stem}: expected exactly one {rule} violation, got {}: {violations:?}",
                    violations.len()
                ));
            } else if violations[0].rule != rule {
                failures.push(format!(
                    "{stem}: expected {rule}, got {} ({})",
                    violations[0].rule, violations[0].message
                ));
            }
        } else if !violations.is_empty() {
            failures.push(format!("{stem}: expected clean, got {violations:?}"));
        }
    }
    assert!(failures.is_empty(), "fixture mismatches:\n{}", failures.join("\n"));
}

#[test]
fn corpus_covers_every_rule_with_fire_and_clean() {
    let corpus = corpus();
    for info in plos_lint::RULES {
        let fire = corpus.iter().any(|(_, r, f, _)| r == info.id && *f);
        let clean = corpus.iter().any(|(_, r, f, _)| r == info.id && !*f);
        assert!(fire, "rule {} ({}) has no firing fixture", info.id, info.name);
        assert!(clean, "rule {} ({}) has no clean fixture", info.id, info.name);
    }
}

#[test]
fn fire_fixtures_report_spans_and_names() {
    for (stem, _rule, fire, src) in corpus() {
        if !fire {
            continue;
        }
        let rel = pretend_path(&stem, &src);
        for v in plos_lint::lint_file(&rel, &src) {
            assert!(v.line >= 1 && v.col >= 1, "{stem}: zeroed span {v:?}");
            assert_eq!(v.path, rel, "{stem}: violation path must be the pretend path");
            assert_ne!(v.name, "unknown", "{stem}: rule {} missing from catalogue", v.rule);
            assert!(!v.message.is_empty(), "{stem}: empty message");
        }
    }
}
