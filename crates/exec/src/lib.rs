// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Deterministic fork-join execution runtime for the PLOS solvers.
//!
//! The paper's hot loops are embarrassingly parallel *given the current
//! iterate*: per-user most-violated-constraint selection (Eq. 12–15),
//! per-user dual groups (Eq. 16–18), per-user baseline fits, and the
//! Gram-row dot products of the working-set duals. This crate provides the
//! single sanctioned way to exploit that structure (enforced by the xtask
//! linter: `thread::scope`/`thread::spawn` are banned everywhere else except
//! the simulated device network in `crates/net`).
//!
//! # Determinism guarantee
//!
//! Every combinator maps items **independently** and returns results in
//! **submission order**. Each item is processed by exactly one worker with
//! exactly the same closure regardless of the pool size, so training output
//! is bit-identical across pool sizes — the 1-thread path and the N-thread
//! path produce the same floats. The only requirement on the caller is that
//! the closure is a pure function of `(index, item)`, which the solver hot
//! paths satisfy by construction (they never reduce across items inside the
//! pool; reductions happen sequentially on the caller's thread).
//!
//! # Sizing
//!
//! [`Pool::current`] sizes the pool from, in priority order:
//!
//! 1. a thread-local override installed by [`with_threads`] (used by the
//!    parity test suite to compare pool sizes in one process),
//! 2. the `PLOS_THREADS` environment variable (read once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! # Errors
//!
//! [`Pool::par_map_indexed`] is `Result`-based: a worker closure returning
//! `Err` surfaces as the combinator's `Err`, and when several items fail the
//! error of the **smallest index** wins — again independent of the pool
//! size. Worker panics are treated as programming errors and resume on the
//! caller's thread, exactly like `std::thread::scope`.

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Thread-local pool-size override installed by [`with_threads`].
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Cached `PLOS_THREADS` parse (one env read per process).
fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("PLOS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .map(|n| n.max(1))
    })
}

/// Hardware parallelism, defaulting to 1 when the runtime cannot tell.
fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Runs `f` with the calling thread's pool size pinned to `threads`: every
/// [`Pool::current`] call made from this thread inside `f` sees that size.
///
/// The override is restored on exit (including unwinds) and does not leak to
/// other threads — in particular, worker threads spawned by the pool and the
/// device threads of `plos-net` are unaffected.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|c| c.replace(Some(threads.max(1))));
    let _restore = Restore(prev);
    f()
}

/// A deterministic fork-join pool of scoped worker threads.
///
/// The pool holds no long-lived threads: each combinator call opens a
/// `std::thread::scope`, splits the items into contiguous chunks (one per
/// worker), and joins in submission order. A pool of size 1 runs inline on
/// the calling thread with zero spawn overhead, which is also the reference
/// path the parity suite compares larger pools against.
///
/// ```
/// use plos_exec::Pool;
/// let squares = Pool::sized(4).par_map(&[1, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn sized(threads: usize) -> Self {
        Pool { threads: threads.max(1) }
    }

    /// The single-threaded pool: runs everything inline.
    pub fn sequential() -> Self {
        Pool { threads: 1 }
    }

    /// The ambient pool: [`with_threads`] override, else `PLOS_THREADS`,
    /// else hardware parallelism.
    pub fn current() -> Self {
        let threads =
            THREAD_OVERRIDE.with(Cell::get).or_else(env_threads).unwrap_or_else(hardware_threads);
        Pool::sized(threads)
    }

    /// Number of workers this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Core chunked executor: splits `items` into at most `threads`
    /// contiguous chunks of at least `min_chunk` items, runs
    /// `f(chunk_offset, chunk)` per chunk (in parallel when more than one
    /// chunk), and concatenates the chunk outputs in submission order.
    fn run_chunked<T, R, F>(&self, items: &[T], min_chunk: usize, f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let min_chunk = min_chunk.max(1);
        let workers = self.threads.min(n.div_ceil(min_chunk)).max(1);
        if workers <= 1 {
            return f(0, items);
        }
        let chunk_len = n.div_ceil(workers);
        let mut out = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .enumerate()
                .map(|(ci, chunk)| scope.spawn(move || f(ci * chunk_len, chunk)))
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok(part) => out.extend(part),
                    // A worker panic is a bug in the mapped closure; re-raise
                    // it on the caller as std::thread::scope would.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        out
    }

    /// Fallible indexed parallel map, results in submission order.
    ///
    /// Each item is mapped by `f(index, item)`; the returned vector is
    /// ordered by index regardless of which worker produced which entry.
    /// When one or more closures return `Err`, the error with the smallest
    /// index is returned — deterministically, independent of pool size.
    ///
    /// # Errors
    ///
    /// Returns the first (lowest-index) `Err` produced by `f`.
    pub fn par_map_indexed<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, E>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &T) -> Result<R, E> + Sync,
    {
        let parts = self.run_chunked(items, 1, &|base, chunk: &[T]| {
            chunk.iter().enumerate().map(|(j, item)| f(base + j, item)).collect::<Vec<_>>()
        });
        // Sequential scan in index order: deterministic first-error-wins.
        parts.into_iter().collect()
    }

    /// Infallible indexed parallel map, results in submission order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        match self.par_map_indexed(items, |i, item| Ok::<R, std::convert::Infallible>(f(i, item))) {
            Ok(out) => out,
            Err(never) => match never {},
        }
    }

    /// Parallel map over contiguous chunks of at least `min_chunk` items:
    /// `f(offset, chunk)` returns the mapped values for `chunk` (which
    /// starts at `items[offset]`), and the chunk outputs are concatenated in
    /// order.
    ///
    /// Use this instead of [`Pool::par_map`] when per-item work is tiny
    /// (e.g. one dot product) so each worker streams through a cache-friendly
    /// block. For bit-identical results across pool sizes the closure must
    /// map each chunk element independently of its neighbors — chunk
    /// boundaries move with the pool size.
    pub fn par_chunks<T, R, F>(&self, items: &[T], min_chunk: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> Vec<R> + Sync,
    {
        self.run_chunked(items, min_chunk, &f)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_across_pool_sizes() {
        let items: Vec<usize> = (0..103).collect();
        let expected: Vec<usize> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            let got = Pool::sized(threads).par_map(&items, |_, &x| x * 3 + 1);
            assert_eq!(got, expected, "pool size {threads}");
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = Pool::sized(2).par_map(&items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn first_error_by_index_wins() {
        let items: Vec<usize> = (0..50).collect();
        for threads in [1, 2, 8] {
            let res: Result<Vec<usize>, usize> = Pool::sized(threads)
                .par_map_indexed(&items, |i, &x| if x % 7 == 3 { Err(i) } else { Ok(x) });
            assert_eq!(res, Err(3), "pool size {threads}");
        }
    }

    #[test]
    fn ok_path_collects_everything() {
        let items: Vec<i64> = (0..20).collect();
        let res: Result<Vec<i64>, ()> = Pool::sized(4).par_map_indexed(&items, |_, &x| Ok(-x));
        assert_eq!(res.unwrap(), (0..20).map(|x| -x).collect::<Vec<i64>>());
    }

    #[test]
    fn par_chunks_concatenates_in_order() {
        let items: Vec<f64> = (0..37).map(|i| i as f64).collect();
        for threads in [1, 2, 5] {
            let got = Pool::sized(threads).par_chunks(&items, 4, |offset, chunk| {
                chunk.iter().enumerate().map(|(j, &x)| (offset + j) as f64 * x).collect()
            });
            let expected: Vec<f64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, expected, "pool size {threads}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: Vec<u8> = Vec::new();
        assert!(Pool::sized(8).par_map(&empty, |_, &x| x).is_empty());
        assert!(Pool::sized(8).par_chunks(&empty, 16, |_, c| c.to_vec()).is_empty());
    }

    #[test]
    fn sized_clamps_to_one() {
        assert_eq!(Pool::sized(0).threads(), 1);
        assert_eq!(Pool::sequential().threads(), 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let outer = Pool::current().threads();
        with_threads(3, || {
            assert_eq!(Pool::current().threads(), 3);
            with_threads(5, || assert_eq!(Pool::current().threads(), 5));
            assert_eq!(Pool::current().threads(), 3);
        });
        assert_eq!(Pool::current().threads(), outer);
    }

    #[test]
    fn with_threads_restores_after_panic() {
        let outer = Pool::current().threads();
        let result = std::panic::catch_unwind(|| {
            with_threads(7, || panic!("boom"));
        });
        assert!(result.is_err());
        assert_eq!(Pool::current().threads(), outer);
    }

    #[test]
    fn override_does_not_leak_to_workers() {
        // Workers spawned by the pool read their own thread-local (unset),
        // but the mapped closure must not rely on Pool::current() anyway;
        // this documents that nesting via current() inside workers falls
        // back to env/hardware sizing rather than the caller's override.
        with_threads(2, || {
            let sizes = Pool::current().par_map(&[(); 4], |_, ()| Pool::current().threads());
            // Caller's chunk (if any) sees 2; a worker thread sees the
            // ambient default. Either way every entry is at least 1.
            assert!(sizes.iter().all(|&s| s >= 1));
        });
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let _ = Pool::sized(2).par_map(&[1, 2, 3, 4], |_, &x| {
                assert!(x < 3, "x too big");
                x
            });
        });
        assert!(result.is_err());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Ordering: par_map_indexed returns exactly the sequential map
            /// for every pool size.
            #[test]
            fn ordering_matches_sequential(
                items in prop::collection::vec(-1000i64..1000, 0..200),
                threads in 1usize..16,
            ) {
                let seq: Vec<i64> =
                    items.iter().enumerate().map(|(i, &x)| x.wrapping_mul(i as i64 + 1)).collect();
                let par = Pool::sized(threads)
                    .par_map(&items, |i, &x| x.wrapping_mul(i as i64 + 1));
                prop_assert_eq!(par, seq);
            }

            /// Errors: a failing worker surfaces as Err (never a panic), and
            /// the lowest failing index wins regardless of pool size.
            #[test]
            fn errors_propagate_as_err(
                items in prop::collection::vec(0u32..100, 1..200),
                threads in 1usize..16,
                fail_mod in 1u32..10,
            ) {
                let first_fail = items.iter().position(|&x| x % fail_mod == 0);
                let got: Result<Vec<u32>, usize> = Pool::sized(threads)
                    .par_map_indexed(&items, |i, &x| {
                        if x % fail_mod == 0 { Err(i) } else { Ok(x) }
                    });
                match first_fail {
                    Some(i) => prop_assert_eq!(got, Err(i)),
                    None => prop_assert_eq!(got, Ok(items.clone())),
                }
            }
        }
    }
}
