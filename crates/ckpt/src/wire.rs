//! Bounds-checked little-endian primitive encoding.
//!
//! [`Writer`] appends fixed-width fields to a growable buffer; [`Reader`]
//! consumes them back, returning [`CkptError::Truncated`] the moment a
//! declared field would run past the end of the buffer. Every length
//! prefix is validated against the bytes actually remaining *before* any
//! allocation, so a corrupted length field cannot trigger an out-of-memory
//! abort or a panic.

use crate::error::CkptError;
use plos_linalg::Vector;

/// Append-only encoder for checkpoint section payloads.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Starts an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Consumes the writer, yielding the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (the on-disk format is 64-bit).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as the little-endian bytes of its bit pattern,
    /// preserving signed zeros and NaN payloads exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends an optional `f64` as a presence byte plus the value.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed vector of coefficients.
    pub fn put_vector(&mut self, v: &Vector) {
        self.put_usize(v.len());
        for &c in v.iter() {
            self.put_f64(c);
        }
    }

    /// Appends a length-prefixed slice of `f64`s.
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Appends a length-prefixed slice of `u64`s.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u64(v);
        }
    }
}

/// Consuming decoder over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice for decoding.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes exactly `n` bytes, or reports truncation.
    pub fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CkptError> {
        if self.buf.len() < n {
            return Err(CkptError::Truncated { what, needed: n, remaining: self.buf.len() });
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, CkptError> {
        let head = self.take(1, what)?;
        head.first().copied().ok_or(CkptError::Truncated { what, needed: 1, remaining: 0 })
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self, what: &'static str) -> Result<u16, CkptError> {
        let head = self.take(2, what)?;
        let arr: [u8; 2] =
            head.try_into().map_err(|_| CkptError::Truncated { what, needed: 2, remaining: 0 })?;
        Ok(u16::from_le_bytes(arr))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, CkptError> {
        let head = self.take(4, what)?;
        let arr: [u8; 4] =
            head.try_into().map_err(|_| CkptError::Truncated { what, needed: 4, remaining: 0 })?;
        Ok(u32::from_le_bytes(arr))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, CkptError> {
        let head = self.take(8, what)?;
        let arr: [u8; 8] =
            head.try_into().map_err(|_| CkptError::Truncated { what, needed: 8, remaining: 0 })?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads a `u64` and narrows it to `usize`, rejecting values that do
    /// not fit the host (relevant on 32-bit targets).
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, CkptError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| CkptError::Malformed {
            detail: format!("{what} length {v} exceeds host usize"),
        })
    }

    /// Reads an `f64` from its stored bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Reads a bool byte, rejecting anything other than 0 or 1.
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, CkptError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CkptError::Malformed {
                detail: format!("{what}: bool byte must be 0 or 1, found {other}"),
            }),
        }
    }

    /// Reads an optional `f64` written by [`Writer::put_opt_f64`].
    pub fn get_opt_f64(&mut self, what: &'static str) -> Result<Option<f64>, CkptError> {
        if self.get_bool(what)? {
            Ok(Some(self.get_f64(what)?))
        } else {
            Ok(None)
        }
    }

    /// Reads a declared element count and checks the remaining buffer can
    /// actually hold that many `elem_size`-byte elements before any
    /// allocation happens.
    pub fn get_len(&mut self, elem_size: usize, what: &'static str) -> Result<usize, CkptError> {
        let len = self.get_usize(what)?;
        let needed = len.checked_mul(elem_size).ok_or_else(|| CkptError::Malformed {
            detail: format!("{what}: element count {len} overflows"),
        })?;
        if needed > self.buf.len() {
            return Err(CkptError::Truncated { what, needed, remaining: self.buf.len() });
        }
        Ok(len)
    }

    /// Reads a length-prefixed vector of coefficients.
    pub fn get_vector(&mut self, what: &'static str) -> Result<Vector, CkptError> {
        let len = self.get_len(8, what)?;
        let mut coeffs = Vec::with_capacity(len);
        for _ in 0..len {
            coeffs.push(self.get_f64(what)?);
        }
        Ok(Vector::from(coeffs))
    }

    /// Reads a length-prefixed slice of `f64`s.
    pub fn get_f64s(&mut self, what: &'static str) -> Result<Vec<f64>, CkptError> {
        let len = self.get_len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64(what)?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed slice of `u64`s.
    pub fn get_u64s(&mut self, what: &'static str) -> Result<Vec<u64>, CkptError> {
        let len = self.get_len(8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64(what)?);
        }
        Ok(out)
    }

    /// Asserts every byte was consumed; anything left over is a framing
    /// error.
    pub fn finish(self, what: &'static str) -> Result<(), CkptError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CkptError::Malformed {
                detail: format!("{what}: {} trailing bytes", self.buf.len()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.put_u8(0xab);
        w.put_u16(0x1234);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 7);
        w.put_f64(-0.0);
        w.put_bool(true);
        w.put_opt_f64(Some(f64::MIN_POSITIVE));
        w.put_opt_f64(None);
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 0xab);
        assert_eq!(r.get_u16("b").unwrap(), 0x1234);
        assert_eq!(r.get_u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX - 7);
        assert_eq!(r.get_f64("e").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.get_bool("f").unwrap());
        assert_eq!(r.get_opt_f64("g").unwrap(), Some(f64::MIN_POSITIVE));
        assert_eq!(r.get_opt_f64("h").unwrap(), None);
        r.finish("tail").unwrap();
    }

    #[test]
    fn vectors_round_trip_bit_exactly() {
        let v = Vector::from(vec![f64::MAX, f64::MIN, -0.0, 1e-308, 3.5]);
        let mut w = Writer::new();
        w.put_vector(&v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = r.get_vector("v").unwrap();
        assert_eq!(back.len(), v.len());
        for (a, b) in back.iter().zip(v.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_is_typed_not_a_panic() {
        let mut w = Writer::new();
        w.put_u64(42);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            match r.get_u64("field") {
                Err(CkptError::Truncated { .. }) => {}
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversized_length_prefix_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~2^64 elements follow
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let err = r.get_vector("huge").unwrap_err();
        assert!(matches!(err, CkptError::Truncated { .. } | CkptError::Malformed { .. }));
    }

    #[test]
    fn bad_bool_byte_rejected() {
        let mut r = Reader::new(&[7u8]);
        assert!(matches!(r.get_bool("flag"), Err(CkptError::Malformed { .. })));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes);
        let _ = r.get_u8("x").unwrap();
        assert!(matches!(r.finish("section"), Err(CkptError::Malformed { .. })));
    }
}
