//! Typed failure modes for checkpoint encode/decode and storage.
//!
//! Every way a checkpoint can be unusable — truncated file, flipped bit,
//! foreign magic, future format version, wrong solver context — maps to a
//! distinct variant so callers can distinguish "no checkpoint yet" from
//! "checkpoint present but damaged" and react without panicking.

use std::error::Error;
use std::fmt;

/// Errors produced by the checkpoint layer.
///
/// All variants are data-only (`Clone + PartialEq`) so tests can assert on
/// exact failure modes and solvers can park them for later reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// An underlying filesystem operation failed (open, write, rename).
    Io {
        /// Human-readable description of the failed operation.
        detail: String,
    },
    /// The byte stream ended before a declared field could be read.
    Truncated {
        /// Which field was being decoded when the stream ran out.
        what: &'static str,
        /// Bytes the field required.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The file does not start with the `PLOSCKPT` magic bytes.
    BadMagic,
    /// The format version is outside the range this build can read.
    UnsupportedVersion {
        /// Version recorded in the file header.
        found: u16,
        /// Oldest version this build still decodes.
        min: u16,
        /// Newest version this build understands.
        max: u16,
    },
    /// A stored FNV-1a digest does not match the recomputed one.
    DigestMismatch {
        /// `"section"` or `"file"` — which digest failed.
        what: &'static str,
        /// Section tag for section digests; `0` for the file trailer.
        tag: u16,
    },
    /// A section the decoder requires is absent from the file.
    MissingSection {
        /// Tag of the missing section.
        tag: u16,
    },
    /// The bytes are structurally inconsistent (duplicate section, trailing
    /// garbage, impossible length, non-boolean flag, ...).
    Malformed {
        /// What exactly was inconsistent.
        detail: String,
    },
    /// The checkpoint decodes cleanly but describes a different kind of
    /// state than the caller asked for.
    WrongKind {
        /// Kind byte recorded in the file.
        found: u8,
        /// Kind byte the caller expected.
        expected: u8,
    },
    /// The checkpoint belongs to a different run configuration (dataset
    /// shape or solver hyper-parameters changed since it was written).
    ContextMismatch {
        /// What differed between the checkpoint and the live run.
        detail: String,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { detail } => write!(f, "checkpoint io error: {detail}"),
            CkptError::Truncated {
                what,
                needed,
                remaining,
            } => write!(
                f,
                "checkpoint truncated while reading {what}: needed {needed} bytes, {remaining} remaining"
            ),
            CkptError::BadMagic => write!(f, "not a PLOS checkpoint (bad magic)"),
            CkptError::UnsupportedVersion { found, min, max } => write!(
                f,
                "unsupported checkpoint format version {found} (this build reads {min}..={max})"
            ),
            CkptError::DigestMismatch { what, tag } => {
                write!(f, "checkpoint {what} digest mismatch (tag {tag})")
            }
            CkptError::MissingSection { tag } => {
                write!(f, "checkpoint missing required section (tag {tag})")
            }
            CkptError::Malformed { detail } => write!(f, "malformed checkpoint: {detail}"),
            CkptError::WrongKind { found, expected } => write!(
                f,
                "checkpoint holds state kind {found}, expected kind {expected}"
            ),
            CkptError::ContextMismatch { detail } => {
                write!(f, "checkpoint context mismatch: {detail}")
            }
        }
    }
}

impl Error for CkptError {}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<CkptError> = vec![
            CkptError::Io { detail: "disk full".into() },
            CkptError::Truncated { what: "u64", needed: 8, remaining: 3 },
            CkptError::BadMagic,
            CkptError::UnsupportedVersion { found: 9, min: 1, max: 1 },
            CkptError::DigestMismatch { what: "section", tag: 3 },
            CkptError::MissingSection { tag: 2 },
            CkptError::Malformed { detail: "trailing bytes".into() },
            CkptError::WrongKind { found: 4, expected: 3 },
            CkptError::ContextMismatch { detail: "t_count 5 vs 6".into() },
        ];
        for case in cases {
            assert!(!case.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(CkptError::BadMagic, CkptError::BadMagic);
        assert_ne!(CkptError::MissingSection { tag: 1 }, CkptError::MissingSection { tag: 2 });
    }
}
