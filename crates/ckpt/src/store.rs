//! Atomic on-disk checkpoint store.
//!
//! Each checkpoint is one file, `<name>.ckpt`, inside a store directory.
//! Saves go through a temp file plus rename so a crash mid-write leaves
//! either the previous complete checkpoint or none — never a torn file
//! (the framing digests would catch a torn file anyway, but atomicity
//! means a resume never has to fall back past the latest good snapshot).

use crate::error::CkptError;
use crate::frame::CheckpointFile;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Directory-backed checkpoint store.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Creates a store rooted at `dir`. The directory is created lazily on
    /// first save.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Store { dir: dir.into() }
    }

    /// The store's root directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a named checkpoint lives at.
    #[must_use]
    pub fn path_for(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.ckpt"))
    }

    /// Atomically writes a checkpoint under `name`, replacing any previous
    /// one, and emits a `checkpoint` trace event. Returns the byte size.
    pub fn save(&self, name: &str, file: &CheckpointFile) -> Result<usize, CkptError> {
        let bytes = file.encode();
        fs::create_dir_all(&self.dir)
            .map_err(|e| CkptError::Io { detail: format!("create {}: {e}", self.dir.display()) })?;
        let final_path = self.path_for(name);
        let tmp_path = self.dir.join(format!("{name}.ckpt.tmp"));
        {
            let mut tmp = fs::File::create(&tmp_path).map_err(|e| CkptError::Io {
                detail: format!("create {}: {e}", tmp_path.display()),
            })?;
            tmp.write_all(&bytes).map_err(|e| CkptError::Io {
                detail: format!("write {}: {e}", tmp_path.display()),
            })?;
            tmp.sync_all().map_err(|e| CkptError::Io {
                detail: format!("sync {}: {e}", tmp_path.display()),
            })?;
        }
        fs::rename(&tmp_path, &final_path).map_err(|e| CkptError::Io {
            detail: format!("rename {} -> {}: {e}", tmp_path.display(), final_path.display()),
        })?;
        plos_obs::emit(
            "checkpoint",
            &[
                ("file", name.to_string().into()),
                ("bytes", bytes.len().into()),
                ("sections", file.section_count().into()),
            ],
        );
        Ok(bytes.len())
    }

    /// Removes a named checkpoint, typically after a run completes so the
    /// next run starts fresh. Removing a checkpoint that does not exist is
    /// not an error.
    pub fn remove(&self, name: &str) -> Result<(), CkptError> {
        let path = self.path_for(name);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(CkptError::Io { detail: format!("remove {}: {e}", path.display()) }),
        }
    }

    /// Loads and verifies a named checkpoint.
    ///
    /// Returns `Ok(None)` when no checkpoint exists (a fresh run), and a
    /// typed error when one exists but cannot be read or fails
    /// verification — a damaged checkpoint is never silently ignored.
    pub fn load(&self, name: &str) -> Result<Option<CheckpointFile>, CkptError> {
        let path = self.path_for(name);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(CkptError::Io { detail: format!("read {}: {e}", path.display()) })
            }
        };
        CheckpointFile::decode(&bytes).map(Some)
    }
}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("plos-ckpt-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let store = Store::new(&dir);
        let mut file = CheckpointFile::new();
        file.push_section(1, vec![1, 2, 3]);
        let bytes = store.save("state", &file).unwrap();
        assert!(bytes > 0);
        let back = store.load("state").unwrap().unwrap();
        assert_eq!(back, file);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_is_none() {
        let dir = tmpdir("missing");
        let store = Store::new(&dir);
        assert_eq!(store.load("nope").unwrap(), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_file_is_a_typed_error_not_none() {
        let dir = tmpdir("corrupt");
        let store = Store::new(&dir);
        let mut file = CheckpointFile::new();
        file.push_section(1, vec![9; 16]);
        store.save("state", &file).unwrap();
        let path = store.path_for("state");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(store.load("state").is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_deletes_and_tolerates_missing() {
        let dir = tmpdir("remove");
        let store = Store::new(&dir);
        let mut file = CheckpointFile::new();
        file.push_section(1, vec![5]);
        store.save("state", &file).unwrap();
        store.remove("state").unwrap();
        assert_eq!(store.load("state").unwrap(), None);
        store.remove("state").unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_previous_checkpoint() {
        let dir = tmpdir("replace");
        let store = Store::new(&dir);
        let mut first = CheckpointFile::new();
        first.push_section(1, vec![1]);
        store.save("state", &first).unwrap();
        let mut second = CheckpointFile::new();
        second.push_section(1, vec![2, 2]);
        store.save("state", &second).unwrap();
        assert_eq!(store.load("state").unwrap().unwrap(), second);
        let _ = fs::remove_dir_all(&dir);
    }
}
