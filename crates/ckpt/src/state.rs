//! Checkpointable state mirrors and their section-level codecs.
//!
//! The solver crates convert their private working state into these plain
//! data structs; this module owns the byte layout. Each state kind encodes
//! into a [`CheckpointFile`] with a fixed set of tagged sections:
//!
//! | tag | section  | contents                                        |
//! |-----|----------|-------------------------------------------------|
//! | 1   | CONTEXT  | kind byte + run fingerprint                     |
//! | 2   | META     | phase, counters, flags, scalars                 |
//! | 3   | MODEL    | w0 and per-user vector blocks                   |
//! | 4   | HISTORY  | objective history (+ residuals, distributed)    |
//! | 5   | ROSTER   | liveness, strikes, evictions, participation     |
//! | 6   | LOG      | current-round broadcast replay log              |
//! | 7   | DUAL     | cutting-plane working set + warm start          |
//!
//! Privacy note: none of these sections ever carry device-local training
//! data. The distributed state holds only quantities the server already
//! received over the wire (consensus iterates, duals, slacks, anchors).

use crate::error::CkptError;
use crate::frame::CheckpointFile;
use crate::wire::{Reader, Writer};
use plos_linalg::Vector;

/// Section tag: kind byte + fingerprint.
pub const SEC_CONTEXT: u16 = 1;
/// Section tag: phase, counters, scalars.
pub const SEC_META: u16 = 2;
/// Section tag: model vectors.
pub const SEC_MODEL: u16 = 3;
/// Section tag: objective history and residuals.
pub const SEC_HISTORY: u16 = 4;
/// Section tag: fleet roster (distributed only).
pub const SEC_ROSTER: u16 = 5;
/// Section tag: broadcast replay log (distributed only).
pub const SEC_LOG: u16 = 6;
/// Section tag: dual-solver working set.
pub const SEC_DUAL: u16 = 7;

/// Kind byte: a finished [`ModelState`].
pub const KIND_MODEL: u8 = 1;
/// Kind byte: a [`DualState`].
pub const KIND_DUAL: u8 = 2;
/// Kind byte: a [`CentralizedState`].
pub const KIND_CENTRALIZED: u8 = 3;
/// Kind byte: a [`DistributedState`].
pub const KIND_DISTRIBUTED: u8 = 4;

fn context_section(kind: u8, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u8(kind);
    w.put_u64(fingerprint);
    w.into_bytes()
}

fn read_context(file: &CheckpointFile, expected: u8) -> Result<u64, CkptError> {
    let mut r = Reader::new(file.section(SEC_CONTEXT)?);
    let kind = r.get_u8("context kind")?;
    if kind != expected {
        return Err(CkptError::WrongKind { found: kind, expected });
    }
    let fingerprint = r.get_u64("context fingerprint")?;
    r.finish("context section")?;
    Ok(fingerprint)
}

fn put_vectors(w: &mut Writer, vs: &[Vector]) {
    w.put_usize(vs.len());
    for v in vs {
        w.put_vector(v);
    }
}

fn get_vectors(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<Vector>, CkptError> {
    // Each vector costs at least its 8-byte length prefix.
    let len = r.get_len(8, what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.get_vector(what)?);
    }
    Ok(out)
}

fn put_bools(w: &mut Writer, vs: &[bool]) {
    w.put_usize(vs.len());
    for &v in vs {
        w.put_bool(v);
    }
}

fn get_bools(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<bool>, CkptError> {
    let len = r.get_len(1, what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(r.get_bool(what)?);
    }
    Ok(out)
}

/// A finished personalized model: global hyperplane, per-user biases, and
/// the optional bias-augmentation constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelState {
    /// Structural fingerprint of the run that produced the model.
    pub fingerprint: u64,
    /// Global hyperplane `w0` (feature space, possibly bias-augmented).
    pub w0: Vector,
    /// Per-user biases `v_t`, one per user.
    pub biases: Vec<Vector>,
    /// Bias augmentation constant, if the model was trained with one.
    pub bias_aug: Option<f64>,
}

impl ModelState {
    /// Serializes into a framed checkpoint.
    #[must_use]
    pub fn encode(&self) -> CheckpointFile {
        let mut file = CheckpointFile::new();
        file.push_section(SEC_CONTEXT, context_section(KIND_MODEL, self.fingerprint));
        let mut meta = Writer::new();
        meta.put_opt_f64(self.bias_aug);
        file.push_section(SEC_META, meta.into_bytes());
        let mut model = Writer::new();
        model.put_vector(&self.w0);
        put_vectors(&mut model, &self.biases);
        file.push_section(SEC_MODEL, model.into_bytes());
        file
    }

    /// Reconstructs from a verified checkpoint file.
    pub fn decode(file: &CheckpointFile) -> Result<Self, CkptError> {
        let fingerprint = read_context(file, KIND_MODEL)?;
        let mut meta = Reader::new(file.section(SEC_META)?);
        let bias_aug = meta.get_opt_f64("bias_aug")?;
        meta.finish("meta section")?;
        let mut model = Reader::new(file.section(SEC_MODEL)?);
        let w0 = model.get_vector("w0")?;
        let biases = get_vectors(&mut model, "biases")?;
        model.finish("model section")?;
        Ok(ModelState { fingerprint, w0, biases, bias_aug })
    }
}

/// One cutting-plane constraint owned by a user: aggregated direction `s`
/// and offset `c` (Eq. 13–14), plus whether it is a hard balance row.
#[derive(Debug, Clone, PartialEq)]
pub struct DualEntry {
    /// Index of the user that owns the constraint.
    pub owner: usize,
    /// Aggregated constraint direction.
    pub s: Vector,
    /// Constraint offset.
    pub c: f64,
    /// True for hard (balance) constraints exempt from the box cap.
    pub hard: bool,
}

/// The structured dual solver's resumable state: working set and warm
/// start. The Gram matrix is *not* stored — it is recomputed entry by
/// entry on restore, which is deterministic and keeps files small.
#[derive(Debug, Clone, PartialEq)]
pub struct DualState {
    /// Structural fingerprint of the owning run.
    pub fingerprint: u64,
    /// Regularization trade-off λ.
    pub lambda: f64,
    /// Number of users in the cohort.
    pub t_count: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Working-set constraints in insertion order.
    pub entries: Vec<DualEntry>,
    /// Warm-start multipliers, one per entry.
    pub warm: Vec<f64>,
}

impl DualState {
    /// Serializes into a framed checkpoint.
    #[must_use]
    pub fn encode(&self) -> CheckpointFile {
        let mut file = CheckpointFile::new();
        file.push_section(SEC_CONTEXT, context_section(KIND_DUAL, self.fingerprint));
        let mut meta = Writer::new();
        meta.put_f64(self.lambda);
        meta.put_usize(self.t_count);
        meta.put_usize(self.dim);
        file.push_section(SEC_META, meta.into_bytes());
        let mut dual = Writer::new();
        dual.put_usize(self.entries.len());
        for entry in &self.entries {
            dual.put_usize(entry.owner);
            dual.put_vector(&entry.s);
            dual.put_f64(entry.c);
            dual.put_bool(entry.hard);
        }
        dual.put_f64s(&self.warm);
        file.push_section(SEC_DUAL, dual.into_bytes());
        file
    }

    /// Reconstructs from a verified checkpoint file.
    pub fn decode(file: &CheckpointFile) -> Result<Self, CkptError> {
        let fingerprint = read_context(file, KIND_DUAL)?;
        let mut meta = Reader::new(file.section(SEC_META)?);
        let lambda = meta.get_f64("lambda")?;
        let t_count = meta.get_usize("t_count")?;
        let dim = meta.get_usize("dim")?;
        meta.finish("meta section")?;
        let mut dual = Reader::new(file.section(SEC_DUAL)?);
        // Each entry costs at least owner + vector-len + c + hard bytes.
        let n = dual.get_len(8 + 8 + 8 + 1, "dual entries")?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let owner = dual.get_usize("entry owner")?;
            let s = dual.get_vector("entry direction")?;
            let c = dual.get_f64("entry offset")?;
            let hard = dual.get_bool("entry hard flag")?;
            entries.push(DualEntry { owner, s, c, hard });
        }
        let warm = dual.get_f64s("warm start")?;
        dual.finish("dual section")?;
        if warm.len() != entries.len() {
            return Err(CkptError::Malformed {
                detail: format!(
                    "warm start has {} multipliers for {} entries",
                    warm.len(),
                    entries.len()
                ),
            });
        }
        Ok(DualState { fingerprint, lambda, t_count, dim, entries, warm })
    }
}

/// Which outer phase a centralized run was in when checkpointed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CentralizedPhase {
    /// Inside the CCCP outer loop; `vectors` holds per-user biases `v_t`.
    Cccp,
    /// Inside refinement; `vectors` holds per-user hyperplanes `w_t`, and
    /// the payload counts completed refine rounds.
    Refine {
        /// Refinement rounds already completed.
        rounds_done: u32,
    },
}

/// Mid-run state of the centralized CCCP solver, written after each outer
/// round.
#[derive(Debug, Clone, PartialEq)]
pub struct CentralizedState {
    /// Structural fingerprint of the run (dataset shape + config).
    pub fingerprint: u64,
    /// Outer phase and phase-local progress.
    pub phase: CentralizedPhase,
    /// Current global hyperplane `w0`.
    pub w0: Vector,
    /// Phase-dependent per-user vectors (see [`CentralizedPhase`]).
    pub vectors: Vec<Vector>,
    /// Objective value after every completed outer round.
    pub history: Vec<f64>,
    /// CCCP rounds completed.
    pub cccp_rounds: u32,
    /// Whether the CCCP loop reached its convergence tolerance.
    pub cccp_converged: bool,
    /// Cutting-plane inner rounds completed so far (reporting only).
    pub cutting_rounds: u64,
    /// Constraints added so far (reporting only).
    pub constraints_added: u64,
}

impl CentralizedState {
    /// Serializes into a framed checkpoint.
    #[must_use]
    pub fn encode(&self) -> CheckpointFile {
        let mut file = CheckpointFile::new();
        file.push_section(SEC_CONTEXT, context_section(KIND_CENTRALIZED, self.fingerprint));
        let mut meta = Writer::new();
        match self.phase {
            CentralizedPhase::Cccp => {
                meta.put_u8(0);
                meta.put_u32(0);
            }
            CentralizedPhase::Refine { rounds_done } => {
                meta.put_u8(1);
                meta.put_u32(rounds_done);
            }
        }
        meta.put_u32(self.cccp_rounds);
        meta.put_bool(self.cccp_converged);
        meta.put_u64(self.cutting_rounds);
        meta.put_u64(self.constraints_added);
        file.push_section(SEC_META, meta.into_bytes());
        let mut model = Writer::new();
        model.put_vector(&self.w0);
        put_vectors(&mut model, &self.vectors);
        file.push_section(SEC_MODEL, model.into_bytes());
        let mut hist = Writer::new();
        hist.put_f64s(&self.history);
        file.push_section(SEC_HISTORY, hist.into_bytes());
        file
    }

    /// Reconstructs from a verified checkpoint file.
    pub fn decode(file: &CheckpointFile) -> Result<Self, CkptError> {
        let fingerprint = read_context(file, KIND_CENTRALIZED)?;
        let mut meta = Reader::new(file.section(SEC_META)?);
        let phase_byte = meta.get_u8("phase")?;
        let rounds_done = meta.get_u32("refine rounds done")?;
        let phase = match phase_byte {
            0 => CentralizedPhase::Cccp,
            1 => CentralizedPhase::Refine { rounds_done },
            other => {
                return Err(CkptError::Malformed {
                    detail: format!("unknown centralized phase byte {other}"),
                })
            }
        };
        let cccp_rounds = meta.get_u32("cccp_rounds")?;
        let cccp_converged = meta.get_bool("cccp_converged")?;
        let cutting_rounds = meta.get_u64("cutting_rounds")?;
        let constraints_added = meta.get_u64("constraints_added")?;
        meta.finish("meta section")?;
        let mut model = Reader::new(file.section(SEC_MODEL)?);
        let w0 = model.get_vector("w0")?;
        let vectors = get_vectors(&mut model, "per-user vectors")?;
        model.finish("model section")?;
        let mut hist = Reader::new(file.section(SEC_HISTORY)?);
        let history = hist.get_f64s("objective history")?;
        hist.finish("history section")?;
        Ok(CentralizedState {
            fingerprint,
            phase,
            w0,
            vectors,
            history,
            cccp_rounds,
            cccp_converged,
            cutting_rounds,
            constraints_added,
        })
    }
}

/// Which phase a distributed run was in when checkpointed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistributedPhase {
    /// Inside the ADMM consensus loop of some CCCP round.
    Admm,
    /// Inside post-consensus refinement.
    Refine {
        /// Refinement rounds already completed.
        rounds_done: u32,
    },
}

/// One recorded participation round, mirrored from the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParticipationRecord {
    /// Communication round number.
    pub round: u32,
    /// Devices that replied.
    pub replied: u64,
    /// Devices alive at the start of the round.
    pub alive: u64,
    /// Retries spent this round.
    pub retries: u64,
}

/// One broadcast the server sent during the current CCCP round, kept so a
/// resumed server can replay the round to rebuild device-side solver state
/// bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastRecord {
    /// Original communication round number of the broadcast.
    pub round: u32,
    /// Consensus iterate `w0` sent that round.
    pub w0: Vector,
    /// Per-user scaled duals `u_t` sent that round.
    pub us: Vec<Vector>,
}

/// Mid-run state of the distributed ADMM server, written after each ADMM
/// iteration and each refinement round. Server-side quantities only.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedState {
    /// Structural fingerprint of the run (cohort shape + config).
    pub fingerprint: u64,
    /// Phase and phase-local progress.
    pub phase: DistributedPhase,
    /// Last communication round number used.
    pub round: u32,
    /// Zero-based index of the current CCCP round.
    pub cccp_round: u32,
    /// ADMM iterations completed inside the current CCCP round.
    pub iters_done: u32,
    /// True once the current CCCP round's ADMM loop has finished (residual
    /// break or iteration budget) and only the objective push remains.
    pub inner_done: bool,
    /// Total ADMM iterations across all CCCP rounds.
    pub admm_iterations: u64,
    /// CCCP rounds completed (incremented at round entry).
    pub cccp_rounds: u32,
    /// Whether the CCCP history reached its convergence tolerance.
    pub converged: bool,
    /// Current consensus iterate `w0`.
    pub w0: Vector,
    /// Per-user scaled duals `u_t`.
    pub us: Vec<Vector>,
    /// Last per-user hyperplanes `w_t` received.
    pub w_ts: Vec<Vector>,
    /// Last per-user biases `v_t` received.
    pub v_ts: Vec<Vector>,
    /// Last per-user slack totals ξ_t received.
    pub xi_ts: Vec<f64>,
    /// Per-user CCCP anchors: each device's `w_t` at the start of the
    /// current CCCP round (what its linearization signs derive from).
    pub anchors: Vec<Vector>,
    /// Broadcasts of the current CCCP round, oldest first.
    pub log: Vec<BroadcastRecord>,
    /// Device liveness flags.
    pub alive: Vec<bool>,
    /// Consecutive missed-round strikes per device.
    pub missed: Vec<u32>,
    /// Devices evicted so far, in eviction order.
    pub evicted: Vec<u64>,
    /// Per-round participation records.
    pub participation: Vec<ParticipationRecord>,
    /// Malformed-reply count.
    pub protocol_errors: u64,
    /// Late/duplicate replies discarded.
    pub late_discards: u64,
    /// Objective value after every completed CCCP round.
    pub history: Vec<f64>,
    /// Per-ADMM-iteration residuals: (round, primal, dual).
    pub residuals: Vec<(u32, f64, f64)>,
}

impl DistributedState {
    /// Serializes into a framed checkpoint.
    #[must_use]
    pub fn encode(&self) -> CheckpointFile {
        let mut file = CheckpointFile::new();
        file.push_section(SEC_CONTEXT, context_section(KIND_DISTRIBUTED, self.fingerprint));
        let mut meta = Writer::new();
        match self.phase {
            DistributedPhase::Admm => {
                meta.put_u8(0);
                meta.put_u32(0);
            }
            DistributedPhase::Refine { rounds_done } => {
                meta.put_u8(1);
                meta.put_u32(rounds_done);
            }
        }
        meta.put_u32(self.round);
        meta.put_u32(self.cccp_round);
        meta.put_u32(self.iters_done);
        meta.put_bool(self.inner_done);
        meta.put_u64(self.admm_iterations);
        meta.put_u32(self.cccp_rounds);
        meta.put_bool(self.converged);
        meta.put_u64(self.protocol_errors);
        meta.put_u64(self.late_discards);
        file.push_section(SEC_META, meta.into_bytes());

        let mut model = Writer::new();
        model.put_vector(&self.w0);
        put_vectors(&mut model, &self.us);
        put_vectors(&mut model, &self.w_ts);
        put_vectors(&mut model, &self.v_ts);
        model.put_f64s(&self.xi_ts);
        put_vectors(&mut model, &self.anchors);
        file.push_section(SEC_MODEL, model.into_bytes());

        let mut log = Writer::new();
        log.put_usize(self.log.len());
        for rec in &self.log {
            log.put_u32(rec.round);
            log.put_vector(&rec.w0);
            put_vectors(&mut log, &rec.us);
        }
        file.push_section(SEC_LOG, log.into_bytes());

        let mut roster = Writer::new();
        put_bools(&mut roster, &self.alive);
        roster.put_usize(self.missed.len());
        for &m in &self.missed {
            roster.put_u32(m);
        }
        roster.put_u64s(&self.evicted);
        roster.put_usize(self.participation.len());
        for p in &self.participation {
            roster.put_u32(p.round);
            roster.put_u64(p.replied);
            roster.put_u64(p.alive);
            roster.put_u64(p.retries);
        }
        file.push_section(SEC_ROSTER, roster.into_bytes());

        let mut hist = Writer::new();
        hist.put_f64s(&self.history);
        hist.put_usize(self.residuals.len());
        for &(round, primal, dual) in &self.residuals {
            hist.put_u32(round);
            hist.put_f64(primal);
            hist.put_f64(dual);
        }
        file.push_section(SEC_HISTORY, hist.into_bytes());
        file
    }

    /// Reconstructs from a verified checkpoint file.
    pub fn decode(file: &CheckpointFile) -> Result<Self, CkptError> {
        let fingerprint = read_context(file, KIND_DISTRIBUTED)?;
        let mut meta = Reader::new(file.section(SEC_META)?);
        let phase_byte = meta.get_u8("phase")?;
        let rounds_done = meta.get_u32("refine rounds done")?;
        let phase = match phase_byte {
            0 => DistributedPhase::Admm,
            1 => DistributedPhase::Refine { rounds_done },
            other => {
                return Err(CkptError::Malformed {
                    detail: format!("unknown distributed phase byte {other}"),
                })
            }
        };
        let round = meta.get_u32("round")?;
        let cccp_round = meta.get_u32("cccp_round")?;
        let iters_done = meta.get_u32("iters_done")?;
        let inner_done = meta.get_bool("inner_done")?;
        let admm_iterations = meta.get_u64("admm_iterations")?;
        let cccp_rounds = meta.get_u32("cccp_rounds")?;
        let converged = meta.get_bool("converged")?;
        let protocol_errors = meta.get_u64("protocol_errors")?;
        let late_discards = meta.get_u64("late_discards")?;
        meta.finish("meta section")?;

        let mut model = Reader::new(file.section(SEC_MODEL)?);
        let w0 = model.get_vector("w0")?;
        let us = get_vectors(&mut model, "duals")?;
        let w_ts = get_vectors(&mut model, "hyperplanes")?;
        let v_ts = get_vectors(&mut model, "biases")?;
        let xi_ts = model.get_f64s("slacks")?;
        let anchors = get_vectors(&mut model, "anchors")?;
        model.finish("model section")?;

        let mut log_r = Reader::new(file.section(SEC_LOG)?);
        let log_len = log_r.get_len(4 + 8 + 8, "broadcast log")?;
        let mut log = Vec::with_capacity(log_len);
        for _ in 0..log_len {
            let rec_round = log_r.get_u32("log round")?;
            let rec_w0 = log_r.get_vector("log w0")?;
            let rec_us = get_vectors(&mut log_r, "log duals")?;
            log.push(BroadcastRecord { round: rec_round, w0: rec_w0, us: rec_us });
        }
        log_r.finish("log section")?;

        let mut roster = Reader::new(file.section(SEC_ROSTER)?);
        let alive = get_bools(&mut roster, "alive flags")?;
        let missed_len = roster.get_len(4, "missed strikes")?;
        let mut missed = Vec::with_capacity(missed_len);
        for _ in 0..missed_len {
            missed.push(roster.get_u32("missed strikes")?);
        }
        let evicted = roster.get_u64s("evicted roster")?;
        let part_len = roster.get_len(4 + 8 + 8 + 8, "participation")?;
        let mut participation = Vec::with_capacity(part_len);
        for _ in 0..part_len {
            participation.push(ParticipationRecord {
                round: roster.get_u32("participation round")?,
                replied: roster.get_u64("participation replied")?,
                alive: roster.get_u64("participation alive")?,
                retries: roster.get_u64("participation retries")?,
            });
        }
        roster.finish("roster section")?;

        let mut hist = Reader::new(file.section(SEC_HISTORY)?);
        let history = hist.get_f64s("objective history")?;
        let res_len = hist.get_len(4 + 8 + 8, "residuals")?;
        let mut residuals = Vec::with_capacity(res_len);
        for _ in 0..res_len {
            let r = hist.get_u32("residual round")?;
            let primal = hist.get_f64("primal residual")?;
            let dual = hist.get_f64("dual residual")?;
            residuals.push((r, primal, dual));
        }
        hist.finish("history section")?;

        let state = DistributedState {
            fingerprint,
            phase,
            round,
            cccp_round,
            iters_done,
            inner_done,
            admm_iterations,
            cccp_rounds,
            converged,
            w0,
            us,
            w_ts,
            v_ts,
            xi_ts,
            anchors,
            log,
            alive,
            missed,
            evicted,
            participation,
            protocol_errors,
            late_discards,
            history,
            residuals,
        };
        state.validate()?;
        Ok(state)
    }

    /// Cross-field consistency: every per-user collection must agree on
    /// the cohort size.
    fn validate(&self) -> Result<(), CkptError> {
        let t = self.us.len();
        let lens = [
            ("w_ts", self.w_ts.len()),
            ("v_ts", self.v_ts.len()),
            ("xi_ts", self.xi_ts.len()),
            ("anchors", self.anchors.len()),
            ("alive", self.alive.len()),
            ("missed", self.missed.len()),
        ];
        for (name, len) in lens {
            if len != t {
                return Err(CkptError::Malformed {
                    detail: format!("cohort size disagreement: us has {t}, {name} has {len}"),
                });
            }
        }
        for rec in &self.log {
            if rec.us.len() != t {
                return Err(CkptError::Malformed {
                    detail: format!(
                        "broadcast record round {} has {} duals for cohort of {t}",
                        rec.round,
                        rec.us.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    fn vec2(a: f64, b: f64) -> Vector {
        Vector::from(vec![a, b])
    }

    fn sample_distributed() -> DistributedState {
        DistributedState {
            fingerprint: 0x1234_5678_9abc_def0,
            phase: DistributedPhase::Admm,
            round: 7,
            cccp_round: 1,
            iters_done: 3,
            inner_done: false,
            admm_iterations: 9,
            cccp_rounds: 2,
            converged: false,
            w0: vec2(0.5, -0.5),
            us: vec![vec2(0.1, 0.2), vec2(-0.3, 0.0)],
            w_ts: vec![vec2(1.0, 2.0), vec2(3.0, 4.0)],
            v_ts: vec![vec2(0.0, -0.0), vec2(f64::MAX, f64::MIN)],
            xi_ts: vec![0.25, 1e-300],
            anchors: vec![vec2(9.0, 8.0), Vector::zeros(2)],
            log: vec![BroadcastRecord {
                round: 6,
                w0: vec2(0.4, -0.4),
                us: vec![vec2(0.0, 0.1), vec2(0.2, 0.3)],
            }],
            alive: vec![true, false],
            missed: vec![0, 3],
            evicted: vec![1],
            participation: vec![ParticipationRecord { round: 6, replied: 1, alive: 2, retries: 4 }],
            protocol_errors: 2,
            late_discards: 1,
            history: vec![10.0, 7.5],
            residuals: vec![(6, 0.9, 0.8), (7, 0.5, 0.4)],
        }
    }

    #[test]
    fn model_state_round_trips() {
        let state = ModelState {
            fingerprint: 42,
            w0: vec2(1.5, -2.5),
            biases: vec![vec2(0.0, -0.0), vec2(f64::MIN_POSITIVE, f64::MAX)],
            bias_aug: Some(1.0),
        };
        let bytes = state.encode().encode();
        let back = ModelState::decode(&CheckpointFile::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn model_state_zero_users_round_trips() {
        let state =
            ModelState { fingerprint: 0, w0: Vector::zeros(0), biases: Vec::new(), bias_aug: None };
        let bytes = state.encode().encode();
        let back = ModelState::decode(&CheckpointFile::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn dual_state_round_trips() {
        let state = DualState {
            fingerprint: 7,
            lambda: 0.5,
            t_count: 3,
            dim: 2,
            entries: vec![
                DualEntry { owner: 0, s: vec2(1.0, -1.0), c: 0.9, hard: true },
                DualEntry { owner: 2, s: vec2(-0.25, 0.75), c: -1.5, hard: false },
            ],
            warm: vec![0.1, 0.0],
        };
        let bytes = state.encode().encode();
        let back = DualState::decode(&CheckpointFile::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn dual_state_empty_working_set_round_trips() {
        let state = DualState {
            fingerprint: 7,
            lambda: 0.5,
            t_count: 1,
            dim: 4,
            entries: Vec::new(),
            warm: Vec::new(),
        };
        let bytes = state.encode().encode();
        let back = DualState::decode(&CheckpointFile::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn centralized_state_round_trips_both_phases() {
        for phase in [CentralizedPhase::Cccp, CentralizedPhase::Refine { rounds_done: 2 }] {
            let state = CentralizedState {
                fingerprint: 99,
                phase,
                w0: vec2(0.1, 0.2),
                vectors: vec![vec2(1.0, -1.0)],
                history: vec![5.0, 4.0, 3.999],
                cccp_rounds: 3,
                cccp_converged: true,
                cutting_rounds: 17,
                constraints_added: 23,
            };
            let bytes = state.encode().encode();
            let back = CentralizedState::decode(&CheckpointFile::decode(&bytes).unwrap()).unwrap();
            assert_eq!(back, state);
        }
    }

    #[test]
    fn distributed_state_round_trips() {
        let state = sample_distributed();
        let bytes = state.encode().encode();
        let back = DistributedState::decode(&CheckpointFile::decode(&bytes).unwrap()).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn wrong_kind_is_typed() {
        let model = ModelState {
            fingerprint: 1,
            w0: vec2(1.0, 2.0),
            biases: vec![vec2(0.0, 0.0)],
            bias_aug: None,
        };
        let file = model.encode();
        assert_eq!(
            DistributedState::decode(&file).unwrap_err(),
            CkptError::WrongKind { found: KIND_MODEL, expected: KIND_DISTRIBUTED }
        );
    }

    #[test]
    fn cohort_size_disagreement_rejected() {
        let mut state = sample_distributed();
        state.xi_ts.push(0.0);
        let bytes = state.encode().encode();
        assert!(matches!(
            DistributedState::decode(&CheckpointFile::decode(&bytes).unwrap()),
            Err(CkptError::Malformed { .. })
        ));
    }
}
