//! FNV-1a hashing used for section integrity and model fingerprints.
//!
//! FNV-1a folds one byte at a time through an xor followed by a multiply
//! with an odd prime. Both steps are bijections on `u64`, so two inputs of
//! equal length differing in a single byte always hash differently — which
//! is exactly the property the corruption proptests rely on: any one-bit
//! flip inside a section payload is guaranteed to change its digest.

use plos_linalg::Vector;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher over bytes, with helpers for the fixed-width
/// encodings the checkpoint format uses.
#[derive(Debug, Clone)]
pub struct Fnv1a {
    state: u64,
}

impl Fnv1a {
    /// Starts a fresh hash at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    /// Folds an `f64` as the little-endian bytes of its IEEE-754 bit
    /// pattern, so `-0.0` vs `0.0` and distinct NaN payloads all count.
    pub fn write_f64(&mut self, value: f64) {
        self.write(&value.to_bits().to_le_bytes());
    }

    /// Folds every coefficient of a vector.
    pub fn write_vector(&mut self, v: &Vector) {
        for &c in v.iter() {
            self.write_f64(c);
        }
    }

    /// Returns the current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

/// One-shot FNV-1a over a byte slice.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// Bit-exact digest of a personalized model: the global hyperplane's
/// coefficients followed by every user's personal bias, in user order.
///
/// This is the canonical digest printed by the `trace_parity` and
/// `resume_parity` gates and pinned by the golden-model fixtures; any
/// change to its fold order is a format break.
#[must_use]
pub fn model_digest(global: &Vector, biases: &[Vector]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_vector(global);
    for bias in biases {
        h.write_vector(bias);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    #[test]
    fn empty_input_hashes_to_offset_basis() {
        assert_eq!(fnv1a(&[]), FNV_OFFSET);
    }

    #[test]
    fn known_vector_matches_reference() {
        // FNV-1a("a") from the published reference vectors.
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn single_byte_difference_changes_hash() {
        let base = vec![0u8; 64];
        let h0 = fnv1a(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 0x01;
            assert_ne!(fnv1a(&flipped), h0, "flip at byte {i} collided");
        }
    }

    #[test]
    fn streaming_matches_one_shot() {
        let bytes = b"personalized learning in mobile sensing";
        let mut h = Fnv1a::new();
        for chunk in bytes.chunks(7) {
            h.write(chunk);
        }
        assert_eq!(h.finish(), fnv1a(bytes));
    }

    #[test]
    fn model_digest_distinguishes_sign_of_zero() {
        let a = model_digest(&Vector::from(vec![0.0]), &[]);
        let b = model_digest(&Vector::from(vec![-0.0]), &[]);
        assert_ne!(a, b);
    }

    #[test]
    fn model_digest_covers_biases_in_order() {
        let w0 = Vector::from(vec![1.0, 2.0]);
        let b1 = Vector::from(vec![0.5, -0.5]);
        let b2 = Vector::from(vec![-1.5, 0.25]);
        let fwd = model_digest(&w0, &[b1.clone(), b2.clone()]);
        let rev = model_digest(&w0, &[b2, b1]);
        assert_ne!(fwd, rev);
    }
}
