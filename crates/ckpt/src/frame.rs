//! Versioned container framing: magic, format version, tagged sections,
//! per-section digests, and a whole-file trailer digest.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8 bytes   "PLOSCKPT"
//! version          u16       format version (negotiated on read)
//! section_count    u32
//! sections         repeated:
//!     tag          u16
//!     len          u64       payload length in bytes
//!     payload      len bytes
//!     digest       u64       FNV-1a over payload
//! trailer          u64       FNV-1a over every preceding byte
//! ```
//!
//! The trailer covers the header and every section (tags, lengths, payloads
//! and their digests), so any single-bit corruption anywhere in the file is
//! detected: FNV-1a's xor/odd-multiply steps are bijective on `u64`, hence
//! equal-length inputs differing in one byte never collide.

use crate::digest::{fnv1a, Fnv1a};
use crate::error::CkptError;
use crate::wire::Reader;

/// File magic identifying a PLOS checkpoint.
pub const MAGIC: [u8; 8] = *b"PLOSCKPT";
/// Format version written by this build.
pub const FORMAT_VERSION: u16 = 1;
/// Oldest format version this build still reads.
pub const MIN_SUPPORTED_VERSION: u16 = 1;

/// An in-memory checkpoint: an ordered list of tagged byte sections.
///
/// Encoding adds the header, per-section digests, and trailer; decoding
/// verifies all of them and rejects duplicate tags and trailing bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointFile {
    sections: Vec<(u16, Vec<u8>)>,
}

impl CheckpointFile {
    /// Starts an empty checkpoint.
    #[must_use]
    pub fn new() -> Self {
        CheckpointFile { sections: Vec::new() }
    }

    /// Appends a section. Tags must be unique per file; the decoder
    /// enforces this, so writers should too.
    pub fn push_section(&mut self, tag: u16, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Number of sections.
    #[must_use]
    pub fn section_count(&self) -> usize {
        self.sections.len()
    }

    /// Looks up a section payload by tag.
    pub fn section(&self, tag: u16) -> Result<&[u8], CkptError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, payload)| payload.as_slice())
            .ok_or(CkptError::MissingSection { tag })
    }

    /// Serializes the file: header, digested sections, trailer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        // plos-lint: allow(C2): a checkpoint holds a handful of fixed section tags; the count cannot approach u32
        out.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, payload) in &self.sections {
            out.extend_from_slice(&tag.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&fnv1a(payload).to_le_bytes());
        }
        let mut trailer = Fnv1a::new();
        trailer.write(&out);
        out.extend_from_slice(&trailer.finish().to_le_bytes());
        out
    }

    /// Parses and fully verifies a serialized checkpoint.
    ///
    /// Verification order: magic, version range, per-section framing and
    /// digests (with every length bounds-checked before allocation), the
    /// absence of trailing bytes, and finally the whole-file trailer digest.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(MAGIC.len(), "magic")?;
        if magic != MAGIC {
            return Err(CkptError::BadMagic);
        }
        let version = r.get_u16("version")?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(CkptError::UnsupportedVersion {
                found: version,
                min: MIN_SUPPORTED_VERSION,
                max: FORMAT_VERSION,
            });
        }
        let count = r.get_u32("section_count")?;
        let mut sections: Vec<(u16, Vec<u8>)> = Vec::new();
        for _ in 0..count {
            let tag = r.get_u16("section tag")?;
            if sections.iter().any(|(t, _)| *t == tag) {
                return Err(CkptError::Malformed {
                    detail: format!("duplicate section tag {tag}"),
                });
            }
            let len = r.get_usize("section length")?;
            let payload = r.take(len, "section payload")?.to_vec();
            let stored = r.get_u64("section digest")?;
            if stored != fnv1a(&payload) {
                return Err(CkptError::DigestMismatch { what: "section", tag });
            }
            sections.push((tag, payload));
        }
        let body_len = bytes.len().saturating_sub(8);
        let trailer = r.get_u64("trailer digest")?;
        r.finish("file")?;
        let body = bytes.get(..body_len).ok_or(CkptError::Truncated {
            what: "trailer digest",
            needed: 8,
            remaining: bytes.len(),
        })?;
        if trailer != fnv1a(body) {
            return Err(CkptError::DigestMismatch { what: "file", tag: 0 });
        }
        Ok(CheckpointFile { sections })
    }
}

#[cfg(test)]
mod tests {
    // Unit tests assert by panicking on failure; the workspace-wide
    // panic-free lint set is for library code paths, so tests opt back in.
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)]

    use super::*;

    fn sample() -> CheckpointFile {
        let mut f = CheckpointFile::new();
        f.push_section(1, vec![1, 2, 3, 4]);
        f.push_section(2, Vec::new());
        f.push_section(7, vec![0xff; 33]);
        f
    }

    #[test]
    fn encode_decode_round_trips() {
        let f = sample();
        let bytes = f.encode();
        let back = CheckpointFile::decode(&bytes).unwrap();
        assert_eq!(back, f);
        assert_eq!(back.section(7).unwrap().len(), 33);
        assert_eq!(back.section(9).unwrap_err(), CkptError::MissingSection { tag: 9 });
    }

    #[test]
    fn empty_file_round_trips() {
        let f = CheckpointFile::new();
        let back = CheckpointFile::decode(&f.encode()).unwrap();
        assert_eq!(back.section_count(), 0);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = CheckpointFile::decode(&bytes[..cut]).unwrap_err();
            // A prefix must never decode successfully; the variant depends
            // on where the cut lands but must always be typed.
            assert!(
                matches!(
                    err,
                    CkptError::Truncated { .. }
                        | CkptError::BadMagic
                        | CkptError::DigestMismatch { .. }
                        | CkptError::Malformed { .. }
                ),
                "cut {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_rejected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in 0..8u8 {
                let mut bad = bytes.clone();
                bad[i] ^= 1 << bit;
                assert!(
                    CheckpointFile::decode(&bad).is_err(),
                    "flip byte {i} bit {bit} slipped through"
                );
            }
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(CheckpointFile::decode(&bytes).is_err());
    }

    #[test]
    fn foreign_magic_rejected() {
        let mut bytes = sample().encode();
        bytes[0] = b'X';
        assert_eq!(CheckpointFile::decode(&bytes).unwrap_err(), CkptError::BadMagic);
    }

    #[test]
    fn future_version_rejected_with_range() {
        let mut bytes = sample().encode();
        // version lives at offset 8..10
        bytes[8] = 0xff;
        bytes[9] = 0xff;
        match CheckpointFile::decode(&bytes).unwrap_err() {
            CkptError::UnsupportedVersion { found, min, max } => {
                assert_eq!(found, u16::MAX);
                assert_eq!(min, MIN_SUPPORTED_VERSION);
                assert_eq!(max, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_tags_rejected() {
        let mut f = CheckpointFile::new();
        f.push_section(3, vec![1]);
        f.push_section(3, vec![2]);
        assert!(matches!(CheckpointFile::decode(&f.encode()), Err(CkptError::Malformed { .. })));
    }
}
