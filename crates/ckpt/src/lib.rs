//! `plos-ckpt` — zero-dependency versioned binary checkpoints for PLOS
//! training state.
//!
//! Long-running PLOS fits (CCCP outer loops centrally, consensus-ADMM
//! rounds in the distributed deployment) need to survive being killed:
//! this crate serializes the resumable state — the personalized model
//! (`w0` + per-user `v_t`), the structured dual solver's working set and
//! warm start, and the mid-run ADMM server state — into a self-describing
//! binary format and stores it atomically on disk.
//!
//! Format guarantees (see `DESIGN.md` §10 for the byte-level layout):
//!
//! - **Length-prefixed framing** with a magic header and a format version
//!   negotiated on read ([`frame::FORMAT_VERSION`] /
//!   [`frame::MIN_SUPPORTED_VERSION`]).
//! - **FNV-1a digests per section** plus a whole-file trailer digest, so
//!   any single-bit corruption anywhere yields a typed [`CkptError`] —
//!   never a panic and never a silently wrong model.
//! - **Bit-exact round trips**: `f64`s are stored as raw IEEE-754 bit
//!   patterns, preserving signed zeros and NaN payloads, which is what
//!   makes bit-parity resume provable by digest comparison.
//! - **Privacy**: the state mirrors hold only server-visible quantities;
//!   device-local training data has no representation in the format.
//!
//! The solver crates (`plos-core`) convert their private state to and
//! from the mirrors in [`state`]; this crate never depends on them.

pub mod digest;
pub mod error;
pub mod frame;
pub mod state;
pub mod store;
pub mod wire;

pub use digest::{fnv1a, model_digest, Fnv1a};
pub use error::CkptError;
pub use frame::{CheckpointFile, FORMAT_VERSION, MAGIC, MIN_SUPPORTED_VERSION};
pub use state::{
    BroadcastRecord, CentralizedPhase, CentralizedState, DistributedPhase, DistributedState,
    DualEntry, DualState, ModelState, ParticipationRecord, KIND_CENTRALIZED, KIND_DISTRIBUTED,
    KIND_DUAL, KIND_MODEL,
};
pub use store::Store;
