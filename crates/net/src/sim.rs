//! Link-time model: latency + bandwidth for communication-time estimates.
//!
//! The transport layer counts bytes exactly; this model converts those
//! counts into wall-clock estimates for a given link class, letting the
//! running-time experiments (Fig. 12) report end-to-end time including the
//! radio, not only compute.

use crate::metrics::TrafficStats;
use std::time::Duration;

/// A symmetric link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// One-way latency per message.
    pub latency: Duration,
    /// Usable bandwidth in bytes per second.
    pub bytes_per_sec: f64,
}

impl LinkModel {
    /// Nominal home/office WiFi figures (≈2 ms RTT/2, ≈2 MB/s usable).
    pub fn wifi() -> Self {
        LinkModel { latency: Duration::from_millis(2), bytes_per_sec: 2.0e6 }
    }

    /// Nominal LTE figures (≈40 ms one-way, ≈1 MB/s usable).
    pub fn lte() -> Self {
        LinkModel { latency: Duration::from_millis(40), bytes_per_sec: 1.0e6 }
    }

    /// Time to move one message of `bytes` over the link.
    ///
    /// # Panics
    ///
    /// Panics if the bandwidth is not positive.
    pub fn transfer_time(&self, bytes: u64) -> Duration {
        assert!(self.bytes_per_sec > 0.0, "bandwidth must be positive");
        self.latency + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Total link time for a traffic snapshot: per-message latency plus
    /// serialization time for every byte in both directions.
    pub fn total_time(&self, traffic: &TrafficStats) -> Duration {
        let messages = u32::try_from(traffic.total_messages()).unwrap_or(u32::MAX);
        let latency_total = self.latency.checked_mul(messages).unwrap_or(Duration::MAX);
        latency_total + Duration::from_secs_f64(traffic.total_bytes() as f64 / self.bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_combines_latency_and_bandwidth() {
        let link = LinkModel { latency: Duration::from_millis(10), bytes_per_sec: 1000.0 };
        // 500 bytes at 1000 B/s = 0.5 s + 10 ms latency.
        assert_eq!(link.transfer_time(500), Duration::from_millis(510));
        assert_eq!(link.transfer_time(0), Duration::from_millis(10));
    }

    #[test]
    fn total_time_counts_every_message() {
        let link = LinkModel { latency: Duration::from_millis(5), bytes_per_sec: 1.0e6 };
        let traffic = TrafficStats {
            bytes_sent: 500_000,
            bytes_received: 500_000,
            messages_sent: 3,
            messages_received: 1,
            ..Default::default()
        };
        let t = link.total_time(&traffic);
        // 4 messages x 5 ms + 1 MB / 1 MB/s = 20 ms + 1 s.
        assert_eq!(t, Duration::from_millis(1020));
    }

    #[test]
    fn presets_are_sane() {
        assert!(LinkModel::lte().latency > LinkModel::wifi().latency);
        assert!(LinkModel::wifi().bytes_per_sec > LinkModel::lte().bytes_per_sec);
    }

    #[test]
    fn faster_link_moves_data_sooner() {
        let traffic = TrafficStats {
            bytes_sent: 10_000,
            bytes_received: 10_000,
            messages_sent: 10,
            messages_received: 10,
            ..Default::default()
        };
        assert!(LinkModel::wifi().total_time(&traffic) < LinkModel::lte().total_time(&traffic));
    }
}
