//! In-process duplex transport with traffic accounting.
//!
//! Each [`Endpoint`] is one end of a bidirectional link built from two
//! unbounded mpsc channels. Every send/receive passes through the binary codec,
//! so the byte counters measure exactly what a real socket would carry —
//! that is what Fig. 13 (message overhead per user) reports.

use crate::codec::CodecError;
use crate::message::Message;
use crate::metrics::TrafficStats;
use bytes::Bytes;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Transport failure.
#[derive(Debug)]
pub enum TransportError {
    /// The peer endpoint was dropped.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
    /// The received bytes failed to decode.
    Codec(CodecError),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Disconnected => write!(f, "peer disconnected"),
            TransportError::Timeout => write!(f, "receive timed out"),
            TransportError::Codec(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransportError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for TransportError {
    fn from(e: CodecError) -> Self {
        TransportError::Codec(e)
    }
}

#[derive(Debug, Default)]
struct Counters {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    messages_sent: AtomicU64,
    messages_received: AtomicU64,
    decode_failures: AtomicU64,
    bytes_discarded: AtomicU64,
}

/// One end of a bidirectional, counted, in-process link.
#[derive(Debug)]
pub struct Endpoint {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    counters: Arc<Counters>,
}

impl Endpoint {
    /// Creates a connected pair of endpoints.
    pub fn pair() -> (Endpoint, Endpoint) {
        let (a_tx, b_rx) = channel();
        let (b_tx, a_rx) = channel();
        let a = Endpoint { tx: a_tx, rx: a_rx, counters: Arc::new(Counters::default()) };
        let b = Endpoint { tx: b_tx, rx: b_rx, counters: Arc::new(Counters::default()) };
        (a, b)
    }

    /// Encodes and sends a message.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer is gone.
    pub fn send(&self, message: &Message) -> Result<(), TransportError> {
        let bytes = message.encode();
        let len = bytes.len() as u64;
        self.tx.send(bytes).map_err(|_| TransportError::Disconnected)?;
        self.counters.bytes_sent.fetch_add(len, Ordering::Relaxed);
        self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Blocks until a message arrives and decodes it.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] if the peer is gone, or a
    /// codec error for malformed bytes.
    pub fn recv(&self) -> Result<Message, TransportError> {
        let bytes = self.rx.recv().map_err(|_| TransportError::Disconnected)?;
        self.decode_counted(bytes)
    }

    /// Like [`Endpoint::recv`] but gives up after `timeout`.
    ///
    /// # Errors
    ///
    /// Adds [`TransportError::Timeout`] to the failure modes of `recv`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, TransportError> {
        let bytes = self.recv_bytes_timeout(timeout)?;
        self.decode_counted(bytes)
    }

    /// Sends pre-encoded (possibly corrupted) bytes. Fault-injection hook:
    /// counters still see the frame, exactly like a real NIC would.
    pub(crate) fn send_bytes(&self, bytes: Bytes) -> Result<(), TransportError> {
        let len = bytes.len() as u64;
        self.tx.send(bytes).map_err(|_| TransportError::Disconnected)?;
        self.counters.bytes_sent.fetch_add(len, Ordering::Relaxed);
        self.counters.messages_sent.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Pulls one raw frame without decoding or accounting it.
    /// Fault-injection hook: the fault layer decides the frame's fate first.
    pub(crate) fn recv_bytes_timeout(&self, timeout: Duration) -> Result<Bytes, TransportError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => TransportError::Timeout,
            RecvTimeoutError::Disconnected => TransportError::Disconnected,
        })
    }

    /// Decodes a frame, counting it as received traffic only when the decode
    /// succeeds; malformed frames bump `decode_failures` instead, so corrupt
    /// traffic never inflates [`TrafficStats`].
    pub(crate) fn decode_counted(&self, bytes: Bytes) -> Result<Message, TransportError> {
        let len = bytes.len() as u64;
        match Message::decode(bytes) {
            Ok(message) => {
                self.counters.bytes_received.fetch_add(len, Ordering::Relaxed);
                self.counters.messages_received.fetch_add(1, Ordering::Relaxed);
                Ok(message)
            }
            Err(e) => {
                // The radio still received these bytes — the energy model
                // must see them even though they never became a message.
                self.counters.decode_failures.fetch_add(1, Ordering::Relaxed);
                self.counters.bytes_discarded.fetch_add(len, Ordering::Relaxed);
                Err(TransportError::Codec(e))
            }
        }
    }

    /// Snapshot of this endpoint's traffic counters.
    pub fn stats(&self) -> TrafficStats {
        TrafficStats {
            bytes_sent: self.counters.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.counters.bytes_received.load(Ordering::Relaxed),
            messages_sent: self.counters.messages_sent.load(Ordering::Relaxed),
            messages_received: self.counters.messages_received.load(Ordering::Relaxed),
            decode_failures: self.counters.decode_failures.load(Ordering::Relaxed),
            bytes_discarded: self.counters.bytes_discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_linalg::Vector;

    #[test]
    fn send_and_receive() {
        let (a, b) = Endpoint::pair();
        let msg = Message::CccpAdvance { cccp_round: 5 };
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
    }

    #[test]
    fn duplex_works_both_ways() {
        let (a, b) = Endpoint::pair();
        a.send(&Message::Shutdown).unwrap();
        b.send(&Message::CccpAdvance { cccp_round: 1 }).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Shutdown);
        assert_eq!(a.recv().unwrap(), Message::CccpAdvance { cccp_round: 1 });
    }

    #[test]
    fn counters_track_exact_bytes() {
        let (a, b) = Endpoint::pair();
        let msg = Message::Broadcast {
            round: 0,
            w0: Vector::from(vec![1.0, 2.0]),
            u_t: Vector::from(vec![3.0, 4.0]),
        };
        let expected = msg.wire_len() as u64;
        a.send(&msg).unwrap();
        let _ = b.recv().unwrap();
        assert_eq!(a.stats().bytes_sent, expected);
        assert_eq!(a.stats().messages_sent, 1);
        assert_eq!(b.stats().bytes_received, expected);
        assert_eq!(b.stats().messages_received, 1);
        assert_eq!(a.stats().bytes_received, 0);
        assert_eq!(b.stats().bytes_sent, 0);
    }

    #[test]
    fn disconnected_peer_errors() {
        let (a, b) = Endpoint::pair();
        drop(b);
        assert!(matches!(a.send(&Message::Shutdown), Err(TransportError::Disconnected)));
        assert!(matches!(a.recv(), Err(TransportError::Disconnected)));
    }

    #[test]
    fn recv_timeout_fires() {
        let (a, _b) = Endpoint::pair();
        let err = a.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
    }

    #[test]
    fn works_across_threads() {
        let (a, b) = Endpoint::pair();
        let handle = std::thread::spawn(move || {
            let msg = b.recv().unwrap();
            b.send(&msg).unwrap(); // echo
        });
        let original = Message::ClientUpdate {
            round: 9,
            user: 3,
            w_t: Vector::from(vec![0.5]),
            v_t: Vector::from(vec![-0.5]),
            xi_t: 0.25,
        };
        a.send(&original).unwrap();
        assert_eq!(a.recv().unwrap(), original);
        handle.join().unwrap();
    }

    #[test]
    fn corrupt_frames_count_as_decode_failures_not_traffic() {
        let (a, b) = Endpoint::pair();
        a.send_bytes(Bytes::from(vec![0xFF, 0xFF, 0xFF])).unwrap();
        let err = b.recv().unwrap_err();
        assert!(matches!(err, TransportError::Codec(_)));
        let stats = b.stats();
        assert_eq!(stats.messages_received, 0, "corrupt frame must not count as received");
        assert_eq!(stats.bytes_received, 0, "corrupt bytes must not inflate traffic");
        assert_eq!(stats.decode_failures, 1);
        assert_eq!(stats.bytes_discarded, 3, "the radio still received the corrupt bytes");
        // A good frame afterwards is counted normally.
        a.send(&Message::Shutdown).unwrap();
        assert_eq!(b.recv().unwrap(), Message::Shutdown);
        let stats = b.stats();
        assert_eq!(stats.messages_received, 1);
        assert_eq!(stats.decode_failures, 1);
    }

    #[test]
    fn error_display_nonempty() {
        for e in [
            TransportError::Disconnected,
            TransportError::Timeout,
            TransportError::Codec(CodecError::UnknownTag(7)),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
