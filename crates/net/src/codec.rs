//! Length-prefixed binary wire format.
//!
//! Hand-rolled on top of the `bytes` crate (the offline crate list has no
//! serde *format* crate). All integers are little-endian; vectors are a
//! `u32` length followed by `f64` components. The format is versioned with a
//! leading magic byte so decoding garbage fails loudly instead of silently.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use plos_linalg::Vector;
use std::fmt;

/// Wire-format version tag; bump on breaking changes.
pub const WIRE_VERSION: u8 = 1;

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the announced payload.
    UnexpectedEof {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// Unknown message tag byte.
    UnknownTag(u8),
    /// Wire version mismatch.
    BadVersion(u8),
    /// A declared length was implausibly large.
    LengthOverflow(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(f, "unexpected end of buffer: need {needed} bytes, have {remaining}")
            }
            CodecError::UnknownTag(t) => write!(f, "unknown message tag {t:#04x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            CodecError::LengthOverflow(n) => write!(f, "declared length {n} too large"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Maximum vector length accepted by the decoder (sanity bound).
const MAX_VEC_LEN: u64 = 16 * 1024 * 1024;

/// Appends a vector: `u32` length + little-endian `f64` components.
pub fn put_vector(buf: &mut BytesMut, v: &Vector) {
    // plos-lint: allow(C2): encode-side lengths are model dimensions, far below u32; the decoder enforces MAX_VEC_LEN
    buf.put_u32_le(v.len() as u32);
    for &x in v.iter() {
        buf.put_f64_le(x);
    }
}

/// Reads a vector written by [`put_vector`].
///
/// # Errors
///
/// Returns [`CodecError::UnexpectedEof`] on truncation and
/// [`CodecError::LengthOverflow`] on absurd lengths.
pub fn get_vector(buf: &mut Bytes) -> Result<Vector, CodecError> {
    let len = get_u32(buf)? as u64;
    if len > MAX_VEC_LEN {
        return Err(CodecError::LengthOverflow(len));
    }
    let len = len as usize;
    let need = len * 8;
    if buf.remaining() < need {
        return Err(CodecError::UnexpectedEof { needed: need, remaining: buf.remaining() });
    }
    Ok((0..len).map(|_| buf.get_f64_le()).collect())
}

/// Reads a `u8`, checking availability.
pub fn get_u8(buf: &mut Bytes) -> Result<u8, CodecError> {
    ensure(buf, 1)?;
    Ok(buf.get_u8())
}

/// Reads a little-endian `u32`, checking availability.
pub fn get_u32(buf: &mut Bytes) -> Result<u32, CodecError> {
    ensure(buf, 4)?;
    Ok(buf.get_u32_le())
}

/// Reads a little-endian `f64`, checking availability.
pub fn get_f64(buf: &mut Bytes) -> Result<f64, CodecError> {
    ensure(buf, 8)?;
    Ok(buf.get_f64_le())
}

fn ensure(buf: &Bytes, needed: usize) -> Result<(), CodecError> {
    if buf.remaining() < needed {
        Err(CodecError::UnexpectedEof { needed, remaining: buf.remaining() })
    } else {
        Ok(())
    }
}

/// Serialized size in bytes of a vector payload.
pub fn vector_wire_len(v: &Vector) -> usize {
    4 + 8 * v.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_round_trip() {
        let v = Vector::from(vec![1.5, -2.25, 0.0, f64::MAX]);
        let mut buf = BytesMut::new();
        put_vector(&mut buf, &v);
        assert_eq!(buf.len(), vector_wire_len(&v));
        let mut bytes = buf.freeze();
        let back = get_vector(&mut bytes).unwrap();
        assert_eq!(back, v);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn empty_vector_round_trip() {
        let v = Vector::zeros(0);
        let mut buf = BytesMut::new();
        put_vector(&mut buf, &v);
        let back = get_vector(&mut buf.freeze()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_vector_fails_cleanly() {
        let v = Vector::from(vec![1.0, 2.0]);
        let mut buf = BytesMut::new();
        put_vector(&mut buf, &v);
        let mut truncated = buf.freeze().slice(0..10);
        let err = get_vector(&mut truncated).unwrap_err();
        assert!(matches!(err, CodecError::UnexpectedEof { .. }));
    }

    #[test]
    fn absurd_length_rejected() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(u32::MAX);
        let err = get_vector(&mut buf.freeze()).unwrap_err();
        assert!(matches!(err, CodecError::LengthOverflow(_)));
    }

    #[test]
    fn scalar_readers_check_bounds() {
        let mut empty = Bytes::new();
        assert!(get_u8(&mut empty).is_err());
        assert!(get_u32(&mut empty).is_err());
        assert!(get_f64(&mut empty).is_err());
    }

    #[test]
    fn special_floats_survive() {
        let v = Vector::from(vec![f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE]);
        let mut buf = BytesMut::new();
        put_vector(&mut buf, &v);
        let back = get_vector(&mut buf.freeze()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_display_nonempty() {
        for e in [
            CodecError::UnexpectedEof { needed: 8, remaining: 2 },
            CodecError::UnknownTag(0xff),
            CodecError::BadVersion(9),
            CodecError::LengthOverflow(1 << 40),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
