//! Deterministic, seed-driven fault injection for the simulated network.
//!
//! Real mobile fleets lose packets, deliver them late, duplicated, reordered
//! or corrupted, and phones disappear mid-round. [`FaultyEndpoint`] wraps an
//! [`Endpoint`] and injects exactly those failure modes, driven by a
//! [`FaultPlan`]: per-link rates plus a seed, so every chaos run is
//! reproducible bit-for-bit at the level of *which* frames are harmed. With
//! the zero plan ([`FaultPlan::none`]) the wrapper is a transparent
//! pass-through — it never touches its RNG — so fault-free runs are
//! byte-identical to the plain transport.
//!
//! The wrapper sits on the **server side** of each link and harms traffic in
//! both directions: faults rolled on [`FaultyEndpoint::send`] model lost or
//! mangled broadcasts, faults rolled on [`FaultyEndpoint::recv_timeout`]
//! model lost or mangled client updates.

use crate::message::Message;
use crate::metrics::TrafficStats;
use crate::transport::{Endpoint, TransportError};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// How long a frame hit by a *reorder* fault is held back, letting frames
/// that arrive within this window overtake it.
const REORDER_HOLD: Duration = Duration::from_millis(2);

/// A link that permanently disconnects partway through a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadLink {
    /// Link (device) index in the star.
    pub link: usize,
    /// Server-side sends delivered before the link dies; `0` kills the
    /// device before it ever hears from the server.
    pub after_sends: u64,
}

/// Per-run chaos schedule: per-link fault rates plus the seed that makes the
/// injected fault sequence reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-link fault processes.
    pub seed: u64,
    /// Probability that a frame is silently dropped.
    pub drop_rate: f64,
    /// Probability that a frame is held back for [`FaultPlan::delay`].
    pub delay_rate: f64,
    /// Hold-back duration for delayed frames.
    pub delay: Duration,
    /// Probability that a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability that a frame lets later frames overtake it.
    pub reorder_rate: f64,
    /// Probability that one byte of a frame is flipped in flight.
    pub corrupt_rate: f64,
    /// Links that disconnect permanently.
    pub dead: Vec<DeadLink>,
}

impl FaultPlan {
    /// The zero plan: no faults, pass-through behaviour.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            delay: Duration::from_millis(5),
            duplicate_rate: 0.0,
            reorder_rate: 0.0,
            corrupt_rate: 0.0,
            dead: Vec::new(),
        }
    }

    /// Zero plan with a specific seed (relevant once rates are raised).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan { seed, ..FaultPlan::none() }
    }

    /// Sets the drop rate.
    #[must_use]
    pub fn with_drop(mut self, rate: f64) -> Self {
        self.drop_rate = rate;
        self
    }

    /// Sets the delay rate and hold-back duration.
    #[must_use]
    pub fn with_delay(mut self, rate: f64, delay: Duration) -> Self {
        self.delay_rate = rate;
        self.delay = delay;
        self
    }

    /// Sets the duplication rate.
    #[must_use]
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Sets the reorder rate.
    #[must_use]
    pub fn with_reorder(mut self, rate: f64) -> Self {
        self.reorder_rate = rate;
        self
    }

    /// Sets the corruption rate.
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corrupt_rate = rate;
        self
    }

    /// Kills `link` permanently after `after_sends` server-side sends.
    #[must_use]
    pub fn with_dead_link(mut self, link: usize, after_sends: u64) -> Self {
        self.dead.push(DeadLink { link, after_sends });
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_zero(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.dead.is_empty()
    }

    /// Validates all rates.
    ///
    /// # Errors
    ///
    /// Returns a description of the first out-of-range rate.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("drop_rate", self.drop_rate),
            ("delay_rate", self.delay_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("reorder_rate", self.reorder_rate),
            ("corrupt_rate", self.corrupt_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{name} must be in [0,1], got {rate}"));
            }
        }
        Ok(())
    }

    /// The fault parameters of one link, with a per-link derived seed so
    /// links draw independent fault sequences.
    pub fn link_faults(&self, link: usize) -> LinkFaults {
        LinkFaults {
            seed: self
                .seed
                .wrapping_add((link as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
                .rotate_left(17),
            drop_rate: self.drop_rate,
            delay_rate: self.delay_rate,
            delay: self.delay,
            duplicate_rate: self.duplicate_rate,
            reorder_rate: self.reorder_rate,
            corrupt_rate: self.corrupt_rate,
            dead_after: self.dead.iter().find(|d| d.link == link).map(|d| d.after_sends),
        }
    }

    /// Wraps every server-side endpoint of a star with this plan's faults.
    pub fn wrap_links<'a>(&self, ends: &'a [Endpoint]) -> Vec<FaultyEndpoint<'a>> {
        ends.iter()
            .enumerate()
            .map(|(t, end)| FaultyEndpoint::new(end, self.link_faults(t)))
            .collect()
    }
}

/// One link's share of a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFaults {
    /// Per-link derived RNG seed.
    pub seed: u64,
    /// Probability that a frame is silently dropped.
    pub drop_rate: f64,
    /// Probability that a frame is held back for `delay`.
    pub delay_rate: f64,
    /// Hold-back duration for delayed frames.
    pub delay: Duration,
    /// Probability that a frame is delivered twice.
    pub duplicate_rate: f64,
    /// Probability that a frame lets later frames overtake it.
    pub reorder_rate: f64,
    /// Probability that one byte of a frame is flipped.
    pub corrupt_rate: f64,
    /// Sends before permanent disconnect (`None` = immortal link).
    pub dead_after: Option<u64>,
}

impl LinkFaults {
    fn is_zero(&self) -> bool {
        self.drop_rate == 0.0
            && self.delay_rate == 0.0
            && self.duplicate_rate == 0.0
            && self.reorder_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.dead_after.is_none()
    }
}

/// Counters of the faults actually injected on one link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames silently discarded.
    pub dropped: u64,
    /// Frames held back by the delay fault.
    pub delayed: u64,
    /// Extra copies delivered by the duplication fault.
    pub duplicated: u64,
    /// Frames held back by the reorder fault.
    pub reordered: u64,
    /// Frames with a byte flipped in flight.
    pub corrupted: u64,
}

impl FaultStats {
    /// Total faults injected on the link.
    pub fn total(&self) -> u64 {
        self.dropped + self.delayed + self.duplicated + self.reordered + self.corrupted
    }
}

/// What the fault layer decided to do with one frame.
enum Fate {
    /// Deliver (or transmit) the frame now, possibly corrupted.
    Deliver(Bytes),
    /// The frame is gone (dropped) or parked in the pending queue.
    Consumed,
}

/// An [`Endpoint`] view that injects the faults of a [`LinkFaults`] on both
/// the send and the receive path. Zero-fault links never touch the RNG and
/// behave exactly like the bare endpoint.
#[derive(Debug)]
pub struct FaultyEndpoint<'a> {
    inner: &'a Endpoint,
    faults: LinkFaults,
    rng: StdRng,
    /// In-flight frames held back by delay/duplicate/reorder faults,
    /// tagged with the instant they become deliverable.
    pending: VecDeque<(Instant, Bytes)>,
    sends: u64,
    dead: bool,
    channel_closed: bool,
    injected: FaultStats,
}

impl<'a> FaultyEndpoint<'a> {
    /// Wraps one endpoint.
    pub fn new(inner: &'a Endpoint, faults: LinkFaults) -> Self {
        FaultyEndpoint {
            inner,
            faults,
            rng: StdRng::seed_from_u64(faults.seed),
            pending: VecDeque::new(),
            sends: 0,
            dead: false,
            channel_closed: false,
            injected: FaultStats::default(),
        }
    }

    /// True once the link has permanently disconnected.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Counters of the faults injected so far.
    pub fn fault_stats(&self) -> FaultStats {
        self.injected
    }

    /// Traffic counters of the underlying endpoint.
    pub fn stats(&self) -> TrafficStats {
        self.inner.stats()
    }

    /// Encodes and sends a message through the fault layer. The send path
    /// rolls drop, corruption, and duplication; delay and reorder faults are
    /// injected on the receive path only (holding outbound frames would need
    /// a timer thread and models the same physics).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Disconnected`] once the link is dead (by
    /// plan or because the peer hung up). A frame eaten by the drop fault
    /// reports success — exactly like a lossy radio.
    pub fn send(&mut self, message: &Message) -> Result<(), TransportError> {
        if self.check_dead() {
            return Err(TransportError::Disconnected);
        }
        self.sends += 1;
        if self.faults.is_zero() {
            return self.inner.send(message);
        }
        if self.faults.drop_rate > 0.0 && self.rng.gen_bool(self.faults.drop_rate) {
            self.injected.dropped += 1;
            return Ok(());
        }
        let frame = message.encode();
        let frame = if self.faults.corrupt_rate > 0.0 && self.rng.gen_bool(self.faults.corrupt_rate)
        {
            self.injected.corrupted += 1;
            corrupt(&frame)
        } else {
            frame
        };
        let duplicate =
            self.faults.duplicate_rate > 0.0 && self.rng.gen_bool(self.faults.duplicate_rate);
        self.inner.send_bytes(frame.clone())?;
        if duplicate {
            self.injected.duplicated += 1;
            self.inner.send_bytes(frame)?;
        }
        Ok(())
    }

    /// Receives one message through the fault layer, giving up after
    /// `timeout`.
    ///
    /// # Errors
    ///
    /// [`TransportError::Timeout`] when nothing deliverable arrived in time,
    /// [`TransportError::Disconnected`] once the link is dead, and
    /// [`TransportError::Codec`] when the delivered frame was corrupted in
    /// flight (the endpoint's `decode_failures` counter records it).
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        if self.check_dead() {
            return Err(TransportError::Disconnected);
        }
        if self.faults.is_zero() {
            return self.inner.recv_timeout(timeout);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            // Ready parked frames deliver before new arrivals.
            if let Some(idx) = self.pending.iter().position(|(ready, _)| *ready <= now) {
                if let Some((_, bytes)) = self.pending.remove(idx) {
                    return self.inner.decode_counted(bytes);
                }
            }
            if now >= deadline {
                return Err(TransportError::Timeout);
            }
            // Wait no longer than the deadline or the next parked frame.
            let mut wait = deadline - now;
            if let Some(until_ready) =
                self.pending.iter().map(|(ready, _)| ready.saturating_duration_since(now)).min()
            {
                wait = wait.min(until_ready.max(Duration::from_micros(100)));
            }
            if self.channel_closed {
                if self.pending.is_empty() {
                    self.dead = true;
                    return Err(TransportError::Disconnected);
                }
                std::thread::sleep(wait);
                continue;
            }
            match self.inner.recv_bytes_timeout(wait) {
                Ok(frame) => {
                    if let Fate::Deliver(bytes) = self.roll(frame) {
                        return self.inner.decode_counted(bytes);
                    }
                }
                Err(TransportError::Timeout) => {}
                Err(_) => self.channel_closed = true,
            }
        }
    }

    /// Marks the link dead once the planned send budget is exhausted.
    fn check_dead(&mut self) -> bool {
        if !self.dead {
            if let Some(after) = self.faults.dead_after {
                if self.sends >= after {
                    self.dead = true;
                }
            }
        }
        self.dead
    }

    /// Rolls the fault dice for one frame, in a fixed order so the RNG
    /// stream — and therefore the whole chaos schedule — is a pure function
    /// of the seed and the frame sequence.
    fn roll(&mut self, frame: Bytes) -> Fate {
        let now = Instant::now();
        if self.faults.drop_rate > 0.0 && self.rng.gen_bool(self.faults.drop_rate) {
            self.injected.dropped += 1;
            return Fate::Consumed;
        }
        let frame = if self.faults.corrupt_rate > 0.0 && self.rng.gen_bool(self.faults.corrupt_rate)
        {
            self.injected.corrupted += 1;
            corrupt(&frame)
        } else {
            frame
        };
        if self.faults.duplicate_rate > 0.0 && self.rng.gen_bool(self.faults.duplicate_rate) {
            self.injected.duplicated += 1;
            self.pending.push_back((now, frame.clone()));
        }
        if self.faults.delay_rate > 0.0 && self.rng.gen_bool(self.faults.delay_rate) {
            self.injected.delayed += 1;
            self.pending.push_back((now + self.faults.delay, frame));
            return Fate::Consumed;
        }
        if self.faults.reorder_rate > 0.0 && self.rng.gen_bool(self.faults.reorder_rate) {
            self.injected.reordered += 1;
            self.pending.push_back((now + REORDER_HOLD, frame));
            return Fate::Consumed;
        }
        Fate::Deliver(frame)
    }
}

/// Corrupts the frame so the damage is always *detectable*: the wire format
/// carries no checksum, so flipping the version byte stands in for a
/// checksum-protected link where corrupted frames surface as decode
/// failures rather than silently poisoned payloads.
fn corrupt(frame: &Bytes) -> Bytes {
    let mut raw = frame.to_vec();
    if let Some(byte) = raw.first_mut() {
        *byte ^= 0xFF;
    }
    Bytes::from(raw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ping() -> Message {
        Message::CccpAdvance { cccp_round: 7 }
    }

    #[test]
    fn zero_plan_is_transparent() {
        let (server, client) = Endpoint::pair();
        let mut faulty = FaultyEndpoint::new(&server, FaultPlan::none().link_faults(0));
        faulty.send(&ping()).unwrap();
        assert_eq!(client.recv().unwrap(), ping());
        client.send(&Message::Shutdown).unwrap();
        assert_eq!(faulty.recv_timeout(Duration::from_millis(50)).unwrap(), Message::Shutdown);
        assert_eq!(faulty.fault_stats(), FaultStats::default());
        assert!(!faulty.is_dead());
    }

    #[test]
    fn drop_all_loses_every_frame() {
        let (server, client) = Endpoint::pair();
        let plan = FaultPlan::seeded(1).with_drop(1.0);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        for _ in 0..5 {
            client.send(&ping()).unwrap();
        }
        let err = faulty.recv_timeout(Duration::from_millis(20)).unwrap_err();
        assert!(matches!(err, TransportError::Timeout));
        assert_eq!(faulty.fault_stats().dropped, 5);
    }

    #[test]
    fn delayed_frames_arrive_after_the_hold() {
        let (server, client) = Endpoint::pair();
        let plan = FaultPlan::seeded(2).with_delay(1.0, Duration::from_millis(10));
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        client.send(&ping()).unwrap();
        let started = Instant::now();
        let got = faulty.recv_timeout(Duration::from_millis(500)).unwrap();
        assert_eq!(got, ping());
        assert!(started.elapsed() >= Duration::from_millis(9), "frame arrived too early");
        assert_eq!(faulty.fault_stats().delayed, 1);
    }

    #[test]
    fn duplicated_frames_deliver_twice() {
        let (server, client) = Endpoint::pair();
        let plan = FaultPlan::seeded(3).with_duplicates(1.0);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        client.send(&ping()).unwrap();
        assert_eq!(faulty.recv_timeout(Duration::from_millis(100)).unwrap(), ping());
        assert_eq!(faulty.recv_timeout(Duration::from_millis(100)).unwrap(), ping());
        assert_eq!(faulty.fault_stats().duplicated, 1);
    }

    #[test]
    fn corrupted_frames_surface_as_codec_errors() {
        let (server, client) = Endpoint::pair();
        let plan = FaultPlan::seeded(4).with_corruption(1.0);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        client.send(&ping()).unwrap();
        let err = faulty.recv_timeout(Duration::from_millis(100)).unwrap_err();
        assert!(matches!(err, TransportError::Codec(_)), "got {err:?}");
        assert_eq!(server.stats().decode_failures, 1);
        assert_eq!(server.stats().messages_received, 0);
    }

    #[test]
    fn reordered_frames_are_overtaken() {
        let (server, client) = Endpoint::pair();
        // Only the reorder die is loaded, so the first frame is held while
        // the second sails through.
        let plan = FaultPlan::seeded(5).with_reorder(1.0);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        client.send(&Message::CccpAdvance { cccp_round: 1 }).unwrap();
        let first = faulty.recv_timeout(Duration::from_millis(200)).unwrap();
        assert_eq!(first, Message::CccpAdvance { cccp_round: 1 }, "held frame still delivers");
        assert_eq!(faulty.fault_stats().reordered, 1);
    }

    #[test]
    fn dead_link_disconnects_after_budget() {
        let (server, _client) = Endpoint::pair();
        let plan = FaultPlan::seeded(6).with_dead_link(0, 2);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        faulty.send(&ping()).unwrap();
        faulty.send(&ping()).unwrap();
        let err = faulty.send(&ping()).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected));
        assert!(faulty.is_dead());
        let err = faulty.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert!(matches!(err, TransportError::Disconnected));
    }

    #[test]
    fn dead_from_the_start_never_talks() {
        let (server, _client) = Endpoint::pair();
        let plan = FaultPlan::seeded(7).with_dead_link(0, 0);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        assert!(matches!(faulty.send(&ping()), Err(TransportError::Disconnected)));
    }

    #[test]
    fn other_links_are_unaffected_by_a_dead_link() {
        let (server, client) = Endpoint::pair();
        let plan = FaultPlan::seeded(8).with_dead_link(3, 0);
        let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(0));
        faulty.send(&ping()).unwrap();
        assert_eq!(client.recv().unwrap(), ping());
    }

    #[test]
    fn fault_sequence_is_reproducible() {
        let run = |seed: u64| {
            let (server, client) = Endpoint::pair();
            let plan = FaultPlan::seeded(seed).with_drop(0.5);
            let mut faulty = FaultyEndpoint::new(&server, plan.link_faults(2));
            for _ in 0..64 {
                client.send(&ping()).unwrap();
            }
            let mut delivered = Vec::new();
            loop {
                match faulty.recv_timeout(Duration::from_millis(5)) {
                    Ok(_) => delivered.push(true),
                    Err(TransportError::Timeout) => break,
                    Err(e) => panic!("unexpected {e:?}"),
                }
            }
            (delivered.len(), faulty.fault_stats())
        };
        assert_eq!(run(42), run(42), "same seed must inject the same faults");
        let (kept_a, _) = run(42);
        let (kept_b, _) = run(43);
        // Not a hard guarantee, but with 64 Bernoulli(0.5) draws two seeds
        // virtually never agree exactly; a mismatch proves the seed matters.
        assert!(kept_a != kept_b || kept_a != 32, "different seeds should differ");
    }

    #[test]
    fn plan_validation_rejects_bad_rates() {
        assert!(FaultPlan::none().validate().is_ok());
        assert!(FaultPlan::none().with_drop(1.5).validate().is_err());
        assert!(FaultPlan::none().with_corruption(-0.1).validate().is_err());
    }

    #[test]
    fn wrap_links_covers_every_endpoint() {
        let a = Endpoint::pair();
        let b = Endpoint::pair();
        let ends = vec![a.0, b.0];
        let plan = FaultPlan::seeded(9).with_dead_link(1, 0);
        let mut wrapped = plan.wrap_links(&ends);
        assert_eq!(wrapped.len(), 2);
        assert!(wrapped[0].send(&ping()).is_ok());
        assert!(matches!(wrapped[1].send(&ping()), Err(TransportError::Disconnected)));
    }

    #[test]
    fn is_zero_matches_builders() {
        assert!(FaultPlan::none().is_zero());
        assert!(!FaultPlan::none().with_drop(0.1).is_zero());
        assert!(!FaultPlan::none().with_dead_link(0, 5).is_zero());
    }
}
