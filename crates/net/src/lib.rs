// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Distributed-runtime substrate for the PLOS reproduction.
//!
//! The paper's Sec. VI-E runs distributed PLOS on a real testbed (Nexus 5
//! phones + a 3.4 GHz server). This crate replaces the physical network with
//! an in-process star topology that preserves everything the evaluation
//! measures:
//!
//! * [`codec`] — a byte-exact, length-prefixed binary wire format for model
//!   parameters, so message *sizes* are real (Fig. 13 reports KB/user);
//! * [`message`] — the PLOS protocol messages: the server's per-round
//!   broadcast of `(w0, u_t)` and the clients' `(w_t, v_t, ξ_t)` updates.
//!   Raw sensory data has no message type at all — the type system enforces
//!   the paper's privacy claim that only model parameters travel;
//! * [`transport`] — mpsc duplex endpoints with per-endpoint
//!   byte/message counters;
//! * [`node`] — star-topology construction and a scoped-thread client
//!   runner;
//! * [`fault`] — deterministic, seed-driven fault injection
//!   (drop/delay/duplicate/reorder/corrupt/dead-link) wrapped around the
//!   transport, so the fault-tolerant server can be exercised under
//!   reproducible chaos;
//! * [`metrics`] — traffic snapshots and an energy model (J/byte + J/flop);
//! * [`cost`] — device compute profiles (server vs smartphone) used to
//!   rescale measured wall-clock into device-equivalent running time
//!   (Fig. 12).

pub mod codec;
pub mod cost;
pub mod fault;
pub mod message;
pub mod metrics;
pub mod node;
pub mod sim;
pub mod transport;

pub use codec::CodecError;
pub use cost::DeviceProfile;
pub use fault::{DeadLink, FaultPlan, FaultStats, FaultyEndpoint, LinkFaults};
pub use message::Message;
pub use metrics::{EnergyModel, TrafficStats};
pub use node::{star, StarNetwork};
pub use sim::LinkModel;
pub use transport::{Endpoint, TransportError};
