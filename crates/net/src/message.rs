//! The distributed-PLOS protocol messages.
//!
//! One round of Algorithm 2 exchanges exactly two message kinds between the
//! server and each user: the server *scatters* the global hyperplane and the
//! user's scaled dual (`w0`, `u_t`, Eq. 23), and the user *gathers back* its
//! local solution (`w_t`, `v_t`, `ξ_t`, Eq. 22). The enum deliberately has
//! **no variant that could carry raw samples** — the privacy property the
//! paper claims is enforced by the protocol's type.

use crate::codec::{self, CodecError, WIRE_VERSION};
use bytes::{BufMut, Bytes, BytesMut};
use plos_linalg::Vector;

/// A wire message of the distributed-PLOS protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Server → user: start ADMM round `round` with the current global
    /// hyperplane and this user's scaled dual.
    Broadcast {
        /// ADMM iteration counter.
        round: u32,
        /// Global hyperplane `w0`.
        w0: Vector,
        /// Scaled dual `u_t` for the receiving user.
        u_t: Vector,
    },
    /// User → server: the local subproblem solution of Eq. (22).
    ClientUpdate {
        /// ADMM iteration this update answers.
        round: u32,
        /// Sender's user index `t`.
        user: u32,
        /// Personalized hyperplane `w_t`.
        w_t: Vector,
        /// Personal bias `v_t = w_t − w0` estimate.
        v_t: Vector,
        /// Slack value `ξ_t` (enters the objective, Eq. 23).
        xi_t: f64,
    },
    /// Server → user: begin a new CCCP round — re-linearize `|w_t·x|` around
    /// the current local hyperplane (Algorithm 2, step 7).
    CccpAdvance {
        /// CCCP outer-iteration counter.
        cccp_round: u32,
    },
    /// Server → user: run one multi-start refinement pass against the final
    /// global hyperplane and report the refined local model.
    Refine {
        /// Refinement round counter.
        round: u32,
        /// Current global hyperplane to anchor the refinement.
        w0: Vector,
    },
    /// Server → user: training finished, terminate.
    Shutdown,
    /// Server → user: the cohort shrank (devices were evicted after
    /// permanent failures); rescale every `T`-dependent quantity — notably
    /// the `Σ_k γ_kt ≤ T/2λ` dual cap via `κ = λ/T` — to the new size.
    RosterUpdate {
        /// Number of devices still participating.
        t_count: u32,
    },
    /// Server → user: a resumed server re-seeds this device's solver state
    /// from a checkpoint. Carries only the device's own CCCP anchor `w_t`
    /// — a quantity the device itself sent earlier — never another user's
    /// state and never raw samples, preserving the privacy property.
    Restore {
        /// Communication round of the restore handshake.
        round: u32,
        /// Cohort size at the checkpoint.
        t_count: u32,
        /// The device's hyperplane at the start of the interrupted CCCP
        /// round (its sign-linearization anchor).
        w_t: Vector,
    },
}

const TAG_BROADCAST: u8 = 1;
const TAG_CLIENT_UPDATE: u8 = 2;
const TAG_CCCP_ADVANCE: u8 = 3;
const TAG_SHUTDOWN: u8 = 4;
const TAG_REFINE: u8 = 5;
const TAG_ROSTER_UPDATE: u8 = 6;
const TAG_RESTORE: u8 = 7;

impl Message {
    /// Encodes the message to its wire representation.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u8(WIRE_VERSION);
        match self {
            Message::Broadcast { round, w0, u_t } => {
                buf.put_u8(TAG_BROADCAST);
                buf.put_u32_le(*round);
                codec::put_vector(&mut buf, w0);
                codec::put_vector(&mut buf, u_t);
            }
            Message::ClientUpdate { round, user, w_t, v_t, xi_t } => {
                buf.put_u8(TAG_CLIENT_UPDATE);
                buf.put_u32_le(*round);
                buf.put_u32_le(*user);
                codec::put_vector(&mut buf, w_t);
                codec::put_vector(&mut buf, v_t);
                buf.put_f64_le(*xi_t);
            }
            Message::CccpAdvance { cccp_round } => {
                buf.put_u8(TAG_CCCP_ADVANCE);
                buf.put_u32_le(*cccp_round);
            }
            Message::Refine { round, w0 } => {
                buf.put_u8(TAG_REFINE);
                buf.put_u32_le(*round);
                codec::put_vector(&mut buf, w0);
            }
            Message::Shutdown => {
                buf.put_u8(TAG_SHUTDOWN);
            }
            Message::RosterUpdate { t_count } => {
                buf.put_u8(TAG_ROSTER_UPDATE);
                buf.put_u32_le(*t_count);
            }
            Message::Restore { round, t_count, w_t } => {
                buf.put_u8(TAG_RESTORE);
                buf.put_u32_le(*round);
                buf.put_u32_le(*t_count);
                codec::put_vector(&mut buf, w_t);
            }
        }
        buf.freeze()
    }

    /// Decodes a message from its wire representation.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on version mismatch, unknown tag, or
    /// truncated payload.
    pub fn decode(mut bytes: Bytes) -> Result<Message, CodecError> {
        let version = codec::get_u8(&mut bytes)?;
        if version != WIRE_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let tag = codec::get_u8(&mut bytes)?;
        match tag {
            TAG_BROADCAST => Ok(Message::Broadcast {
                round: codec::get_u32(&mut bytes)?,
                w0: codec::get_vector(&mut bytes)?,
                u_t: codec::get_vector(&mut bytes)?,
            }),
            TAG_CLIENT_UPDATE => Ok(Message::ClientUpdate {
                round: codec::get_u32(&mut bytes)?,
                user: codec::get_u32(&mut bytes)?,
                w_t: codec::get_vector(&mut bytes)?,
                v_t: codec::get_vector(&mut bytes)?,
                xi_t: codec::get_f64(&mut bytes)?,
            }),
            TAG_CCCP_ADVANCE => {
                Ok(Message::CccpAdvance { cccp_round: codec::get_u32(&mut bytes)? })
            }
            TAG_REFINE => Ok(Message::Refine {
                round: codec::get_u32(&mut bytes)?,
                w0: codec::get_vector(&mut bytes)?,
            }),
            TAG_SHUTDOWN => Ok(Message::Shutdown),
            TAG_ROSTER_UPDATE => Ok(Message::RosterUpdate { t_count: codec::get_u32(&mut bytes)? }),
            TAG_RESTORE => Ok(Message::Restore {
                round: codec::get_u32(&mut bytes)?,
                t_count: codec::get_u32(&mut bytes)?,
                w_t: codec::get_vector(&mut bytes)?,
            }),
            other => Err(CodecError::UnknownTag(other)),
        }
    }

    /// Exact encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        2 + match self {
            Message::Broadcast { w0, u_t, .. } => {
                4 + codec::vector_wire_len(w0) + codec::vector_wire_len(u_t)
            }
            Message::ClientUpdate { w_t, v_t, .. } => {
                4 + 4 + codec::vector_wire_len(w_t) + codec::vector_wire_len(v_t) + 8
            }
            Message::CccpAdvance { .. } => 4,
            Message::Refine { w0, .. } => 4 + codec::vector_wire_len(w0),
            Message::Shutdown => 0,
            Message::RosterUpdate { .. } => 4,
            Message::Restore { w_t, .. } => 4 + 4 + codec::vector_wire_len(w_t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(m: Message) {
        let encoded = m.encode();
        assert_eq!(encoded.len(), m.wire_len(), "wire_len must match encoding");
        let decoded = Message::decode(encoded).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn broadcast_round_trip() {
        round_trip(Message::Broadcast {
            round: 7,
            w0: Vector::from(vec![1.0, -2.0, 3.5]),
            u_t: Vector::from(vec![0.25, 0.0, -9.0]),
        });
    }

    #[test]
    fn client_update_round_trip() {
        round_trip(Message::ClientUpdate {
            round: 3,
            user: 42,
            w_t: Vector::from(vec![0.1, 0.2]),
            v_t: Vector::from(vec![-0.1, 0.3]),
            xi_t: 1.75,
        });
    }

    #[test]
    fn control_messages_round_trip() {
        round_trip(Message::CccpAdvance { cccp_round: 2 });
        round_trip(Message::Shutdown);
        round_trip(Message::Refine { round: 3, w0: Vector::from(vec![1.0, -0.5]) });
        round_trip(Message::RosterUpdate { t_count: 11 });
    }

    #[test]
    fn restore_round_trip() {
        round_trip(Message::Restore {
            round: 9,
            t_count: 5,
            w_t: Vector::from(vec![0.5, -0.25, 8.0]),
        });
        round_trip(Message::Restore { round: 0, t_count: 1, w_t: Vector::zeros(0) });
    }

    #[test]
    fn restore_truncation_rejected() {
        let m = Message::Restore { round: 2, t_count: 4, w_t: Vector::from(vec![1.0, 2.0]) };
        let full = m.encode();
        for cut in 1..full.len() {
            let sliced = full.slice(0..cut);
            assert!(Message::decode(sliced).is_err(), "decoding a {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn empty_vectors_round_trip() {
        round_trip(Message::Broadcast { round: 0, w0: Vector::zeros(0), u_t: Vector::zeros(0) });
    }

    #[test]
    fn bad_version_rejected() {
        let mut raw = Message::Shutdown.encode().to_vec();
        raw[0] = 99;
        assert_eq!(Message::decode(Bytes::from(raw)).unwrap_err(), CodecError::BadVersion(99));
    }

    #[test]
    fn unknown_tag_rejected() {
        let raw = vec![WIRE_VERSION, 0xAB];
        assert_eq!(Message::decode(Bytes::from(raw)).unwrap_err(), CodecError::UnknownTag(0xAB));
    }

    #[test]
    fn truncation_rejected() {
        let m = Message::Broadcast {
            round: 1,
            w0: Vector::from(vec![1.0, 2.0, 3.0]),
            u_t: Vector::zeros(3),
        };
        let full = m.encode();
        for cut in 1..full.len() {
            let sliced = full.slice(0..cut);
            assert!(Message::decode(sliced).is_err(), "decoding a {cut}-byte prefix should fail");
        }
    }

    #[test]
    fn message_size_scales_with_dimension_only() {
        // Fig. 13's claim: per-user message size is independent of the
        // number of users — it depends only on the model dimension.
        let size = |d: usize| {
            Message::Broadcast { round: 0, w0: Vector::zeros(d), u_t: Vector::zeros(d) }.wire_len()
        };
        assert_eq!(size(10), 2 + 4 + 2 * (4 + 80));
        assert!(size(20) > size(10));
    }
}
