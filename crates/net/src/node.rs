//! Star-topology construction and client-thread execution.
//!
//! Distributed PLOS has one server and `T` user devices that communicate
//! only with the server (Fig. 1). [`star`] builds the `T` counted duplex
//! links; [`StarNetwork::run_clients`] runs one closure per client on its
//! own scoped thread while the caller plays the server on the current
//! thread — mirroring the paper's deployment where phones compute in
//! parallel.

use crate::transport::Endpoint;

/// The two sides of a star topology: `server[t]` is connected to
/// `clients[t]`.
#[derive(Debug)]
pub struct StarNetwork {
    /// Server-side endpoints, indexed by user.
    pub server: Vec<Endpoint>,
    /// Client-side endpoints, indexed by user.
    pub clients: Vec<Endpoint>,
}

/// Builds a star with `num_clients` links.
///
/// # Panics
///
/// Panics if `num_clients == 0`.
pub fn star(num_clients: usize) -> StarNetwork {
    assert!(num_clients > 0, "a star needs at least one client");
    let mut server = Vec::with_capacity(num_clients);
    let mut clients = Vec::with_capacity(num_clients);
    for _ in 0..num_clients {
        let (s, c) = Endpoint::pair();
        server.push(s);
        clients.push(c);
    }
    StarNetwork { server, clients }
}

impl StarNetwork {
    /// Number of client links.
    pub fn num_clients(&self) -> usize {
        self.server.len()
    }

    /// Runs `client_fn(t, endpoint)` for every client on its own
    /// `std::thread::scope` thread while executing
    /// `server_fn(&server_endpoints)` on the calling thread. Returns the
    /// server closure's output together with every client's output (indexed
    /// by user).
    ///
    /// Consumes the network: endpoints move into the closures.
    ///
    /// # Panics
    ///
    /// Propagates panics from the server or any client thread.
    pub fn run_clients<S, C, SR, CR>(self, server_fn: S, client_fn: C) -> (SR, Vec<CR>)
    where
        S: FnOnce(&[Endpoint]) -> SR,
        C: Fn(usize, Endpoint) -> CR + Sync,
        CR: Send,
    {
        let StarNetwork { server, clients } = self;
        let client_fn = &client_fn;
        std::thread::scope(|scope| {
            let handles: Vec<_> = clients
                .into_iter()
                .enumerate()
                .map(|(t, endpoint)| scope.spawn(move || client_fn(t, endpoint)))
                .collect();
            let server_result = server_fn(&server);
            // Drop the server endpoints so stray clients see Disconnected
            // rather than hanging, then join.
            drop(server);
            let client_results = handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect();
            (server_result, client_results)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Message;

    #[test]
    fn star_has_matching_sides() {
        let net = star(5);
        assert_eq!(net.num_clients(), 5);
        assert_eq!(net.server.len(), 5);
        assert_eq!(net.clients.len(), 5);
    }

    #[test]
    fn echo_round_over_all_links() {
        let net = star(4);
        let (server_out, client_out) = net.run_clients(
            |server_ends| {
                // Send each client its index; collect the echoes.
                for (t, end) in server_ends.iter().enumerate() {
                    end.send(&Message::CccpAdvance { cccp_round: t as u32 }).unwrap();
                }
                server_ends
                    .iter()
                    .map(|end| match end.recv().unwrap() {
                        Message::CccpAdvance { cccp_round } => cccp_round,
                        other => panic!("unexpected {other:?}"),
                    })
                    .collect::<Vec<_>>()
            },
            |_t, endpoint| {
                let msg = endpoint.recv().unwrap();
                endpoint.send(&msg).unwrap();
                endpoint.stats().bytes_sent
            },
        );
        assert_eq!(server_out, vec![0, 1, 2, 3]);
        assert!(client_out.iter().all(|&b| b > 0));
    }

    #[test]
    fn client_results_are_indexed_by_user() {
        let net = star(3);
        let (_, results) = net.run_clients(
            |server_ends| {
                for end in server_ends {
                    end.send(&Message::Shutdown).unwrap();
                }
            },
            |t, endpoint| {
                let _ = endpoint.recv().unwrap();
                t * 10
            },
        );
        assert_eq!(results, vec![0, 10, 20]);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_star_panics() {
        let _ = star(0);
    }
}
