//! Traffic snapshots and the energy model.
//!
//! The paper claims distributed PLOS "is efficient in terms of energy,
//! computation, and communication costs". Communication is counted exactly
//! by the transport layer; energy is modeled with standard per-byte radio
//! costs plus per-FLOP compute cost, so experiments can report joules per
//! user per training run.

/// Snapshot of one endpoint's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes written to the link.
    pub bytes_sent: u64,
    /// Bytes read from the link (successfully decoded frames only).
    pub bytes_received: u64,
    /// Messages written to the link.
    pub messages_sent: u64,
    /// Messages read from the link (successfully decoded frames only).
    pub messages_received: u64,
    /// Frames that arrived but failed to decode (corruption, truncation,
    /// version skew). Excluded from the byte/message counters above.
    pub decode_failures: u64,
}

impl TrafficStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Total messages moved in either direction.
    pub fn total_messages(&self) -> u64 {
        self.messages_sent + self.messages_received
    }

    /// Total traffic in kilobytes (the unit of Fig. 13).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Component-wise sum of two snapshots.
    pub fn merged(&self, other: &TrafficStats) -> TrafficStats {
        TrafficStats {
            bytes_sent: self.bytes_sent + other.bytes_sent,
            bytes_received: self.bytes_received + other.bytes_received,
            messages_sent: self.messages_sent + other.messages_sent,
            messages_received: self.messages_received + other.messages_received,
            decode_failures: self.decode_failures + other.decode_failures,
        }
    }
}

/// Energy model for a mobile device: radio cost per byte plus compute cost
/// per floating-point operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Joules per transmitted byte.
    pub joules_per_byte_tx: f64,
    /// Joules per received byte.
    pub joules_per_byte_rx: f64,
    /// Joules per floating-point operation.
    pub joules_per_flop: f64,
}

impl EnergyModel {
    /// Nominal smartphone WiFi + CPU figures (order-of-magnitude: WiFi
    /// ≈ 5 µJ/byte, mobile CPU ≈ 1 nJ/FLOP).
    pub fn smartphone_wifi() -> Self {
        EnergyModel {
            joules_per_byte_tx: 5.0e-6,
            joules_per_byte_rx: 5.0e-6,
            joules_per_flop: 1.0e-9,
        }
    }

    /// Energy in joules for a traffic snapshot plus `flops` of computation.
    pub fn energy_joules(&self, traffic: &TrafficStats, flops: f64) -> f64 {
        traffic.bytes_sent as f64 * self.joules_per_byte_tx
            + traffic.bytes_received as f64 * self.joules_per_byte_rx
            + flops * self.joules_per_flop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_kb() {
        let s = TrafficStats {
            bytes_sent: 1024,
            bytes_received: 2048,
            messages_sent: 3,
            messages_received: 4,
            ..Default::default()
        };
        assert_eq!(s.total_bytes(), 3072);
        assert_eq!(s.total_messages(), 7);
        assert_eq!(s.total_kb(), 3.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let a = TrafficStats {
            bytes_sent: 1,
            bytes_received: 2,
            messages_sent: 3,
            messages_received: 4,
            ..Default::default()
        };
        let b = TrafficStats {
            bytes_sent: 10,
            bytes_received: 20,
            messages_sent: 30,
            messages_received: 40,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            TrafficStats {
                bytes_sent: 11,
                bytes_received: 22,
                messages_sent: 33,
                messages_received: 44,
                ..Default::default()
            }
        );
    }

    #[test]
    fn energy_combines_radio_and_compute() {
        let model =
            EnergyModel { joules_per_byte_tx: 2.0, joules_per_byte_rx: 1.0, joules_per_flop: 0.5 };
        let traffic = TrafficStats { bytes_sent: 3, bytes_received: 4, ..Default::default() };
        // 3*2 + 4*1 + 10*0.5 = 15
        assert_eq!(model.energy_joules(&traffic, 10.0), 15.0);
    }

    #[test]
    fn smartphone_model_is_positive() {
        let m = EnergyModel::smartphone_wifi();
        assert!(m.joules_per_byte_tx > 0.0);
        assert!(m.joules_per_byte_rx > 0.0);
        assert!(m.joules_per_flop > 0.0);
    }

    #[test]
    fn default_stats_are_zero() {
        let s = TrafficStats::default();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_kb(), 0.0);
    }
}
