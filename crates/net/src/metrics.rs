//! Traffic snapshots and the energy model.
//!
//! The paper claims distributed PLOS "is efficient in terms of energy,
//! computation, and communication costs". Communication is counted exactly
//! by the transport layer; energy is modeled with standard per-byte radio
//! costs plus per-FLOP compute cost, so experiments can report joules per
//! user per training run.

/// Snapshot of one endpoint's traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficStats {
    /// Bytes written to the link.
    pub bytes_sent: u64,
    /// Bytes read from the link (successfully decoded frames only).
    pub bytes_received: u64,
    /// Messages written to the link.
    pub messages_sent: u64,
    /// Messages read from the link (successfully decoded frames only).
    pub messages_received: u64,
    /// Frames that arrived but failed to decode (corruption, truncation,
    /// version skew). Excluded from the byte/message counters above.
    pub decode_failures: u64,
    /// Bytes of frames that arrived but failed to decode. The radio spent
    /// energy receiving them, so the energy model counts them as rx bytes
    /// even though they never became messages.
    pub bytes_discarded: u64,
}

impl TrafficStats {
    /// Total bytes moved in either direction (saturating: long chaos runs
    /// must never wrap counters into nonsense telemetry).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent.saturating_add(self.bytes_received)
    }

    /// Total messages moved in either direction (saturating).
    pub fn total_messages(&self) -> u64 {
        self.messages_sent.saturating_add(self.messages_received)
    }

    /// Total traffic in kilobytes (the unit of Fig. 13).
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }

    /// Component-wise saturating sum of two snapshots.
    pub fn merged(&self, other: &TrafficStats) -> TrafficStats {
        TrafficStats {
            bytes_sent: self.bytes_sent.saturating_add(other.bytes_sent),
            bytes_received: self.bytes_received.saturating_add(other.bytes_received),
            messages_sent: self.messages_sent.saturating_add(other.messages_sent),
            messages_received: self.messages_received.saturating_add(other.messages_received),
            decode_failures: self.decode_failures.saturating_add(other.decode_failures),
            bytes_discarded: self.bytes_discarded.saturating_add(other.bytes_discarded),
        }
    }
}

/// Energy model for a mobile device: radio cost per byte plus compute cost
/// per floating-point operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Joules per transmitted byte.
    pub joules_per_byte_tx: f64,
    /// Joules per received byte.
    pub joules_per_byte_rx: f64,
    /// Joules per floating-point operation.
    pub joules_per_flop: f64,
}

impl EnergyModel {
    /// Nominal smartphone WiFi + CPU figures (order-of-magnitude: WiFi
    /// ≈ 5 µJ/byte, mobile CPU ≈ 1 nJ/FLOP).
    pub fn smartphone_wifi() -> Self {
        EnergyModel {
            joules_per_byte_tx: 5.0e-6,
            joules_per_byte_rx: 5.0e-6,
            joules_per_flop: 1.0e-9,
        }
    }

    /// Energy in joules for a traffic snapshot plus `flops` of computation.
    ///
    /// Discarded bytes (frames corrupted in flight) are charged at the rx
    /// rate: the radio received them even though the codec threw them away.
    pub fn energy_joules(&self, traffic: &TrafficStats, flops: f64) -> f64 {
        let rx_bytes = traffic.bytes_received as f64 + traffic.bytes_discarded as f64;
        traffic.bytes_sent as f64 * self.joules_per_byte_tx
            + rx_bytes * self.joules_per_byte_rx
            + flops * self.joules_per_flop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_kb() {
        let s = TrafficStats {
            bytes_sent: 1024,
            bytes_received: 2048,
            messages_sent: 3,
            messages_received: 4,
            ..Default::default()
        };
        assert_eq!(s.total_bytes(), 3072);
        assert_eq!(s.total_messages(), 7);
        assert_eq!(s.total_kb(), 3.0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let a = TrafficStats {
            bytes_sent: 1,
            bytes_received: 2,
            messages_sent: 3,
            messages_received: 4,
            ..Default::default()
        };
        let b = TrafficStats {
            bytes_sent: 10,
            bytes_received: 20,
            messages_sent: 30,
            messages_received: 40,
            ..Default::default()
        };
        let m = a.merged(&b);
        assert_eq!(
            m,
            TrafficStats {
                bytes_sent: 11,
                bytes_received: 22,
                messages_sent: 33,
                messages_received: 44,
                ..Default::default()
            }
        );
    }

    #[test]
    fn energy_combines_radio_and_compute() {
        let model =
            EnergyModel { joules_per_byte_tx: 2.0, joules_per_byte_rx: 1.0, joules_per_flop: 0.5 };
        let traffic = TrafficStats { bytes_sent: 3, bytes_received: 4, ..Default::default() };
        // 3*2 + 4*1 + 10*0.5 = 15
        assert_eq!(model.energy_joules(&traffic, 10.0), 15.0);
    }

    #[test]
    fn energy_charges_discarded_bytes_at_rx_rate() {
        // A corrupted frame costs the radio the same joules as a clean one;
        // excluding it under-counted Fig. 13's overhead numbers.
        let model =
            EnergyModel { joules_per_byte_tx: 2.0, joules_per_byte_rx: 1.0, joules_per_flop: 0.0 };
        let traffic = TrafficStats {
            bytes_sent: 3,
            bytes_received: 4,
            bytes_discarded: 5,
            ..Default::default()
        };
        // 3*2 + (4+5)*1 = 15
        assert_eq!(model.energy_joules(&traffic, 0.0), 15.0);
    }

    #[test]
    fn totals_and_merge_saturate_instead_of_wrapping() {
        let near_max = TrafficStats {
            bytes_sent: u64::MAX - 10,
            bytes_received: 100,
            messages_sent: u64::MAX,
            messages_received: 1,
            decode_failures: u64::MAX,
            bytes_discarded: u64::MAX - 1,
        };
        assert_eq!(near_max.total_bytes(), u64::MAX);
        assert_eq!(near_max.total_messages(), u64::MAX);
        let merged = near_max.merged(&near_max);
        assert_eq!(merged.bytes_sent, u64::MAX);
        assert_eq!(merged.messages_sent, u64::MAX);
        assert_eq!(merged.decode_failures, u64::MAX);
        assert_eq!(merged.bytes_discarded, u64::MAX);
        // Small components still add exactly.
        assert_eq!(merged.messages_received, 2);
        assert_eq!(merged.bytes_received, 200);
    }

    #[test]
    fn smartphone_model_is_positive() {
        let m = EnergyModel::smartphone_wifi();
        assert!(m.joules_per_byte_tx > 0.0);
        assert!(m.joules_per_byte_rx > 0.0);
        assert!(m.joules_per_flop > 0.0);
    }

    #[test]
    fn default_stats_are_zero() {
        let s = TrafficStats::default();
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.total_kb(), 0.0);
    }
}
