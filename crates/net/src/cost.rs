//! Device compute profiles for running-time modeling.
//!
//! The paper's Fig. 12 compares wall-clock training time of centralized PLOS
//! on a 3.4 GHz server against distributed PLOS on Nexus 5 phones. This
//! reproduction executes both algorithms on the same host, measures real
//! wall-clock, and rescales each side by a device profile: the ratio of the
//! reference machine's effective FLOP rate to the target device's. That
//! preserves exactly what the figure shows — *how the two curves scale with
//! the number of users* — without the physical testbed.

use std::time::Duration;

/// Effective compute capability of a device class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// Sustained effective FLOP rate (double precision, single thread).
    pub flops_per_sec: f64,
}

impl DeviceProfile {
    /// The paper's server: Intel Core 3.4 GHz, 16 GB RAM. Effective scalar
    /// double-precision throughput of such a core is a few GFLOP/s.
    pub fn server() -> Self {
        DeviceProfile { name: "server-3.4GHz", flops_per_sec: 4.0e9 }
    }

    /// The paper's client device: LG Nexus 5 (Snapdragon 800). Sustained
    /// scalar FP throughput is roughly an order of magnitude below the
    /// server core.
    pub fn nexus5() -> Self {
        DeviceProfile { name: "nexus5", flops_per_sec: 4.0e8 }
    }

    /// The machine the benchmarks actually run on; used as the reference
    /// for rescaling. Treated as equivalent to the paper's server.
    pub fn reference() -> Self {
        DeviceProfile { name: "reference-host", flops_per_sec: 4.0e9 }
    }

    /// Rescales a duration measured on `measured_on` into the equivalent
    /// duration on `self`.
    ///
    /// # Panics
    ///
    /// Panics if either FLOP rate is not positive.
    pub fn rescale_from(&self, measured: Duration, measured_on: &DeviceProfile) -> Duration {
        assert!(self.flops_per_sec > 0.0, "target FLOP rate must be positive");
        assert!(measured_on.flops_per_sec > 0.0, "source FLOP rate must be positive");
        let factor = measured_on.flops_per_sec / self.flops_per_sec;
        Duration::from_secs_f64(measured.as_secs_f64() * factor)
    }

    /// Time this device needs for `flops` floating-point operations.
    pub fn time_for_flops(&self, flops: f64) -> Duration {
        assert!(flops >= 0.0, "flops must be non-negative");
        Duration::from_secs_f64(flops / self.flops_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phone_is_slower_than_server() {
        assert!(DeviceProfile::nexus5().flops_per_sec < DeviceProfile::server().flops_per_sec);
    }

    #[test]
    fn rescaling_identity() {
        let server = DeviceProfile::server();
        let d = Duration::from_millis(150);
        assert_eq!(server.rescale_from(d, &server), d);
    }

    #[test]
    fn rescaling_to_slower_device_inflates_time() {
        let server = DeviceProfile::server();
        let phone = DeviceProfile::nexus5();
        let d = Duration::from_millis(100);
        let on_phone = phone.rescale_from(d, &server);
        let ratio = on_phone.as_secs_f64() / d.as_secs_f64();
        assert!((ratio - 10.0).abs() < 1e-9, "ratio={ratio}");
    }

    #[test]
    fn rescaling_round_trips() {
        let server = DeviceProfile::server();
        let phone = DeviceProfile::nexus5();
        let d = Duration::from_secs_f64(1.25);
        let there = phone.rescale_from(d, &server);
        let back = server.rescale_from(there, &phone);
        assert!((back.as_secs_f64() - d.as_secs_f64()).abs() < 1e-12);
    }

    #[test]
    fn time_for_flops() {
        let dev = DeviceProfile { name: "x", flops_per_sec: 1e6 };
        assert_eq!(dev.time_for_flops(2e6), Duration::from_secs(2));
        assert_eq!(dev.time_for_flops(0.0), Duration::ZERO);
    }
}
