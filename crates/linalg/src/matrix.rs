//! Dense row-major `f64` matrix.
//!
//! Used for Gram matrices in the dual QPs, affinity matrices in spectral
//! clustering, and rotation matrices in the synthetic data generators.

use crate::error::LinalgError;
use crate::vector::Vector;
use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix.
///
/// ```
/// use plos_linalg::Matrix;
/// let m = Matrix::identity(2);
/// assert_eq!(m[(0, 0)], 1.0);
/// assert_eq!(m[(0, 1)], 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Ragged`] if rows have differing lengths and
    /// [`LinalgError::Empty`] if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Err(LinalgError::Empty { op: "from_rows" });
        }
        let cols = rows.first().map_or(0, Vec::len);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::Ragged { first: cols, offending: r.len(), row: i });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix { rows: rows.len(), cols, data })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::DimensionMismatch {
                op: "from_row_major",
                expected: rows * cols,
                actual: data.len(),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Matrix::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index {r} out of range");
        // Allowed: the assert above plus the row-major storage invariant
        // (data.len() == rows * cols) keep this range in bounds.
        #[allow(clippy::indexing_slicing)]
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= nrows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row index {r} out of range");
        // Allowed: the assert above plus the row-major storage invariant
        // (data.len() == rows * cols) keep this range in bounds.
        #[allow(clippy::indexing_slicing)]
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies one column into a [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `c >= ncols()`.
    pub fn column(&self, c: usize) -> Vector {
        assert!(c < self.cols, "column index {c} out of range");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix–vector product `self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    pub fn matvec(&self, x: &Vector) -> Vector {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows).map(|r| crate::kernels::dot(self.row(r), x.as_slice())).collect()
    }

    /// Matrix–matrix product `self · rhs`.
    ///
    /// Cache-blocked i-k-j kernel: the `k` loop is tiled so a panel of
    /// `rhs` rows stays resident in cache while every output row streams
    /// over it. Per output entry the `k` accumulation order is unchanged,
    /// so results are bit-identical to the unblocked textbook loop.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if inner dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                expected: self.cols,
                actual: rhs.rows,
            });
        }
        // 64 rows of rhs × up-to-thousands of columns keeps each panel
        // within L2 for the matrix sizes the workspace uses (Gram and
        // affinity matrices up to a few thousand on a side).
        const K_BLOCK: usize = 64;
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for kb in (0..self.cols).step_by(K_BLOCK) {
            let k_end = (kb + K_BLOCK).min(self.cols);
            for i in 0..self.rows {
                let a_panel = self.row(i).iter().enumerate().skip(kb).take(k_end - kb);
                let out_row = out.row_mut(i);
                for (k, &a) in a_panel {
                    if a == 0.0 {
                        continue;
                    }
                    crate::kernels::axpy(out_row, a, rhs.row(k));
                }
            }
        }
        Ok(out)
    }

    /// In-place symmetric rank-1 update `self += alpha · x xᵀ`.
    ///
    /// Computes the upper triangle only and mirrors it into the lower
    /// triangle, halving the flops and memory traffic relative to the dense
    /// outer-product loop. `self` must already be symmetric (e.g. a Gram
    /// matrix) — the lower triangle is overwritten with the mirrored upper
    /// triangle.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the matrix is not
    /// square or `x.len() != nrows()`.
    pub fn sym_rank1_update(&mut self, alpha: f64, x: &Vector) -> Result<(), LinalgError> {
        if !self.is_square() || x.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "sym_rank1_update",
                expected: self.rows,
                actual: x.len(),
            });
        }
        let n = self.rows;
        for i in 0..n {
            let step = alpha * x[i];
            // Row i, columns i..n: self[i, i..] += (alpha * x[i]) * x[i..].
            let row_tail = self.row_mut(i).iter_mut().skip(i);
            for (dst, xj) in row_tail.zip(x.iter().skip(i)) {
                *dst += step * xj;
            }
        }
        for i in 1..n {
            for j in 0..i {
                self[(i, j)] = self[(j, i)];
            }
        }
        Ok(())
    }

    /// Transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Checks symmetry up to absolute tolerance `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|a| a * a).sum::<f64>().sqrt()
    }

    /// Sum of diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Adds `alpha` to every diagonal entry (Tikhonov / ridge shift).
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, alpha: f64) {
        assert!(self.is_square(), "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += alpha;
        }
    }

    /// Quadratic form `xᵀ · self · x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows()` or the matrix is not square.
    pub fn quadratic_form(&self, x: &Vector) -> f64 {
        assert!(self.is_square(), "quadratic_form requires a square matrix");
        x.dot(&self.matvec(x))
    }

    /// Flat row-major view of the storage.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// 2-D rotation matrix for angle `theta` (radians).
    ///
    /// Used by the paper's synthetic-data experiment, where each simulated
    /// user is a rotation of a base Gaussian dataset (Sec. VI-D).
    pub fn rotation2d(theta: f64) -> Matrix {
        let (s, c) = theta.sin_cos();
        Matrix { rows: 2, cols: 2, data: vec![c, -s, s, c] }
    }

    /// 3-D rotation matrix from intrinsic Z-Y-X Euler angles (radians).
    ///
    /// Used by the IMU simulator to model free device placement/orientation.
    pub fn rotation3d(yaw: f64, pitch: f64, roll: f64) -> Matrix {
        let (sy, cy) = yaw.sin_cos();
        let (sp, cp) = pitch.sin_cos();
        let (sr, cr) = roll.sin_cos();
        Matrix {
            rows: 3,
            cols: 3,
            data: vec![
                cy * cp,
                cy * sp * sr - sy * cr,
                cy * sp * cr + sy * sr,
                sy * cp,
                sy * sp * sr + cy * cr,
                sy * sp * cr - cy * sr,
                -sp,
                cp * sr,
                cp * cr,
            ],
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        // Allowed: the assert above plus the row-major storage invariant
        // (data.len() == rows * cols) keep this offset in bounds.
        #[allow(clippy::indexing_slicing)]
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index ({r},{c}) out of range");
        // Allowed: the assert above plus the row-major storage invariant
        // (data.len() == rows * cols) keep this offset in bounds.
        #[allow(clippy::indexing_slicing)]
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.column(1).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    fn ragged_rows_error() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::Ragged { .. }));
        assert!(matches!(Matrix::from_rows(&[]).unwrap_err(), LinalgError::Empty { .. }));
    }

    #[test]
    fn from_row_major_checks_size() {
        assert!(Matrix::from_row_major(2, 2, vec![0.0; 4]).is_ok());
        assert!(Matrix::from_row_major(2, 2, vec![0.0; 3]).is_err());
    }

    #[test]
    fn identity_and_diagonal() {
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert_eq!(d[(1, 1)], 2.0);
        assert_eq!(d[(0, 1)], 0.0);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let y = m.matvec(&Vector::from(vec![1.0, 1.0]));
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn matmul_works_and_checks_dims() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[vec![3.0], vec![4.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.nrows(), 1);
        assert_eq!(c[(0, 0)], 11.0);
        assert!(b.matmul(&b).is_err());
    }

    #[test]
    fn blocked_matmul_matches_naive_reference() {
        // Sizes straddling the k-block boundary, including non-multiples.
        for &(m, k, n) in &[(3usize, 5usize, 4usize), (7, 64, 3), (5, 65, 9), (4, 130, 6)] {
            let mut state = (m * 1000 + k * 10 + n) as u64;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
            };
            let a = Matrix::from_row_major(m, k, (0..m * k).map(|_| next()).collect()).unwrap();
            let b = Matrix::from_row_major(k, n, (0..k * n).map(|_| next()).collect()).unwrap();
            let fast = a.matmul(&b).unwrap();
            let mut naive = Matrix::zeros(m, n);
            for i in 0..m {
                for kk in 0..k {
                    for j in 0..n {
                        naive[(i, j)] += a[(i, kk)] * b[(kk, j)];
                    }
                }
            }
            for i in 0..m {
                for j in 0..n {
                    assert!(
                        (fast[(i, j)] - naive[(i, j)]).abs() < 1e-12,
                        "({m},{k},{n}) entry ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn sym_rank1_update_matches_outer_product() {
        let mut g =
            Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, -1.0], vec![0.5, -1.0, 2.0]])
                .unwrap();
        let x = Vector::from(vec![1.0, -2.0, 0.5]);
        let mut want = g.clone();
        for i in 0..3 {
            for j in 0..3 {
                want[(i, j)] += 0.7 * x[i] * x[j];
            }
        }
        g.sym_rank1_update(0.7, &x).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((g[(i, j)] - want[(i, j)]).abs() < 1e-12, "entry ({i},{j})");
            }
        }
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn sym_rank1_update_rejects_bad_dims() {
        let mut rect = Matrix::zeros(2, 3);
        assert!(rect.sym_rank1_update(1.0, &Vector::zeros(2)).is_err());
        let mut sq = Matrix::zeros(2, 2);
        assert!(sq.sym_rank1_update(1.0, &Vector::zeros(3)).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        let t = a.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        assert!(s.is_symmetric(1e-12));
        let ns = Matrix::from_rows(&[vec![2.0, 1.0], vec![0.0, 2.0]]).unwrap();
        assert!(!ns.is_symmetric(1e-12));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1e-12));
    }

    #[test]
    fn quadratic_form_matches_manual() {
        let q = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
        let x = Vector::from(vec![1.0, 2.0]);
        assert_eq!(q.quadratic_form(&x), 2.0 + 12.0);
    }

    #[test]
    fn add_diagonal_shifts() {
        let mut m = Matrix::zeros(2, 2);
        m.add_diagonal(0.5);
        assert_eq!(m[(0, 0)], 0.5);
        assert_eq!(m[(1, 1)], 0.5);
        assert_eq!(m[(0, 1)], 0.0);
    }

    #[test]
    fn rotation2d_is_orthonormal() {
        let r = Matrix::rotation2d(std::f64::consts::FRAC_PI_3);
        let rt_r = r.transpose().matmul(&r).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((rt_r[(i, j)] - expected).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rotation3d_is_orthonormal() {
        let r = Matrix::rotation3d(0.3, -0.7, 1.2);
        let rt_r = r.transpose().matmul(&r).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((rt_r[(i, j)] - expected).abs() < 1e-12, "entry ({i},{j})");
            }
        }
    }

    #[test]
    fn frobenius_norm() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, 4.0]]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", Matrix::identity(2)).contains("Matrix 2x2"));
    }
}
