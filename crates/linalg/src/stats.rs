//! Descriptive statistics over `f64` slices.
//!
//! The paper's feature pipeline (Sec. VI-B) extracts mean, standard
//! deviation, median absolute deviation, max, min, energy, and interquartile
//! range from every windowed sensor signal. These helpers implement those
//! statistics once, shared by the sensing crate and the experiment harness.

use crate::error::LinalgError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "mean" });
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation (divides by `n`, matching typical
/// sensing-feature implementations).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64, LinalgError> {
    let m = mean(xs)?;
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
    Ok(var.sqrt())
}

/// Median (average of the two central order statistics for even lengths).
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64, LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "median" });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let upper = sorted.get(n / 2).copied().ok_or(LinalgError::Empty { op: "median" })?;
    if n % 2 == 1 {
        Ok(upper)
    } else {
        let lower = sorted.get(n / 2 - 1).copied().ok_or(LinalgError::Empty { op: "median" })?;
        Ok(0.5 * (lower + upper))
    }
}

/// Median absolute deviation: `median(|xᵢ − median(x)|)`.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn median_absolute_deviation(xs: &[f64]) -> Result<f64, LinalgError> {
    let med = median(xs)?;
    let devs: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&devs)
}

/// Maximum value.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn max(xs: &[f64]) -> Result<f64, LinalgError> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.max(x))))
        .ok_or(LinalgError::Empty { op: "max" })
}

/// Minimum value.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn min(xs: &[f64]) -> Result<f64, LinalgError> {
    xs.iter()
        .copied()
        .fold(None, |acc: Option<f64>, x| Some(acc.map_or(x, |a| a.min(x))))
        .ok_or(LinalgError::Empty { op: "min" })
}

/// Signal energy: mean of squared samples.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn energy(xs: &[f64]) -> Result<f64, LinalgError> {
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "energy" });
    }
    Ok(xs.iter().map(|x| x * x).sum::<f64>() / xs.len() as f64)
}

/// Linear-interpolated percentile, `p ∈ [0, 100]`.
///
/// # Errors
///
/// * [`LinalgError::Empty`] for an empty slice.
/// * [`LinalgError::OutOfRange`] if `p` is outside `[0, 100]` or not finite.
pub fn percentile(xs: &[f64], p: f64) -> Result<f64, LinalgError> {
    if !(0.0..=100.0).contains(&p) {
        return Err(LinalgError::OutOfRange { op: "percentile", value: p });
    }
    if xs.is_empty() {
        return Err(LinalgError::Empty { op: "percentile" });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = (lo + 1).min(n - 1);
    let frac = rank - lo as f64;
    let xlo = sorted.get(lo).copied().ok_or(LinalgError::Empty { op: "percentile" })?;
    let xhi = sorted.get(hi).copied().ok_or(LinalgError::Empty { op: "percentile" })?;
    Ok(xlo * (1.0 - frac) + xhi * frac)
}

/// Interquartile range: `percentile(75) − percentile(25)`.
///
/// # Errors
///
/// Returns [`LinalgError::Empty`] for an empty slice.
pub fn interquartile_range(xs: &[f64]) -> Result<f64, LinalgError> {
    Ok(percentile(xs, 75.0)? - percentile(xs, 25.0)?)
}

/// Sample Pearson correlation between two equal-length slices.
///
/// # Errors
///
/// * [`LinalgError::Empty`] if the slices are empty.
/// * [`LinalgError::DimensionMismatch`] if lengths differ.
///
/// Returns `0.0` when either input is constant (zero variance).
pub fn correlation(xs: &[f64], ys: &[f64]) -> Result<f64, LinalgError> {
    if xs.len() != ys.len() {
        return Err(LinalgError::DimensionMismatch {
            op: "correlation",
            expected: xs.len(),
            actual: ys.len(),
        });
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        num += (x - mx) * (y - my);
        dx += (x - mx) * (x - mx);
        dy += (y - my) * (y - my);
    }
    if dx == 0.0 || dy == 0.0 {
        return Ok(0.0);
    }
    Ok(num / (dx.sqrt() * dy.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: &[f64] = &[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(XS).unwrap(), 5.0);
        assert_eq!(std_dev(XS).unwrap(), 2.0);
        assert!(mean(&[]).is_err());
        assert!(std_dev(&[]).is_err());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]).unwrap(), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]).unwrap(), 2.5);
        assert!(median(&[]).is_err());
    }

    #[test]
    fn mad_known_value() {
        // median = 4.5, |x - 4.5| = [2.5,0.5,0.5,0.5,0.5,0.5,2.5,4.5], median = 0.5
        assert_eq!(median_absolute_deviation(XS).unwrap(), 0.5);
    }

    #[test]
    fn min_max_energy() {
        assert_eq!(max(XS).unwrap(), 9.0);
        assert_eq!(min(XS).unwrap(), 2.0);
        assert_eq!(energy(&[1.0, 2.0, 2.0]).unwrap(), 3.0);
        assert!(max(&[]).is_err());
        assert!(min(&[]).is_err());
        assert!(energy(&[]).is_err());
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&xs, 100.0).unwrap(), 4.0);
        assert_eq!(percentile(&xs, 50.0).unwrap(), 2.5);
        assert_eq!(percentile(&[7.0], 31.0).unwrap(), 7.0);
        assert!(percentile(&[], 50.0).is_err());
    }

    #[test]
    fn percentile_rejects_out_of_range() {
        assert!(matches!(
            percentile(&[1.0], 101.0),
            Err(LinalgError::OutOfRange { op: "percentile", .. })
        ));
        assert!(percentile(&[1.0], -0.5).is_err());
        assert!(percentile(&[1.0], f64::NAN).is_err());
    }

    #[test]
    fn iqr_known_value() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(interquartile_range(&xs).unwrap(), 2.0);
    }

    #[test]
    fn correlation_behaviour() {
        let xs = [1.0, 2.0, 3.0];
        let up = [2.0, 4.0, 6.0];
        let down = [3.0, 2.0, 1.0];
        assert!((correlation(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((correlation(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(correlation(&xs, &[5.0, 5.0, 5.0]).unwrap(), 0.0);
        assert!(correlation(&xs, &[1.0]).is_err());
        assert!(correlation(&[], &[]).is_err());
    }

    #[test]
    fn statistics_are_translation_aware() {
        // std, MAD and IQR are translation-invariant; mean/max/min shift.
        let shifted: Vec<f64> = XS.iter().map(|x| x + 10.0).collect();
        assert_eq!(std_dev(&shifted).unwrap(), std_dev(XS).unwrap());
        assert_eq!(
            median_absolute_deviation(&shifted).unwrap(),
            median_absolute_deviation(XS).unwrap()
        );
        assert_eq!(interquartile_range(&shifted).unwrap(), interquartile_range(XS).unwrap());
        assert_eq!(mean(&shifted).unwrap(), mean(XS).unwrap() + 10.0);
    }
}
