//! Dense `f64` vector with the arithmetic the PLOS solvers need.
//!
//! Hyperplanes (`w0`, `w_t`, biases `v_t`), feature vectors, and dual
//! iterates are all [`Vector`]s. The type is a thin, owned wrapper around
//! `Vec<f64>` with explicit, dimension-checked arithmetic.

use crate::error::LinalgError;
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

/// Dense, owned `f64` vector.
///
/// ```
/// use plos_linalg::Vector;
/// let v = Vector::zeros(3);
/// assert_eq!(v.len(), 3);
/// assert_eq!(v.norm(), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Vector(Vec<f64>);

impl Vector {
    /// Creates a vector of `n` zeros.
    pub fn zeros(n: usize) -> Self {
        Vector(vec![0.0; n])
    }

    /// Creates a vector of `n` copies of `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        Vector(vec![value; n])
    }

    /// Creates a standard basis vector `e_i` of dimension `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for dimension {n}");
        let mut v = Vector::zeros(n);
        v[i] = 1.0;
        v
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Borrows the components as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.0
    }

    /// Consumes the vector, returning the underlying storage.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }

    /// Iterator over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.0.iter()
    }

    /// Mutable iterator over the components.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.0.iter_mut()
    }

    /// Inner product `⟨self, other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ; use [`Vector::try_dot`] for a
    /// fallible variant.
    pub fn dot(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: dimension mismatch");
        crate::kernels::dot(&self.0, &other.0)
    }

    /// Fallible inner product.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] when the dimensions differ.
    pub fn try_dot(&self, other: &Vector) -> Result<f64, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                expected: self.len(),
                actual: other.len(),
            });
        }
        Ok(self.dot(other))
    }

    /// Euclidean norm `‖self‖₂`.
    pub fn norm(&self) -> f64 {
        self.norm_squared().sqrt()
    }

    /// Squared Euclidean norm `‖self‖₂²`.
    pub fn norm_squared(&self) -> f64 {
        self.0.iter().map(|a| a * a).sum()
    }

    /// L1 norm `Σ|xᵢ|`.
    pub fn norm_l1(&self) -> f64 {
        self.0.iter().map(|a| a.abs()).sum()
    }

    /// Maximum absolute component (`‖self‖∞`), or `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.0.iter().fold(0.0_f64, |m, a| m.max(a.abs()))
    }

    /// In-place `self += alpha * other` (BLAS `axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy(&mut self, alpha: f64, other: &Vector) {
        assert_eq!(self.len(), other.len(), "axpy: dimension mismatch");
        crate::kernels::axpy(&mut self.0, alpha, &other.0);
    }

    /// Fused `self += alpha * other` returning `⟨self_updated, other⟩`.
    ///
    /// Single memory sweep for the axpy-then-dot idiom (see
    /// [`crate::kernels::axpy_dot`]); used by the QP solver's incremental
    /// gradient maintenance.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn axpy_dot(&mut self, alpha: f64, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "axpy_dot: dimension mismatch");
        crate::kernels::axpy_dot(&mut self.0, alpha, &other.0)
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale_mut(&mut self, alpha: f64) {
        for a in &mut self.0 {
            *a *= alpha;
        }
    }

    /// Returns `alpha * self` as a new vector.
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector(self.0.iter().map(|a| alpha * a).collect())
    }

    /// Squared Euclidean distance `‖self − other‖²`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    pub fn distance_squared(&self, other: &Vector) -> f64 {
        assert_eq!(self.len(), other.len(), "distance: dimension mismatch");
        self.0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }

    /// Euclidean distance `‖self − other‖`.
    pub fn distance(&self, other: &Vector) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Sets every component to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.0.iter_mut().for_each(|a| *a = 0.0);
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|a| a.is_finite())
    }

    /// Component-wise map producing a new vector.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> Vector {
        Vector(self.0.iter().copied().map(f).collect())
    }

    /// Concatenates `self` and `other` into a new vector.
    pub fn concat(&self, other: &Vector) -> Vector {
        let mut out = Vec::with_capacity(self.len() + other.len());
        out.extend_from_slice(&self.0);
        out.extend_from_slice(&other.0);
        Vector(out)
    }

    /// Appends a single component, returning the extended vector.
    ///
    /// Used to augment feature vectors with a constant `1.0` so hyperplanes
    /// carry a bias term (footnote 1 of the paper).
    pub fn with_appended(&self, value: f64) -> Vector {
        let mut out = self.0.clone();
        out.push(value);
        Vector(out)
    }
}

impl From<Vec<f64>> for Vector {
    fn from(v: Vec<f64>) -> Self {
        Vector(v)
    }
}

impl From<&[f64]> for Vector {
    fn from(v: &[f64]) -> Self {
        Vector(v.to_vec())
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Vector(iter.into_iter().collect())
    }
}

impl Extend<f64> for Vector {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl AsRef<[f64]> for Vector {
    fn as_ref(&self) -> &[f64] {
        &self.0
    }
}

impl Index<usize> for Vector {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        // Allowed: `Vector`'s indexing contract is to panic on an
        // out-of-range index, delegating to the slice bounds check.
        #[allow(clippy::indexing_slicing)]
        &self.0[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        // Allowed: `Vector`'s indexing contract is to panic on an
        // out-of-range index, delegating to the slice bounds check.
        #[allow(clippy::indexing_slicing)]
        &mut self.0[i]
    }
}

impl Add<&Vector> for &Vector {
    type Output = Vector;
    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "add: dimension mismatch");
        Vector(self.0.iter().zip(&rhs.0).map(|(a, b)| a + b).collect())
    }
}

impl Sub<&Vector> for &Vector {
    type Output = Vector;
    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "sub: dimension mismatch");
        Vector(self.0.iter().zip(&rhs.0).map(|(a, b)| a - b).collect())
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;
    fn mul(self, rhs: f64) -> Vector {
        self.scaled(rhs)
    }
}

impl Neg for &Vector {
    type Output = Vector;
    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        self.axpy(1.0, rhs);
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        self.axpy(-1.0, rhs);
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(data: &[f64]) -> Vector {
        Vector::from(data)
    }

    #[test]
    fn zeros_and_filled() {
        assert_eq!(Vector::zeros(4).as_slice(), &[0.0; 4]);
        assert_eq!(Vector::filled(2, 3.5).as_slice(), &[3.5, 3.5]);
        assert!(Vector::zeros(0).is_empty());
    }

    #[test]
    fn basis_vector() {
        let e1 = Vector::basis(3, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn dot_products() {
        assert_eq!(v(&[1.0, 2.0]).dot(&v(&[3.0, 4.0])), 11.0);
        assert_eq!(v(&[]).dot(&v(&[])), 0.0);
    }

    #[test]
    fn try_dot_mismatch() {
        let err = v(&[1.0]).try_dot(&v(&[1.0, 2.0])).unwrap_err();
        assert_eq!(err, LinalgError::DimensionMismatch { op: "dot", expected: 1, actual: 2 });
    }

    #[test]
    fn norms() {
        let x = v(&[3.0, -4.0]);
        assert_eq!(x.norm(), 5.0);
        assert_eq!(x.norm_squared(), 25.0);
        assert_eq!(x.norm_l1(), 7.0);
        assert_eq!(x.norm_inf(), 4.0);
        assert_eq!(Vector::zeros(0).norm_inf(), 0.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut x = v(&[1.0, 1.0]);
        x.axpy(2.0, &v(&[1.0, -1.0]));
        assert_eq!(x.as_slice(), &[3.0, -1.0]);
        x.scale_mut(0.5);
        assert_eq!(x.as_slice(), &[1.5, -0.5]);
        assert_eq!(x.scaled(2.0).as_slice(), &[3.0, -1.0]);
    }

    #[test]
    fn axpy_dot_matches_separate_ops() {
        let mut fused = v(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let mut separate = fused.clone();
        let x = v(&[2.0, -1.0, 0.5, 0.0, 3.0]);
        let r = fused.axpy_dot(2.0, &x);
        separate.axpy(2.0, &x);
        assert_eq!(fused, separate);
        assert!((r - separate.dot(&x)).abs() < 1e-12);
    }

    #[test]
    fn distances() {
        let a = v(&[0.0, 0.0]);
        let b = v(&[3.0, 4.0]);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_squared(&b), 25.0);
    }

    #[test]
    fn operators() {
        let a = v(&[1.0, 2.0]);
        let b = v(&[3.0, 4.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 6.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn concat_and_append() {
        let a = v(&[1.0]);
        let b = v(&[2.0, 3.0]);
        assert_eq!(a.concat(&b).as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(a.with_appended(9.0).as_slice(), &[1.0, 9.0]);
    }

    #[test]
    fn map_and_finiteness() {
        let a = v(&[1.0, -2.0]);
        assert_eq!(a.map(f64::abs).as_slice(), &[1.0, 2.0]);
        assert!(a.is_finite());
        assert!(!v(&[f64::NAN]).is_finite());
        assert!(!v(&[f64::INFINITY]).is_finite());
    }

    #[test]
    fn collect_and_iterate() {
        let a: Vector = (0..3).map(|i| i as f64).collect();
        assert_eq!(a.as_slice(), &[0.0, 1.0, 2.0]);
        let sum: f64 = (&a).into_iter().sum();
        assert_eq!(sum, 3.0);
        let doubled: Vec<f64> = a.into_iter().map(|x| 2.0 * x).collect();
        assert_eq!(doubled, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", Vector::zeros(0)), "[]");
        assert!(format!("{}", Vector::from(vec![1.0, 2.0])).contains("1.0"));
    }

    #[test]
    fn fill_zero_keeps_len() {
        let mut a = v(&[1.0, 2.0]);
        a.fill_zero();
        assert_eq!(a.as_slice(), &[0.0, 0.0]);
    }
}
