//! Symmetric eigendecomposition via the cyclic Jacobi rotation method.
//!
//! Spectral clustering (the paper's *Group* baseline, Sec. VI-A) needs the
//! bottom eigenvectors of a graph Laplacian. Affinity matrices in the PLOS
//! experiments are small (one row per user, ≤ 100), where Jacobi iteration is
//! simple, numerically robust, and plenty fast.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Eigendecomposition `A = V · diag(λ) · Vᵀ` of a symmetric matrix.
///
/// Eigenpairs are sorted by ascending eigenvalue, which is the order spectral
/// clustering consumes them in.
///
/// ```
/// use plos_linalg::{Matrix, SymmetricEigen};
/// # fn main() -> Result<(), plos_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]])?;
/// let eig = SymmetricEigen::decompose(&a)?;
/// assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-10);
/// assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    eigenvalues: Vec<f64>,
    /// Column `j` of this matrix is the eigenvector for `eigenvalues[j]`.
    eigenvectors: Matrix,
}

/// Maximum number of full Jacobi sweeps before reporting non-convergence.
const MAX_SWEEPS: usize = 100;

impl SymmetricEigen {
    /// Decomposes a symmetric matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NoConvergence`] if the off-diagonal mass does not
    ///   vanish within the sweep budget (does not happen for well-formed
    ///   symmetric input).
    ///
    /// Symmetry is enforced by averaging `a` with its transpose, so tiny
    /// asymmetries from floating-point accumulation are tolerated.
    pub fn decompose(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        let n = a.nrows();
        // Work on the symmetrized copy.
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                m[(i, j)] = 0.5 * (a[(i, j)] + a[(j, i)]);
            }
        }
        let mut v = Matrix::identity(n);
        let tol = 1e-14 * m.frobenius_norm().max(1.0);

        for sweep in 0..MAX_SWEEPS {
            let mut off = 0.0;
            for p in 0..n {
                for q in (p + 1)..n {
                    off += m[(p, q)] * m[(p, q)];
                }
            }
            if off.sqrt() <= tol {
                return Ok(Self::finish(m, v));
            }
            let _ = sweep;
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = m[(p, q)];
                    if apq.abs() <= tol / (n as f64) {
                        continue;
                    }
                    let app = m[(p, p)];
                    let aqq = m[(q, q)];
                    let theta = (aqq - app) / (2.0 * apq);
                    // Stable computation of tan(rotation angle).
                    let t = if theta >= 0.0 {
                        1.0 / (theta + (1.0 + theta * theta).sqrt())
                    } else {
                        1.0 / (theta - (1.0 + theta * theta).sqrt())
                    };
                    let c = 1.0 / (1.0 + t * t).sqrt();
                    let s = t * c;

                    // Apply the rotation to rows/columns p and q of m.
                    for k in 0..n {
                        let mkp = m[(k, p)];
                        let mkq = m[(k, q)];
                        m[(k, p)] = c * mkp - s * mkq;
                        m[(k, q)] = s * mkp + c * mkq;
                    }
                    for k in 0..n {
                        let mpk = m[(p, k)];
                        let mqk = m[(q, k)];
                        m[(p, k)] = c * mpk - s * mqk;
                        m[(q, k)] = s * mpk + c * mqk;
                    }
                    // Accumulate eigenvectors.
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        // One final tolerance check before giving up.
        let mut off = 0.0;
        let n2 = m.nrows();
        for p in 0..n2 {
            for q in (p + 1)..n2 {
                off += m[(p, q)] * m[(p, q)];
            }
        }
        if off.sqrt() <= tol * 10.0 {
            Ok(Self::finish(m, v))
        } else {
            Err(LinalgError::NoConvergence { iterations: MAX_SWEEPS })
        }
    }

    fn finish(m: Matrix, v: Matrix) -> Self {
        let n = m.nrows();
        let mut idx: Vec<usize> = (0..n).collect();
        let raw: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
        idx.sort_by(|&a, &b| {
            f64::total_cmp(raw.get(a).unwrap_or(&f64::NAN), raw.get(b).unwrap_or(&f64::NAN))
        });
        let eigenvalues: Vec<f64> = idx.iter().filter_map(|&i| raw.get(i).copied()).collect();
        let mut eigenvectors = Matrix::zeros(n, n);
        for (new_col, &old_col) in idx.iter().enumerate() {
            for r in 0..n {
                eigenvectors[(r, new_col)] = v[(r, old_col)];
            }
        }
        SymmetricEigen { eigenvalues, eigenvectors }
    }

    /// Eigenvalues in ascending order.
    pub fn eigenvalues(&self) -> &[f64] {
        &self.eigenvalues
    }

    /// Eigenvector matrix; column `j` pairs with `eigenvalues()[j]`.
    pub fn eigenvectors(&self) -> &Matrix {
        &self.eigenvectors
    }

    /// Copies the eigenvector for the `j`-th smallest eigenvalue.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn eigenvector(&self, j: usize) -> Vector {
        self.eigenvectors.column(j)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix, tol: f64) {
        let eig = SymmetricEigen::decompose(a).unwrap();
        let n = a.nrows();
        for j in 0..n {
            let v = eig.eigenvector(j);
            let av = a.matvec(&v);
            let lv = v.scaled(eig.eigenvalues()[j]);
            assert!(av.distance(&lv) < tol, "eigenpair {j} residual too large");
            assert!((v.norm() - 1.0).abs() < tol, "eigenvector {j} not unit norm");
        }
        // Ascending order.
        for j in 1..n {
            assert!(eig.eigenvalues()[j] >= eig.eigenvalues()[j - 1] - tol);
        }
    }

    #[test]
    fn two_by_two_known_values() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let eig = SymmetricEigen::decompose(&a).unwrap();
        assert!((eig.eigenvalues()[0] - 1.0).abs() < 1e-10);
        assert!((eig.eigenvalues()[1] - 3.0).abs() < 1e-10);
        check_decomposition(&a, 1e-9);
    }

    #[test]
    fn diagonal_matrix_eigenvalues_sorted() {
        let a = Matrix::from_diagonal(&[3.0, -1.0, 2.0]);
        let eig = SymmetricEigen::decompose(&a).unwrap();
        assert_eq!(eig.eigenvalues(), &[-1.0, 2.0, 3.0]);
    }

    #[test]
    fn random_symmetric_matrices_decompose() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for n in [2usize, 3, 5, 8, 12] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in i..n {
                    let x: f64 = rng.gen_range(-2.0..2.0);
                    a[(i, j)] = x;
                    a[(j, i)] = x;
                }
            }
            check_decomposition(&a, 1e-8);
        }
    }

    #[test]
    fn eigenvalue_sum_equals_trace() {
        let a =
            Matrix::from_rows(&[vec![1.0, 0.5, 0.2], vec![0.5, 2.0, -0.3], vec![0.2, -0.3, 3.0]])
                .unwrap();
        let eig = SymmetricEigen::decompose(&a).unwrap();
        let sum: f64 = eig.eigenvalues().iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            SymmetricEigen::decompose(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare { .. }
        ));
    }

    #[test]
    fn laplacian_has_zero_eigenvalue_with_constant_eigenvector() {
        // Path graph Laplacian on 4 nodes.
        let a = Matrix::from_rows(&[
            vec![1.0, -1.0, 0.0, 0.0],
            vec![-1.0, 2.0, -1.0, 0.0],
            vec![0.0, -1.0, 2.0, -1.0],
            vec![0.0, 0.0, -1.0, 1.0],
        ])
        .unwrap();
        let eig = SymmetricEigen::decompose(&a).unwrap();
        assert!(eig.eigenvalues()[0].abs() < 1e-10);
        let v0 = eig.eigenvector(0);
        // Constant eigenvector (up to sign): all entries equal.
        for i in 1..4 {
            assert!((v0[i] - v0[0]).abs() < 1e-8);
        }
    }
}
