//! Unrolled slice-level kernels behind the [`Vector`](crate::Vector) and
//! [`Matrix`](crate::Matrix) hot paths.
//!
//! The QP coordinate-descent sweeps and the Gram-row construction in the
//! dual solver spend nearly all their time in `dot` and `axpy` over dense
//! `f64` slices. These kernels use four independent accumulators /
//! four-way-unrolled bodies so the compiler can keep four FMA chains in
//! flight instead of serializing on a single accumulator dependency.
//!
//! Reduction order is fixed (lane-wise accumulators combined as
//! `(acc0 + acc1) + (acc2 + acc3)` plus the tail), so results are
//! deterministic run-to-run and independent of thread count — they just
//! differ from a strictly sequential left fold by ordinary rounding.

/// Dot product over slices with four independent accumulators.
///
/// Trailing elements beyond the longest common multiple-of-4 prefix are
/// folded sequentially into a tail term. If the slices have different
/// lengths the extra elements of the longer slice are ignored; callers
/// enforce dimension agreement.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc0 = 0.0_f64;
    let mut acc1 = 0.0_f64;
    let mut acc2 = 0.0_f64;
    let mut acc3 = 0.0_f64;
    let mut ca = a.chunks_exact(4);
    let mut cb = b.chunks_exact(4);
    while let (Some(&[a0, a1, a2, a3]), Some(&[b0, b1, b2, b3])) = (ca.next(), cb.next()) {
        acc0 += a0 * b0;
        acc1 += a1 * b1;
        acc2 += a2 * b2;
        acc3 += a3 * b3;
    }
    let tail: f64 = ca.remainder().iter().zip(cb.remainder()).map(|(x, y)| x * y).sum();
    (acc0 + acc1) + (acc2 + acc3) + tail
}

/// Four-way-unrolled `y += alpha * x`.
///
/// If the slices have different lengths the extra elements of the longer
/// slice are ignored; callers enforce dimension agreement.
pub fn axpy(y: &mut [f64], alpha: f64, x: &[f64]) {
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    while let (Some([y0, y1, y2, y3]), Some(&[x0, x1, x2, x3])) = (cy.next(), cx.next()) {
        *y0 += alpha * x0;
        *y1 += alpha * x1;
        *y2 += alpha * x2;
        *y3 += alpha * x3;
    }
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
    }
}

/// Fused `y += alpha * x` returning `⟨y_updated, x⟩` in a single pass.
///
/// One memory sweep instead of two for the axpy-then-dot idiom used by the
/// incremental gradient maintenance in the QP solver. Same unrolling and
/// reduction order as [`dot`] / [`axpy`].
pub fn axpy_dot(y: &mut [f64], alpha: f64, x: &[f64]) -> f64 {
    let mut acc0 = 0.0_f64;
    let mut acc1 = 0.0_f64;
    let mut acc2 = 0.0_f64;
    let mut acc3 = 0.0_f64;
    let mut cy = y.chunks_exact_mut(4);
    let mut cx = x.chunks_exact(4);
    while let (Some([y0, y1, y2, y3]), Some(&[x0, x1, x2, x3])) = (cy.next(), cx.next()) {
        *y0 += alpha * x0;
        *y1 += alpha * x1;
        *y2 += alpha * x2;
        *y3 += alpha * x3;
        acc0 += *y0 * x0;
        acc1 += *y1 * x1;
        acc2 += *y2 * x2;
        acc3 += *y3 * x3;
    }
    let mut tail = 0.0_f64;
    for (yi, xi) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yi += alpha * xi;
        tail += *yi * xi;
    }
    (acc0 + acc1) + (acc2 + acc3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    // Deterministic pseudo-random data without pulling in a RNG dependency.
    fn lcg_data(n: usize, mut state: u64) -> Vec<f64> {
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
            })
            .collect()
    }

    #[test]
    fn dot_matches_reference_all_tail_lengths() {
        for n in 0..=19 {
            let a = lcg_data(n, 1);
            let b = lcg_data(n, 2);
            let got = dot(&a, &b);
            let want = seq_dot(&a, &b);
            assert!((got - want).abs() <= 1e-12 * (1.0 + want.abs()), "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn dot_exact_on_integral_data() {
        let a: Vec<f64> = (0..13).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..13).map(|i| (i % 5) as f64).collect();
        assert_eq!(dot(&a, &b), seq_dot(&a, &b));
    }

    #[test]
    fn axpy_matches_reference_all_tail_lengths() {
        for n in 0..=19 {
            let x = lcg_data(n, 3);
            let mut y = lcg_data(n, 4);
            let mut want = y.clone();
            for (w, xi) in want.iter_mut().zip(&x) {
                *w += 0.75 * xi;
            }
            axpy(&mut y, 0.75, &x);
            assert_eq!(y, want, "n={n}");
        }
    }

    #[test]
    fn axpy_dot_fuses_both_operations() {
        for n in 0..=19 {
            let x = lcg_data(n, 5);
            let mut y = lcg_data(n, 6);
            let mut y_ref = y.clone();
            axpy(&mut y_ref, -0.3, &x);
            let want = dot(&y_ref, &x);
            let got = axpy_dot(&mut y, -0.3, &x);
            assert_eq!(y, y_ref, "n={n}: updated vectors must agree exactly");
            assert!((got - want).abs() <= 1e-12 * (1.0 + want.abs()), "n={n}: {got} vs {want}");
        }
    }

    #[test]
    fn empty_slices_are_fine() {
        assert_eq!(dot(&[], &[]), 0.0);
        let mut y: Vec<f64> = vec![];
        axpy(&mut y, 2.0, &[]);
        assert_eq!(axpy_dot(&mut y, 2.0, &[]), 0.0);
    }
}
