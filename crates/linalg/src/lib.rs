// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Dense linear-algebra substrate for the PLOS reproduction.
//!
//! The PLOS paper (ICDCS 2018) relies on a handful of dense linear-algebra
//! primitives: vector arithmetic for the hyperplane updates, Gram matrices
//! for the dual quadratic programs, a symmetric eigensolver for the spectral
//! clustering used by the *Group* baseline, and simple descriptive statistics
//! for the sensing feature pipeline. This crate implements exactly that set,
//! with no external dependencies, so the whole workspace builds offline.
//!
//! # Quick start
//!
//! ```
//! use plos_linalg::{Vector, Matrix};
//!
//! let a = Vector::from(vec![1.0, 2.0, 3.0]);
//! let b = Vector::from(vec![4.0, 5.0, 6.0]);
//! assert_eq!(a.dot(&b), 32.0);
//!
//! let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
//! let x = m.matvec(&Vector::from(vec![1.0, 1.0]));
//! assert_eq!(x.as_slice(), &[2.0, 3.0]);
//! ```

pub mod cholesky;
pub mod eigen;
pub mod error;
pub mod kernels;
pub mod matrix;
pub mod solve;
pub mod stats;
pub mod vector;

pub use cholesky::Cholesky;
pub use eigen::SymmetricEigen;
pub use error::LinalgError;
pub use matrix::Matrix;
pub use solve::solve_linear_system;
pub use vector::Vector;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, LinalgError>;
