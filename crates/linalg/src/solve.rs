//! General dense linear solve via Gaussian elimination with partial pivoting.
//!
//! The PLOS duals are solved iteratively, but a direct solver is still needed
//! for small auxiliary systems (e.g. least-squares fits in the experiment
//! harness) and as an oracle in tests.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] if `a` is not square.
/// * [`LinalgError::DimensionMismatch`] if `b.len() != a.nrows()`.
/// * [`LinalgError::Singular`] if a pivot is numerically zero.
///
/// ```
/// use plos_linalg::{solve_linear_system, Matrix, Vector};
/// # fn main() -> Result<(), plos_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]])?;
/// let x = solve_linear_system(&a, &Vector::from(vec![5.0, 10.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
pub fn solve_linear_system(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { rows: a.nrows(), cols: a.ncols() });
    }
    let n = a.nrows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_linear_system",
            expected: n,
            actual: b.len(),
        });
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.clone();

    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = m[(col, col)].abs();
        for r in (col + 1)..n {
            if m[(r, col)].abs() > pivot_val {
                pivot_val = m[(r, col)].abs();
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(LinalgError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m[(col, c)];
                m[(col, c)] = m[(pivot_row, c)];
                m[(pivot_row, c)] = tmp;
            }
            let tmp = rhs[col];
            rhs[col] = rhs[pivot_row];
            rhs[pivot_row] = tmp;
        }
        // Eliminate below.
        for r in (col + 1)..n {
            let factor = m[(r, col)] / m[(col, col)];
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m[(col, c)];
                m[(r, c)] -= factor * v;
            }
            let v = rhs[col];
            rhs[r] -= factor * v;
        }
    }
    // Back substitution.
    let mut x = Vector::zeros(n);
    for r in (0..n).rev() {
        let mut sum = rhs[r];
        for c in (r + 1)..n {
            sum -= m[(r, c)] * x[c];
        }
        x[r] = sum / m[(r, r)];
    }
    Ok(x)
}

/// Solves the least-squares problem `min_x ‖A·x − b‖²` via the regularized
/// normal equations `(AᵀA + ridge·I)·x = Aᵀb`.
///
/// # Errors
///
/// Propagates errors from the inner linear solve; `ridge > 0` guarantees a
/// non-singular system for any `A`.
pub fn least_squares(a: &Matrix, b: &Vector, ridge: f64) -> Result<Vector, LinalgError> {
    if b.len() != a.nrows() {
        return Err(LinalgError::DimensionMismatch {
            op: "least_squares",
            expected: a.nrows(),
            actual: b.len(),
        });
    }
    let at = a.transpose();
    let mut ata = at.matmul(a)?;
    ata.add_diagonal(ridge);
    let atb = at.matvec(b);
    solve_linear_system(&ata, &atb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x = solve_linear_system(&Matrix::identity(3), &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solves_requiring_pivot() {
        // First pivot is zero, forcing a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve_linear_system(&a, &Vector::from(vec![2.0, 3.0])).unwrap();
        assert_eq!(x.as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn detects_singular() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert_eq!(solve_linear_system(&a, &Vector::zeros(2)).unwrap_err(), LinalgError::Singular);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(solve_linear_system(&Matrix::zeros(2, 3), &Vector::zeros(2)).is_err());
        assert!(solve_linear_system(&Matrix::identity(2), &Vector::zeros(3)).is_err());
    }

    #[test]
    fn random_systems_round_trip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for n in [1usize, 2, 4, 7] {
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-1.0..1.0);
                }
                a[(i, i)] += (n as f64) + 1.0; // diagonally dominant => nonsingular
            }
            let x_true: Vector = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let b = a.matvec(&x_true);
            let x = solve_linear_system(&a, &b).unwrap();
            assert!(x.distance(&x_true) < 1e-9, "n={n}");
        }
    }

    #[test]
    fn least_squares_recovers_line() {
        // Fit y = 2x + 1 from exact points using design matrix [x, 1].
        let a =
            Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 1.0], vec![2.0, 1.0], vec![3.0, 1.0]])
                .unwrap();
        let b = Vector::from(vec![1.0, 3.0, 5.0, 7.0]);
        let x = least_squares(&a, &b, 1e-12).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-6);
        assert!((x[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn least_squares_checks_dims() {
        assert!(least_squares(&Matrix::zeros(3, 2), &Vector::zeros(2), 1e-6).is_err());
    }
}
