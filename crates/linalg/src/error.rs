//! Error type shared by all fallible linear-algebra operations.

use std::fmt;

/// Error returned by fallible operations in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        actual: usize,
    },
    /// A matrix that must be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// A factorization requiring positive definiteness hit a non-positive pivot.
    NotPositiveDefinite {
        /// Index of the pivot that failed.
        pivot: usize,
    },
    /// A linear system was singular (or numerically so).
    Singular,
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
    /// The input container was empty where a non-empty one is required.
    Empty {
        /// Operation that required non-empty input.
        op: &'static str,
    },
    /// A scalar argument was outside its documented domain.
    OutOfRange {
        /// Operation that rejected the argument.
        op: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Ragged input: rows of differing lengths where a rectangle is required.
    Ragged {
        /// Length of the first row.
        first: usize,
        /// Length of the offending row.
        offending: usize,
        /// Index of the offending row.
        row: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, expected, actual } => {
                write!(f, "dimension mismatch in {op}: expected {expected}, got {actual}")
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
            LinalgError::Singular => write!(f, "matrix is singular"),
            LinalgError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
            LinalgError::Empty { op } => write!(f, "empty input to {op}"),
            LinalgError::OutOfRange { op, value } => {
                write!(f, "argument {value} out of range for {op}")
            }
            LinalgError::Ragged { first, offending, row } => {
                write!(f, "ragged rows: row 0 has {first} entries but row {row} has {offending}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<LinalgError> = vec![
            LinalgError::DimensionMismatch { op: "dot", expected: 3, actual: 2 },
            LinalgError::NotSquare { rows: 2, cols: 3 },
            LinalgError::NotPositiveDefinite { pivot: 1 },
            LinalgError::Singular,
            LinalgError::NoConvergence { iterations: 100 },
            LinalgError::Empty { op: "mean" },
            LinalgError::OutOfRange { op: "percentile", value: 101.0 },
            LinalgError::Ragged { first: 3, offending: 2, row: 1 },
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
            assert!(!format!("{c:?}").is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
