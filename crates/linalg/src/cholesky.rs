//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used to solve the small regularized normal-equation systems that appear
//! inside the working-set QPs, and as a positive-definiteness check in tests.

use crate::error::LinalgError;
use crate::matrix::Matrix;
use crate::vector::Vector;

/// Lower-triangular Cholesky factor `L` with `A = L·Lᵀ`.
///
/// ```
/// use plos_linalg::{Cholesky, Matrix, Vector};
/// # fn main() -> Result<(), plos_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&Vector::from(vec![6.0, 5.0]))?;
/// // verify A·x == b
/// let b = a.matvec(&x);
/// assert!((b[0] - 6.0).abs() < 1e-12 && (b[1] - 5.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is `<= 0` (the
    ///   matrix is indefinite or numerically singular).
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { rows: a.nrows(), cols: a.ncols() });
        }
        let n = a.nrows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(LinalgError::NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor.
    pub fn factor_l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` given the stored factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.l.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky solve",
                expected: n,
                actual: b.len(),
            });
        }
        // Forward substitution: L·y = b.
        let mut y = Vector::zeros(n);
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: Lᵀ·x = y.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the factored matrix, `log det A = 2·Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.nrows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

/// Returns `true` if `a` is symmetric positive-definite within `tol` symmetry
/// tolerance (checked by attempting a Cholesky factorization).
pub fn is_positive_definite(a: &Matrix, tol: f64) -> bool {
    a.is_symmetric(tol) && Cholesky::factor(a).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.2], vec![0.5, 0.2, 2.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let l = chol.factor_l();
        let llt = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd3();
        let chol = Cholesky::factor(&a).unwrap();
        let b = Vector::from(vec![1.0, -2.0, 0.5]);
        let x = chol.solve(&b).unwrap();
        let bb = a.matvec(&x);
        for i in 0..3 {
            assert!((bb[i] - b[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::factor(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite { .. }
        ));
    }

    #[test]
    fn rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Cholesky::factor(&a).unwrap_err(), LinalgError::NotSquare { .. }));
    }

    #[test]
    fn solve_checks_dimension() {
        let chol = Cholesky::factor(&Matrix::identity(2)).unwrap();
        assert!(chol.solve(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn log_det_identity_is_zero() {
        let chol = Cholesky::factor(&Matrix::identity(4)).unwrap();
        assert!(chol.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_diagonal() {
        let chol = Cholesky::factor(&Matrix::from_diagonal(&[2.0, 8.0])).unwrap();
        assert!((chol.log_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn positive_definite_probe() {
        assert!(is_positive_definite(&spd3(), 1e-12));
        let indef = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        assert!(!is_positive_definite(&indef, 1e-12));
        assert!(!is_positive_definite(&Matrix::zeros(2, 3), 1e-12));
    }
}
