//! Workspace automation driver.
//!
//! `cargo run -p xtask -- lint [--json]` runs the plos-lint analyzer over
//! every first-party Rust file and reports violations with machine-readable
//! rule IDs and spans. The analysis itself — lexer, syntax model, rule
//! engine, justification-directive grammar — lives in `crates/lint`; this
//! binary only resolves the workspace root, invokes the engine, and formats
//! the result.
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn usage() -> ExitCode {
    eprintln!("usage: cargo run -p xtask -- lint [--json]");
    eprintln!("       cargo run -p xtask -- rules");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let json = args.iter().any(|a| a == "--json");
            if args.len() > 1 + usize::from(json) {
                return usage();
            }
            run_lint(json)
        }
        Some("rules") => {
            for r in plos_lint::RULES {
                println!("{:3}  {:20}  {}", r.id, r.name, r.summary);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn run_lint(json: bool) -> ExitCode {
    let root = workspace_root();
    let violations = match plos_lint::lint_workspace(&root) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("xtask lint: failed to read workspace sources: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print_json(&violations);
    } else {
        for v in &violations {
            println!("{}:{}:{}: [{}] {}: {}", v.path, v.line, v.col, v.rule, v.name, v.message);
        }
    }
    if violations.is_empty() {
        if !json {
            println!("xtask lint: clean ({} rules)", plos_lint::RULES.len());
        }
        ExitCode::SUCCESS
    } else {
        if !json {
            eprintln!("xtask lint: {} violation(s)", violations.len());
        }
        ExitCode::FAILURE
    }
}

/// Minimal JSON encoding (no dependencies): a list of violation objects.
fn print_json(violations: &[plos_lint::Violation]) {
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":{},\"line\":{},\"col\":{},\"rule\":{},\"name\":{},\"message\":{}}}",
            json_str(&v.path),
            v.line,
            v.col,
            json_str(v.rule),
            json_str(v.name),
            json_str(&v.message)
        ));
    }
    out.push(']');
    println!("{out}");
}

fn json_str(s: &str) -> String {
    let mut out = String::from("\"");
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
