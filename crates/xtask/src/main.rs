//! Project-specific static analysis, run as `cargo run -p xtask -- lint`.
//!
//! Complements the `[workspace.lints]` table in the root `Cargo.toml` with
//! invariants clippy cannot express. Eight rules, all textual and
//! zero-dependency so the gate works offline:
//!
//! 1. **std-sync** — no `std::sync::Mutex`/`RwLock` in first-party library
//!    code; the workspace mandates `parking_lot` (no lock poisoning, so no
//!    `unwrap` on every acquisition).
//! 2. **thread-spawn** — no bare `thread::spawn`/`thread::scope` outside
//!    `crates/exec` and `crates/net`; solver concurrency flows through the
//!    deterministic fork-join pool and network concurrency through the
//!    simulated transport, so results stay reproducible and byte/energy
//!    accounting stays exact.
//! 3. **solver-result** — every public solver entry point (`solve*`,
//!    `fit*`, `train*`) returns `Result`; panicking trainers poison the
//!    distributed protocol.
//! 4. **float-cast** — no truncating `f64 as usize` casts in
//!    `crates/sensing`; sample counts must round explicitly
//!    (`.round()`/`.floor()`/`.ceil()`) before casting.
//! 5. **allow-justification** — every `#[allow(...)]` (and file-level
//!    `#![allow(...)]`/`cfg_attr` variant) is immediately preceded by a
//!    `//` comment justifying the suppression.
//! 6. **endpoint-recv** — in library code that talks to the transport
//!    (references `plos_net`) outside `crates/net` itself, no bare
//!    blocking `recv()` and no `expect` chained onto a send/recv: every
//!    wait runs under a timeout (`recv_timeout` + `RetryPolicy`) and every
//!    transport failure propagates as `CoreError::Transport`, so a dead
//!    device can never hang or panic a trainer.
//! 7. **no-stdout** — no `println!`/`eprintln!` in library crates; all
//!    diagnostics flow through `plos-obs` (structured, switchable,
//!    bit-parity-safe). Binaries (`src/bin/`) and the figure harness
//!    `crates/bench` print tables by design and are exempt.
//! 8. **ckpt-write** — no direct `fs::write`/`File::create` in library
//!    crates outside `crates/ckpt` (the atomic, digest-framed store) and
//!    `crates/obs` (the trace sink). Training state that bypasses
//!    `plos-ckpt` has no version header, no integrity digests, and no
//!    atomic rename — a crash mid-write would corrupt a resume. Binaries
//!    write figures and reports and are exempt.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation at a file location.
struct Violation {
    path: PathBuf,
    line: usize,
    rule: &'static str,
    message: String,
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => run_lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let files = first_party_rust_files(&root);
    if files.is_empty() {
        eprintln!("xtask: no Rust sources found under {}", root.display());
        return ExitCode::from(2);
    }

    let mut violations = Vec::new();
    for path in &files {
        let Ok(text) = fs::read_to_string(path) else {
            eprintln!("xtask: cannot read {}", path.display());
            return ExitCode::from(2);
        };
        check_file(&root, path, &text, &mut violations);
    }

    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        return ExitCode::SUCCESS;
    }
    for v in &violations {
        println!("{}:{}: [{}] {}", v.path.display(), v.line, v.rule, v.message);
    }
    println!("xtask lint: {} violation(s) in {} files scanned", violations.len(), files.len());
    ExitCode::FAILURE
}

/// The workspace root: the directory holding the top-level `Cargo.toml`,
/// two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map_or(manifest.clone(), Path::to_path_buf)
}

/// Every first-party `.rs` file: `crates/*/src`, facade `src/`, `tests/`,
/// `examples/`, and `crates/bench/benches`. Vendored shims and build
/// output are exempt — they are not held to the workspace gate.
fn first_party_rust_files(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&root.join(top), &mut files);
    }
    files.sort();
    files
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            let skip = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n == "target" || n == "vendor" || n.starts_with('.'));
            if !skip {
                collect_rs(&path, out);
            }
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
}

/// Path relative to the workspace root, with `/` separators, for scoping.
fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .filter_map(|c| c.as_os_str().to_str())
        .fold(String::new(), |mut acc, c| {
            if !acc.is_empty() {
                acc.push('/');
            }
            acc.push_str(c);
            acc
        })
}

fn check_file(root: &Path, path: &Path, text: &str, out: &mut Vec<Violation>) {
    let rel_path = rel(root, path);
    // The linter's own sources talk about the patterns it bans; exempt it.
    if rel_path.starts_with("crates/xtask/") {
        return;
    }
    let lines: Vec<&str> = text.lines().collect();

    // Library code scopes. Tests, benches, and examples assert by
    // panicking and may use whatever std primitives they like; rules 1-4
    // guard the code that ships.
    let is_library = (rel_path.starts_with("crates/") && rel_path.contains("/src/"))
        || rel_path.starts_with("src/");
    let in_net = rel_path.starts_with("crates/net/");
    let in_exec = rel_path.starts_with("crates/exec/");
    let in_sensing = rel_path.starts_with("crates/sensing/");
    // Rule 6 applies to transport consumers: library files that reference
    // the net crate but live outside it.
    let talks_to_transport = !in_net && text.contains("plos_net");

    // Banned-pattern fragments are concatenated at use sites so this file
    // never contains them verbatim (the linter must pass itself).
    let std_mutex = ["std::sync::", "Mutex"].concat();
    let std_rwlock = ["std::sync::", "RwLock"].concat();
    let spawn = ["thread::", "spawn"].concat();
    let scope = ["thread::", "scope"].concat();
    let recv_call = [".re", "cv"].concat();
    let bare_recv = [&recv_call, "()"].concat();
    let send_call = [".se", "nd("].concat();
    let expect_call = [".expe", "ct("].concat();
    let println_call = ["print", "ln!("].concat();
    let eprintln_call = ["eprint", "ln!("].concat();
    let fs_write = ["fs::wri", "te("].concat();
    let file_create = ["File::cre", "ate("].concat();

    // Rule 7 scope: library code, excluding binary entry points and the
    // figure harness (both print tables to stdout by design).
    let stdout_banned =
        is_library && !rel_path.contains("/bin/") && !rel_path.starts_with("crates/bench/");

    // Rule 8 scope: library code outside the two sanctioned write sites —
    // the checkpoint store (atomic, digest-framed) and the trace sink.
    let fs_write_banned = is_library
        && !rel_path.contains("/bin/")
        && !rel_path.starts_with("crates/ckpt/")
        && !rel_path.starts_with("crates/obs/")
        && !rel_path.starts_with("crates/bench/");

    for (idx, raw) in lines.iter().enumerate() {
        let line = raw.trim_start();
        let lineno = idx + 1;
        if line.starts_with("//") {
            continue;
        }

        if is_library {
            // Rule 1: parking_lot is mandated for first-party locking.
            if line.contains(&std_mutex) || line.contains(&std_rwlock) {
                out.push(Violation {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "std-sync",
                    message: "std::sync locks are banned; use parking_lot (no poisoning)"
                        .to_string(),
                });
            }
            // Rule 2: the fork-join pool and the accounted transport are
            // the only sanctioned spawn sites.
            if !in_net && !in_exec && (line.contains(&spawn) || line.contains(&scope)) {
                out.push(Violation {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "thread-spawn",
                    message: "bare thread spawn/scope outside crates/exec and crates/net; \
                              route solver work through the plos-exec pool and network \
                              work through the transport"
                        .to_string(),
                });
            }
            // Rule 3: public solver entry points are fallible.
            if let Some(name) = solver_entry_name(line) {
                let signature = signature_text(&lines, idx);
                if !signature.contains("Result<") {
                    let mut message = String::new();
                    let _ = write!(
                        message,
                        "public solver entry `{name}` must return Result \
                         (panicking trainers poison the distributed protocol)"
                    );
                    out.push(Violation {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "solver-result",
                        message,
                    });
                }
            }
            // Rule 4: explicit rounding before float→index casts.
            if in_sensing
                && line.contains("as usize")
                && line.contains("f64")
                && !["round", "floor", "ceil", "trunc"]
                    .iter()
                    .any(|m| line.contains(&[".", m, "()"].concat()))
            {
                out.push(Violation {
                    path: path.to_path_buf(),
                    line: lineno,
                    rule: "float-cast",
                    message: "truncating f64→usize cast; round explicitly \
                              (.round()/.floor()/.ceil()) before casting"
                        .to_string(),
                });
            }
            // Rule 6: transport waits are timeout-driven and fallible
            // outside crates/net.
            if talks_to_transport {
                if line.contains(&bare_recv) {
                    out.push(Violation {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "endpoint-recv",
                        message: "bare blocking recv() on the transport; use \
                                  recv_timeout under a RetryPolicy so a dead \
                                  device cannot hang the trainer"
                            .to_string(),
                    });
                }
                if (line.contains(&send_call) || line.contains(&recv_call))
                    && line.contains(&expect_call)
                {
                    out.push(Violation {
                        path: path.to_path_buf(),
                        line: lineno,
                        rule: "endpoint-recv",
                        message: "expect on a transport send/recv; propagate \
                                  CoreError::Transport instead of panicking"
                            .to_string(),
                    });
                }
            }
        }

        // Rule 7: library crates never print; telemetry goes through
        // plos-obs so it can be disabled without touching solver output.
        if stdout_banned && (line.contains(&println_call) || line.contains(&eprintln_call)) {
            out.push(Violation {
                path: path.to_path_buf(),
                line: lineno,
                rule: "no-stdout",
                message: "println!/eprintln! in a library crate; emit a plos-obs \
                          event or counter instead"
                    .to_string(),
            });
        }

        // Rule 8: persistent training state goes through plos-ckpt, which
        // frames, digests, and atomically renames; an ad-hoc fs write is a
        // checkpoint that cannot be verified or safely resumed.
        if fs_write_banned && (line.contains(&fs_write) || line.contains(&file_create)) {
            out.push(Violation {
                path: path.to_path_buf(),
                line: lineno,
                rule: "ckpt-write",
                message: "direct filesystem write in a library crate; persist state \
                          through the plos-ckpt store (versioned, digest-verified, \
                          atomic) instead"
                    .to_string(),
            });
        }

        // Rule 5: every allow carries a justification comment (all
        // first-party code, including tests/benches/examples).
        if is_allow_attribute(line) && !preceded_by_comment(&lines, idx) {
            out.push(Violation {
                path: path.to_path_buf(),
                line: lineno,
                rule: "allow-justification",
                message: "#[allow] without a justification comment on the line above".to_string(),
            });
        }
    }
}

/// If the line opens a `pub fn` whose name starts with `solve`, `fit`, or
/// `train`, returns the function name.
fn solver_entry_name(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("pub fn ")?;
    let name_len = rest
        .char_indices()
        .find(|&(_, c)| !(c.is_alphanumeric() || c == '_'))
        .map_or(rest.len(), |(i, _)| i);
    let name = rest.get(..name_len)?;
    ["solve", "fit", "train"].iter().any(|p| name.starts_with(p)).then_some(name)
}

/// The signature text from the `fn` line to its body brace (or `;`).
fn signature_text(lines: &[&str], start: usize) -> String {
    let mut sig = String::new();
    for line in lines.iter().skip(start).take(16) {
        sig.push_str(line);
        sig.push(' ');
        if line.contains('{') || line.trim_end().ends_with(';') {
            break;
        }
    }
    sig
}

/// Matches outer/inner `allow` attributes, including the
/// `cfg_attr(test, allow(...))` form.
fn is_allow_attribute(line: &str) -> bool {
    let allow_open = ["allow", "("].concat();
    (line.starts_with(&["#", "["].concat()) || line.starts_with(&["#!", "["].concat()))
        && line.contains(&allow_open)
}

/// True when the previous non-empty line is a `//` comment.
fn preceded_by_comment(lines: &[&str], idx: usize) -> bool {
    lines
        .iter()
        .take(idx)
        .rev()
        .map(|l| l.trim())
        .find(|l| !l.is_empty())
        .is_some_and(|l| l.starts_with("//"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solver_entries_detected_with_and_without_result() {
        assert_eq!(solver_entry_name("pub fn fit(&self) -> Model {"), Some("fit"));
        assert_eq!(solver_entry_name("pub fn solve_qp("), Some("solve_qp"));
        assert_eq!(solver_entry_name("pub fn fitness(&self)"), Some("fitness"));
        assert_eq!(solver_entry_name("fn fit(&self)"), None);
        assert_eq!(solver_entry_name("pub fn predict(&self)"), None);
    }

    #[test]
    fn multiline_signatures_are_joined() {
        let lines = vec!["pub fn fit(", "    a: usize,", ") -> Result<(), ()> {"];
        assert!(signature_text(&lines, 0).contains("Result<"));
    }

    #[test]
    fn allow_attribute_forms_recognized() {
        let outer = ["#", "[allow(clippy::unwrap_used)]"].concat();
        let inner = ["#!", "[allow(clippy::expect_used)]"].concat();
        let cfg = ["#!", "[cfg_attr(test, allow(clippy::panic))]"].concat();
        assert!(is_allow_attribute(&outer));
        assert!(is_allow_attribute(&inner));
        assert!(is_allow_attribute(&cfg));
        assert!(!is_allow_attribute("#[derive(Debug)]"));
    }

    #[test]
    fn comment_lookup_skips_blank_lines() {
        let lines = vec!["// why", "", "#[allow(x)]"];
        assert!(preceded_by_comment(&lines, 2));
        let bare = vec!["let x = 1;", "#[allow(x)]"];
        assert!(!preceded_by_comment(&bare, 1));
    }
}
