//! Multi-class multi-user datasets and generators.
//!
//! The paper evaluates binary tasks (its Sec. VI-C HAR experiment picks the
//! least separable *pair* out of six activities) and names extending PLOS
//! "to other machine learning models" as future work (Sec. VII). These
//! containers support that extension: class labels are `0..k`, and
//! [`MultiClassDataset::one_vs_rest`] produces the binary views a
//! one-vs-rest personalized classifier trains on.

use crate::dataset::{LabelMask, MultiUserDataset, UserData};
use crate::rng::{randn, randn_vector};
use plos_linalg::Vector;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One user's multi-class data.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassUserData {
    /// Feature vectors.
    pub features: Vec<Vector>,
    /// Ground-truth class ids in `0..num_classes`.
    pub truth: Vec<usize>,
    /// Observed class ids; `None` = unlabeled.
    pub observed: Vec<Option<usize>>,
}

impl MultiClassUserData {
    /// Creates a fully unlabeled user.
    ///
    /// # Panics
    ///
    /// Panics on empty/ragged features or length mismatches.
    pub fn new(features: Vec<Vector>, truth: Vec<usize>) -> Self {
        assert!(!features.is_empty(), "a user needs at least one sample");
        assert_eq!(features.len(), truth.len(), "features/labels length mismatch");
        let d = features.first().map_or(0, Vector::len);
        assert!(features.iter().all(|f| f.len() == d), "ragged features");
        let observed = vec![None; truth.len()];
        MultiClassUserData { features, truth, observed }
    }

    /// Number of samples.
    pub fn num_samples(&self) -> usize {
        self.features.len()
    }

    /// Whether the user labels anything.
    pub fn is_provider(&self) -> bool {
        self.observed.iter().any(Option::is_some)
    }
}

/// A cohort of users on a shared multi-class task.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassDataset {
    users: Vec<MultiClassUserData>,
    num_classes: usize,
}

impl MultiClassDataset {
    /// Creates a dataset and validates class ids and dimensions.
    ///
    /// # Panics
    ///
    /// Panics if empty, dimensions differ, `num_classes < 2`, or any label
    /// is out of range.
    pub fn new(users: Vec<MultiClassUserData>, num_classes: usize) -> Self {
        assert!(!users.is_empty(), "dataset needs at least one user");
        assert!(num_classes >= 2, "need at least two classes");
        let d = users.first().and_then(|u| u.features.first()).map_or(0, Vector::len);
        for u in &users {
            assert!(u.features.iter().all(|f| f.len() == d), "dimension mismatch");
            assert!(u.truth.iter().all(|&y| y < num_classes), "class id out of range");
        }
        MultiClassDataset { users, num_classes }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Number of classes `k`.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Shared feature dimension.
    pub fn dim(&self) -> usize {
        self.users.first().and_then(|u| u.features.first()).map_or(0, Vector::len)
    }

    /// Borrows the users.
    pub fn users(&self) -> &[MultiClassUserData] {
        &self.users
    }

    /// Borrows one user.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    // Allowed: a documented panicking accessor delegating to the slice
    // bounds check.
    #[allow(clippy::indexing_slicing)]
    pub fn user(&self, t: usize) -> &MultiClassUserData {
        &self.users[t]
    }

    /// Indices of users that provide labels.
    pub fn providers(&self) -> Vec<usize> {
        self.users.iter().enumerate().filter(|(_, u)| u.is_provider()).map(|(t, _)| t).collect()
    }

    /// Reveals labels: `num_providers` random users each label `rate` of
    /// their samples, class-stratified (every class gets its share).
    ///
    /// # Panics
    ///
    /// Panics if `num_providers` exceeds the user count or `rate` is outside
    /// `(0, 1]`.
    pub fn mask_labels(&self, mask: &LabelMask, seed: u64) -> MultiClassDataset {
        assert!(mask.num_providers <= self.num_users(), "too many providers");
        assert!(mask.rate > 0.0 && mask.rate <= 1.0, "rate must be in (0,1]");
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..self.num_users()).collect();
        order.shuffle(&mut rng);
        order.truncate(mask.num_providers);

        let mut users = self.users.clone();
        for u in &mut users {
            u.observed.iter_mut().for_each(|l| *l = None);
        }
        for &t in &order {
            let Some(user) = users.get_mut(t) else { continue };
            let m = user.num_samples();
            let want = ((mask.rate * m as f64).round() as usize).clamp(1, m);
            // Stratified: round-robin over classes.
            let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.num_classes];
            for (i, &y) in user.truth.iter().enumerate() {
                if let Some(bucket) = per_class.get_mut(y) {
                    bucket.push(i);
                }
            }
            for idxs in &mut per_class {
                idxs.shuffle(&mut rng);
            }
            let mut taken = 0usize;
            let mut depth = 0usize;
            while taken < want {
                let mut progressed = false;
                for idxs in &per_class {
                    if taken >= want {
                        break;
                    }
                    if let Some(&i) = idxs.get(depth) {
                        if let (Some(slot), Some(&y)) =
                            (user.observed.get_mut(i), user.truth.get(i))
                        {
                            *slot = Some(y);
                        }
                        taken += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
                depth += 1;
            }
        }
        MultiClassDataset { users, num_classes: self.num_classes }
    }

    /// The one-vs-rest binary view for `class`: samples of `class` become
    /// `+1`, everything else `−1`, with observed labels mapped the same way.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn one_vs_rest(&self, class: usize) -> MultiUserDataset {
        assert!(class < self.num_classes, "class id out of range");
        let users = self
            .users
            .iter()
            .map(|u| {
                let truth: Vec<i8> =
                    u.truth.iter().map(|&y| if y == class { 1 } else { -1 }).collect();
                let mut binary = UserData::new(u.features.clone(), truth);
                binary.observed = u
                    .observed
                    .iter()
                    .map(|obs| obs.map(|y| if y == class { 1 } else { -1 }))
                    .collect();
                binary
            })
            .collect();
        MultiUserDataset::new(users)
    }
}

/// Parameters of the multi-class synthetic generator: `k` Gaussian classes
/// sharing structure across users, with per-user rotations/offsets scaled by
/// `personal_variation` — a multi-class analogue of the HAR generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiClassSpec {
    /// Number of users.
    pub num_users: usize,
    /// Number of classes `k ≥ 2`.
    pub num_classes: usize,
    /// Samples per class per user.
    pub samples_per_class: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Distance of each class mean from the origin.
    pub class_radius: f64,
    /// Isotropic within-class noise.
    pub noise_std: f64,
    /// Personal-trait strength in `[0, 1]`.
    pub personal_variation: f64,
}

impl Default for MultiClassSpec {
    fn default() -> Self {
        MultiClassSpec {
            num_users: 10,
            num_classes: 4,
            samples_per_class: 30,
            dim: 16,
            class_radius: 2.5,
            noise_std: 1.0,
            personal_variation: 0.3,
        }
    }
}

/// Generates a multi-class multi-user cohort. Deterministic given `seed`.
///
/// # Panics
///
/// Panics on degenerate spec fields.
pub fn generate_multiclass(spec: &MultiClassSpec, seed: u64) -> MultiClassDataset {
    assert!(spec.num_users > 0 && spec.num_classes >= 2, "bad cohort shape");
    assert!(spec.samples_per_class > 0 && spec.dim >= 2, "bad sample shape");
    assert!((0.0..=1.0).contains(&spec.personal_variation), "personal_variation must be in [0,1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Shared class means: random directions at the given radius.
    let means: Vec<Vector> = (0..spec.num_classes)
        .map(|_| {
            let mut m = randn_vector(spec.dim, &mut rng);
            m.scale_mut(spec.class_radius / m.norm());
            m
        })
        .collect();

    let users = (0..spec.num_users)
        .map(|_| {
            // Per-user perturbation: offset + per-class mean jitter.
            let mut offset = randn_vector(spec.dim, &mut rng);
            offset.scale_mut(spec.personal_variation * 0.8);
            let user_means: Vec<Vector> = means
                .iter()
                .map(|m| {
                    let mut jitter = randn_vector(spec.dim, &mut rng);
                    jitter.scale_mut(spec.personal_variation * spec.class_radius * 0.4);
                    let mut um = m.clone();
                    um += &jitter;
                    um += &offset;
                    um
                })
                .collect();

            let mut features = Vec::new();
            let mut truth = Vec::new();
            for (class, mean) in user_means.iter().enumerate() {
                for _ in 0..spec.samples_per_class {
                    let mut x = mean.clone();
                    for v in x.iter_mut() {
                        *v += spec.noise_std * randn(&mut rng);
                    }
                    features.push(x);
                    truth.push(class);
                }
            }
            MultiClassUserData::new(features, truth)
        })
        .collect();
    MultiClassDataset::new(users, spec.num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MultiClassSpec {
        MultiClassSpec { num_users: 3, num_classes: 3, samples_per_class: 10, ..Default::default() }
    }

    #[test]
    fn generator_shape() {
        let d = generate_multiclass(&spec(), 0);
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.dim(), 16);
        for u in d.users() {
            assert_eq!(u.num_samples(), 30);
            for c in 0..3 {
                assert_eq!(u.truth.iter().filter(|&&y| y == c).count(), 10);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_multiclass(&spec(), 5), generate_multiclass(&spec(), 5));
        assert_ne!(generate_multiclass(&spec(), 5), generate_multiclass(&spec(), 6));
    }

    #[test]
    fn masking_is_stratified() {
        let d = generate_multiclass(&spec(), 1);
        let masked = d.mask_labels(&LabelMask::providers(2, 0.3), 3);
        assert_eq!(masked.providers().len(), 2);
        for t in masked.providers() {
            let u = masked.user(t);
            let labeled = u.observed.iter().flatten().count();
            assert_eq!(labeled, 9);
            // Stratification: every class appears among the labels.
            for c in 0..3 {
                assert!(
                    u.observed.iter().flatten().any(|&y| y == c),
                    "class {c} unlabeled for provider {t}"
                );
            }
        }
    }

    #[test]
    fn observed_labels_match_truth() {
        let d = generate_multiclass(&spec(), 2).mask_labels(&LabelMask::providers(3, 0.5), 0);
        for u in d.users() {
            for (i, obs) in u.observed.iter().enumerate() {
                if let Some(y) = obs {
                    assert_eq!(*y, u.truth[i]);
                }
            }
        }
    }

    #[test]
    fn one_vs_rest_maps_labels_and_masks() {
        let d = generate_multiclass(&spec(), 3).mask_labels(&LabelMask::providers(2, 0.3), 1);
        for class in 0..3 {
            let binary = d.one_vs_rest(class);
            assert_eq!(binary.num_users(), 3);
            for (mu, bu) in d.users().iter().zip(binary.users()) {
                for (i, (&mc, &bc)) in mu.truth.iter().zip(&bu.truth).enumerate() {
                    assert_eq!(bc == 1, mc == class, "sample {i}");
                }
                for (mo, bo) in mu.observed.iter().zip(&bu.observed) {
                    assert_eq!(mo.is_some(), bo.is_some());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "class id out of range")]
    fn one_vs_rest_checks_class() {
        let d = generate_multiclass(&spec(), 0);
        let _ = d.one_vs_rest(3);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn rejects_single_class() {
        let u = MultiClassUserData::new(vec![Vector::from(vec![1.0])], vec![0]);
        let _ = MultiClassDataset::new(vec![u], 1);
    }
}
