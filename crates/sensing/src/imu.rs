//! Synthetic inertial-measurement-unit (IMU) trace generation.
//!
//! Stand-in for the paper's TelosB motion boards (triaxial accelerometer +
//! biaxial gyroscope) and smartphone IMUs. Each activity is a harmonic
//! motion model in the *body frame* — a constant gravity/posture component
//! plus low-frequency postural sway plus wide-band tremor noise — and each
//! user modulates it with personal traits: amplitude/frequency scaling,
//! phase, extra noise, and, crucially, a random *device orientation* (the
//! paper gave subjects no placement instructions, which is what makes the
//! body-sensor data so personal).

use crate::rng::randn;
use crate::signal::Signal;
use plos_linalg::{Matrix, Vector};
use rand::Rng;

/// Harmonic motion model of one activity as sensed at one body location.
#[derive(Debug, Clone)]
pub struct ActivityModel {
    /// Human-readable activity name (e.g. `"rest-standing"`).
    pub name: &'static str,
    /// Constant body-frame acceleration (gravity projection + posture), in g.
    pub accel_base: [f64; 3],
    /// Postural-sway amplitude per accelerometer axis, in g.
    pub sway_amp: [f64; 3],
    /// Sway fundamental frequency in Hz.
    pub sway_freq_hz: f64,
    /// Angular-velocity oscillation amplitude per gyroscope axis (rad/s).
    pub gyro_amp: [f64; 3],
    /// Gyroscope oscillation frequency in Hz.
    pub gyro_freq_hz: f64,
    /// Standard deviation of the additive wide-band tremor noise.
    pub noise_std: f64,
    /// Stationary standard deviation of the slow postural-drift random walk
    /// (an Ornstein–Uhlenbeck process added to the body-frame
    /// acceleration). This is what makes different windows of the same
    /// activity differ — people shift their posture over seconds.
    pub drift_std: f64,
    /// Time constant of the postural drift, seconds.
    pub drift_tau_s: f64,
}

/// Per-user, per-node modulation of an [`ActivityModel`].
#[derive(Debug, Clone)]
pub struct UserTraits {
    /// Multiplies all oscillation amplitudes.
    pub amplitude_scale: f64,
    /// Multiplies all oscillation frequencies.
    pub frequency_scale: f64,
    /// Phase offset of the oscillations, radians.
    pub phase: f64,
    /// Multiplies the model's noise standard deviation.
    pub noise_scale: f64,
    /// Device orientation: rotation from body frame to sensor frame.
    pub orientation: Matrix,
}

impl UserTraits {
    /// Samples traits with the given personal-variation strength.
    ///
    /// `variation` in `[0, 1]` controls how far amplitude/frequency scales
    /// stray from 1 and how much the orientation deviates from identity;
    /// `free_placement` additionally applies a fully random orientation
    /// (the body-sensor setting) instead of a small perturbation (the
    /// waist-mounted HAR setting).
    ///
    /// # Panics
    ///
    /// Panics if `variation` is outside `[0, 1]`.
    pub fn sample(variation: f64, free_placement: bool, rng: &mut impl Rng) -> Self {
        assert!((0.0..=1.0).contains(&variation), "variation must be in [0,1]");
        let amplitude_scale = (1.0 + variation * rng.gen_range(-0.9..0.9)).max(0.15);
        let frequency_scale = 1.0 + variation * rng.gen_range(-0.4..0.4);
        let phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let noise_scale = 1.0 + variation * rng.gen_range(0.0..1.0);
        let orientation = if free_placement && variation > 0.0 {
            // Free placement: orientation spread scales with the variation
            // knob; at 1.0 the device sits at a fully arbitrary attitude.
            let yaw_r = std::f64::consts::PI * variation;
            let pitch_r = std::f64::consts::FRAC_PI_2 * variation;
            Matrix::rotation3d(
                rng.gen_range(-yaw_r..yaw_r),
                rng.gen_range(-pitch_r..pitch_r),
                rng.gen_range(-yaw_r..yaw_r),
            )
        } else {
            let a = variation * 0.3;
            Matrix::rotation3d(
                rng.gen_range(-a..a.max(1e-12)),
                rng.gen_range(-a..a.max(1e-12)),
                rng.gen_range(-a..a.max(1e-12)),
            )
        };
        UserTraits { amplitude_scale, frequency_scale, phase, noise_scale, orientation }
    }
}

/// One generated six-channel IMU recording.
#[derive(Debug, Clone)]
pub struct ImuTrace {
    /// Accelerometer x/y/z channels.
    pub accel: [Signal; 3],
    /// Gyroscope x/y/z channels (TelosB consumers use only the first two,
    /// matching its biaxial gyroscope).
    pub gyro: [Signal; 3],
}

impl ImuTrace {
    /// The paper's TelosB channel set: accel x, y, z and gyro u, v.
    pub fn telosb_channels(&self) -> Vec<&Signal> {
        vec![&self.accel[0], &self.accel[1], &self.accel[2], &self.gyro[0], &self.gyro[1]]
    }
}

/// Generates `num_samples` at `sample_rate_hz` for one activity under one
/// user's traits.
///
/// # Panics
///
/// Panics if `num_samples == 0` or the rate is not positive.
// Allowed: all indices below are the loop variable `axis` over fixed-size
// `[_; 3]` arrays and 3-vectors, in bounds by construction.
#[allow(clippy::indexing_slicing)]
pub fn generate_imu_trace(
    model: &ActivityModel,
    traits: &UserTraits,
    num_samples: usize,
    sample_rate_hz: f64,
    rng: &mut impl Rng,
) -> ImuTrace {
    assert!(num_samples > 0, "num_samples must be positive");
    assert!(sample_rate_hz > 0.0, "sample rate must be positive");

    let dt = 1.0 / sample_rate_hz;
    let sway_w = std::f64::consts::TAU * model.sway_freq_hz * traits.frequency_scale;
    let gyro_w = std::f64::consts::TAU * model.gyro_freq_hz * traits.frequency_scale;
    let noise = model.noise_std * traits.noise_scale;
    // Ornstein–Uhlenbeck postural drift: x' = a·x + sigma·sqrt(1−a²)·N(0,1)
    // keeps the stationary std at drift_std for any sample rate.
    let drift_alpha = if model.drift_tau_s > 0.0 { (-dt / model.drift_tau_s).exp() } else { 0.0 };
    let drift_sigma = model.drift_std * (1.0 - drift_alpha * drift_alpha).sqrt();
    let mut drift = [0.0f64; 3];
    if model.drift_std > 0.0 {
        // Start from the stationary distribution.
        for d in &mut drift {
            *d = model.drift_std * randn(rng);
        }
    }

    let mut accel = [
        Vec::with_capacity(num_samples),
        Vec::with_capacity(num_samples),
        Vec::with_capacity(num_samples),
    ];
    let mut gyro = [
        Vec::with_capacity(num_samples),
        Vec::with_capacity(num_samples),
        Vec::with_capacity(num_samples),
    ];

    for k in 0..num_samples {
        let t = k as f64 * dt;
        // Advance the postural drift.
        if model.drift_std > 0.0 {
            for d in &mut drift {
                *d = drift_alpha * *d + drift_sigma * randn(rng);
            }
        }
        // Body-frame signals: base + drift + personal sway + second
        // harmonic + noise.
        let s1 = (sway_w * t + traits.phase).sin();
        let s2 = (2.0 * sway_w * t + 1.7 * traits.phase).sin();
        let body_accel: Vector = (0..3)
            .map(|axis| {
                model.accel_base[axis]
                    + drift[axis]
                    + traits.amplitude_scale * model.sway_amp[axis] * (s1 + 0.35 * s2)
                    + noise * randn(rng)
            })
            .collect();
        let g1 = (gyro_w * t + traits.phase * 0.5).cos();
        let body_gyro: Vector = (0..3)
            .map(|axis| traits.amplitude_scale * model.gyro_amp[axis] * g1 + noise * randn(rng))
            .collect();

        // Sensor frame = orientation · body frame.
        let sensor_accel = traits.orientation.matvec(&body_accel);
        let sensor_gyro = traits.orientation.matvec(&body_gyro);
        for axis in 0..3 {
            accel[axis].push(sensor_accel[axis]);
            gyro[axis].push(sensor_gyro[axis]);
        }
    }

    let to_signal = |v: Vec<f64>| Signal::new(sample_rate_hz, v);
    ImuTrace { accel: accel.map(to_signal), gyro: gyro.map(to_signal) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn standing() -> ActivityModel {
        ActivityModel {
            name: "rest-standing",
            accel_base: [0.0, 0.0, 1.0],
            sway_amp: [0.05, 0.04, 0.01],
            sway_freq_hz: 0.6,
            gyro_amp: [0.1, 0.08, 0.02],
            gyro_freq_hz: 0.6,
            noise_std: 0.01,
            drift_std: 0.0,
            drift_tau_s: 3.0,
        }
    }

    fn identity_traits() -> UserTraits {
        UserTraits {
            amplitude_scale: 1.0,
            frequency_scale: 1.0,
            phase: 0.0,
            noise_scale: 0.0,
            orientation: Matrix::identity(3),
        }
    }

    #[test]
    fn trace_has_requested_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let trace = generate_imu_trace(&standing(), &identity_traits(), 128, 20.0, &mut rng);
        for ch in trace.accel.iter().chain(trace.gyro.iter()) {
            assert_eq!(ch.len(), 128);
            assert_eq!(ch.sample_rate_hz(), 20.0);
        }
        assert_eq!(trace.telosb_channels().len(), 5);
    }

    #[test]
    fn noiseless_identity_trace_matches_model_mean() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = standing();
        // Use a whole number of sway periods so the oscillation averages out.
        let samples = 200; // 10 s at 20 Hz = 6 periods of 0.6 Hz
        let trace = generate_imu_trace(&model, &identity_traits(), samples, 20.0, &mut rng);
        let mean_z: f64 =
            trace.accel[2].samples().iter().sum::<f64>() / trace.accel[2].len() as f64;
        assert!((mean_z - 1.0).abs() < 0.02, "mean_z={mean_z}");
    }

    #[test]
    fn orientation_rotates_gravity_between_axes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let model = standing();
        // Rotate the sensor 90° so gravity lands on the x axis.
        let traits = UserTraits {
            orientation: Matrix::rotation3d(0.0, std::f64::consts::FRAC_PI_2, 0.0),
            ..identity_traits()
        };
        let trace = generate_imu_trace(&model, &traits, 200, 20.0, &mut rng);
        let mean_x: f64 =
            trace.accel[0].samples().iter().sum::<f64>() / trace.accel[0].len() as f64;
        assert!(mean_x.abs() > 0.9, "gravity should appear on x, mean_x={mean_x}");
    }

    #[test]
    fn amplitude_scale_changes_oscillation_energy() {
        let model = standing();
        let mut rng1 = rand::rngs::StdRng::seed_from_u64(1);
        let small = generate_imu_trace(
            &model,
            &UserTraits { amplitude_scale: 0.2, ..identity_traits() },
            400,
            20.0,
            &mut rng1,
        );
        let mut rng2 = rand::rngs::StdRng::seed_from_u64(1);
        let large = generate_imu_trace(
            &model,
            &UserTraits { amplitude_scale: 2.0, ..identity_traits() },
            400,
            20.0,
            &mut rng2,
        );
        let var = |s: &Signal| {
            let m = s.samples().iter().sum::<f64>() / s.len() as f64;
            s.samples().iter().map(|x| (x - m) * (x - m)).sum::<f64>() / s.len() as f64
        };
        assert!(var(&large.accel[0]) > var(&small.accel[0]) * 10.0);
    }

    #[test]
    fn traits_sampling_respects_variation_zero() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let t = UserTraits::sample(0.0, false, &mut rng);
        assert!((t.amplitude_scale - 1.0).abs() < 1e-12);
        assert!((t.frequency_scale - 1.0).abs() < 1e-12);
        assert!((t.noise_scale - 1.0).abs() < 1e-12);
        // Orientation is (numerically) the identity.
        for i in 0..3 {
            assert!((t.orientation[(i, i)] - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn free_placement_orientations_differ_between_users() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let a = UserTraits::sample(0.5, true, &mut rng);
        let b = UserTraits::sample(0.5, true, &mut rng);
        let mut diff = 0.0;
        for i in 0..3 {
            for j in 0..3 {
                diff += (a.orientation[(i, j)] - b.orientation[(i, j)]).abs();
            }
        }
        assert!(diff > 0.1, "two sampled orientations should differ, diff={diff}");
    }

    #[test]
    #[should_panic(expected = "num_samples must be positive")]
    fn zero_samples_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = generate_imu_trace(&standing(), &identity_traits(), 0, 20.0, &mut rng);
    }
}
