//! Multi-user dataset containers and label masking.
//!
//! PLOS's problem setting (Sec. III): `T` users each hold feature vectors
//! `x_{it}`; some users label part of their data ("label providers"), the
//! rest provide none. [`MultiUserDataset`] carries both the ground truth
//! (used only for evaluation) and the *observed* labels the learner may see;
//! [`LabelMask`] reproduces the paper's experimental knobs — the number of
//! providers and the labeling rate — with class-balanced random selection
//! ("approximately 3 samples for each activity", Sec. VI-B).

use plos_linalg::Vector;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One user's data: features, ground-truth labels, and observed labels.
#[derive(Debug, Clone, PartialEq)]
pub struct UserData {
    /// Feature vectors, all of one dimension.
    pub features: Vec<Vector>,
    /// Ground-truth labels in `{−1, +1}`; used only for evaluation.
    pub truth: Vec<i8>,
    /// Labels visible to the learner; `None` = unlabeled.
    pub observed: Vec<Option<i8>>,
}

impl UserData {
    /// Creates a fully *unlabeled* user from features and ground truth.
    ///
    /// # Panics
    ///
    /// Panics if lengths mismatch, features are ragged/empty, or labels are
    /// not ±1.
    pub fn new(features: Vec<Vector>, truth: Vec<i8>) -> Self {
        assert!(!features.is_empty(), "a user must have at least one sample");
        assert_eq!(features.len(), truth.len(), "features/labels length mismatch");
        let d = features.first().map_or(0, Vector::len);
        assert!(d > 0, "features must be non-empty vectors");
        assert!(features.iter().all(|f| f.len() == d), "ragged features");
        assert!(truth.iter().all(|&y| y == 1 || y == -1), "labels must be ±1");
        let observed = vec![None; truth.len()];
        UserData { features, truth, observed }
    }

    /// Number of samples `m_t`.
    pub fn num_samples(&self) -> usize {
        self.features.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.features.first().map_or(0, Vector::len)
    }

    /// Indices of samples with observed labels.
    pub fn labeled_indices(&self) -> Vec<usize> {
        self.observed.iter().enumerate().filter_map(|(i, l)| l.map(|_| i)).collect()
    }

    /// Number of observed labels `l_t`.
    pub fn num_labeled(&self) -> usize {
        self.observed.iter().filter(|l| l.is_some()).count()
    }

    /// Whether this user provides any labels.
    pub fn is_provider(&self) -> bool {
        self.num_labeled() > 0
    }
}

/// A cohort of users for one PLOS task.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiUserDataset {
    users: Vec<UserData>,
}

impl MultiUserDataset {
    /// Creates a dataset, validating that all users share a feature
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `users` is empty or dimensions differ across users.
    pub fn new(users: Vec<UserData>) -> Self {
        assert!(!users.is_empty(), "dataset must contain at least one user");
        let d = users.first().map_or(0, UserData::dim);
        assert!(users.iter().all(|u| u.dim() == d), "users disagree on feature dimension");
        MultiUserDataset { users }
    }

    /// Number of users `T`.
    pub fn num_users(&self) -> usize {
        self.users.len()
    }

    /// Shared feature dimension.
    pub fn dim(&self) -> usize {
        self.users.first().map_or(0, UserData::dim)
    }

    /// Borrows the users.
    pub fn users(&self) -> &[UserData] {
        &self.users
    }

    /// Borrows one user.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    // Allowed: a documented panicking accessor delegating to the slice
    // bounds check.
    #[allow(clippy::indexing_slicing)]
    pub fn user(&self, t: usize) -> &UserData {
        &self.users[t]
    }

    /// Total number of samples across all users.
    pub fn total_samples(&self) -> usize {
        self.users.iter().map(UserData::num_samples).sum()
    }

    /// Indices of users that provide at least one label.
    pub fn providers(&self) -> Vec<usize> {
        self.users.iter().enumerate().filter(|(_, u)| u.is_provider()).map(|(t, _)| t).collect()
    }

    /// Indices of users that provide no labels.
    pub fn non_providers(&self) -> Vec<usize> {
        self.users.iter().enumerate().filter(|(_, u)| !u.is_provider()).map(|(t, _)| t).collect()
    }

    /// Returns a copy with observed labels assigned according to `mask`.
    ///
    /// Providers are drawn uniformly at random; each provider reveals a
    /// class-balanced random subset of its ground-truth labels. Existing
    /// observed labels are discarded first, so masking is idempotent in
    /// distribution.
    ///
    /// # Panics
    ///
    /// Panics if `mask.num_providers` exceeds the number of users or
    /// `mask.rate` is outside `(0, 1]`.
    pub fn mask_labels(&self, mask: &LabelMask, seed: u64) -> MultiUserDataset {
        assert!(
            mask.num_providers <= self.num_users(),
            "cannot select {} providers among {} users",
            mask.num_providers,
            self.num_users()
        );
        assert!(
            mask.rate > 0.0 && mask.rate <= 1.0,
            "labeling rate must be in (0,1], got {}",
            mask.rate
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut user_order: Vec<usize> = (0..self.num_users()).collect();
        user_order.shuffle(&mut rng);
        user_order.truncate(mask.num_providers);

        let mut users = self.users.clone();
        for u in &mut users {
            u.observed.iter_mut().for_each(|l| *l = None);
        }
        for &t in &user_order {
            let Some(user) = users.get_mut(t) else { continue };
            let m = user.num_samples();
            let want = ((mask.rate * m as f64).round() as usize).clamp(1, m);
            // Class-balanced selection: split the budget between classes.
            let mut pos: Vec<usize> = label_indices(&user.truth, 1);
            let mut neg: Vec<usize> = label_indices(&user.truth, -1);
            pos.shuffle(&mut rng);
            neg.shuffle(&mut rng);
            let take_pos = (want / 2 + want % 2).min(pos.len());
            let take_neg = (want - take_pos).min(neg.len());
            // If one class is short, backfill from the other.
            let shortfall = want - take_pos - take_neg;
            let extra_pos = shortfall.min(pos.len() - take_pos);
            reveal(user, pos.iter().take(take_pos + extra_pos));
            reveal(user, neg.iter().take(take_neg));
        }
        MultiUserDataset { users }
    }
}

/// Indices of samples whose ground-truth label equals `label`.
fn label_indices(truth: &[i8], label: i8) -> Vec<usize> {
    truth.iter().enumerate().filter(|(_, &y)| y == label).map(|(i, _)| i).collect()
}

/// Copies ground-truth labels at `indices` into the observed set.
fn reveal<'a>(user: &mut UserData, indices: impl Iterator<Item = &'a usize>) {
    for &i in indices {
        if let (Some(slot), Some(&y)) = (user.observed.get_mut(i), user.truth.get(i)) {
            *slot = Some(y);
        }
    }
}

/// Label-visibility configuration: how many users label, and how much.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelMask {
    /// Number of users that provide labels.
    pub num_providers: usize,
    /// Fraction of each provider's samples that get labeled, in `(0, 1]`.
    pub rate: f64,
}

impl LabelMask {
    /// Convenience constructor.
    pub fn providers(num_providers: usize, rate: f64) -> Self {
        LabelMask { num_providers, rate }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_user(n: usize, dim: usize, bias: f64) -> UserData {
        let features: Vec<Vector> =
            (0..n).map(|i| (0..dim).map(|j| bias + (i * dim + j) as f64).collect()).collect();
        let truth: Vec<i8> = (0..n).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        UserData::new(features, truth)
    }

    fn toy_dataset(users: usize, n: usize) -> MultiUserDataset {
        MultiUserDataset::new((0..users).map(|u| toy_user(n, 3, u as f64)).collect())
    }

    #[test]
    fn user_accessors() {
        let u = toy_user(6, 3, 0.0);
        assert_eq!(u.num_samples(), 6);
        assert_eq!(u.dim(), 3);
        assert_eq!(u.num_labeled(), 0);
        assert!(!u.is_provider());
        assert!(u.labeled_indices().is_empty());
    }

    #[test]
    fn dataset_accessors() {
        let d = toy_dataset(4, 6);
        assert_eq!(d.num_users(), 4);
        assert_eq!(d.dim(), 3);
        assert_eq!(d.total_samples(), 24);
        assert!(d.providers().is_empty());
        assert_eq!(d.non_providers().len(), 4);
    }

    #[test]
    fn mask_selects_exact_provider_count() {
        let d = toy_dataset(10, 20);
        let masked = d.mask_labels(&LabelMask::providers(4, 0.5), 7);
        assert_eq!(masked.providers().len(), 4);
        assert_eq!(masked.non_providers().len(), 6);
    }

    #[test]
    fn mask_rate_controls_label_count() {
        let d = toy_dataset(3, 20);
        let masked = d.mask_labels(&LabelMask::providers(3, 0.5), 3);
        for t in masked.providers() {
            assert_eq!(masked.user(t).num_labeled(), 10);
        }
    }

    #[test]
    fn mask_is_class_balanced() {
        let d = toy_dataset(2, 40);
        let masked = d.mask_labels(&LabelMask::providers(2, 0.2), 11);
        for t in masked.providers() {
            let u = masked.user(t);
            let pos = u.observed.iter().flatten().filter(|&&y| y == 1).count();
            let neg = u.observed.iter().flatten().filter(|&&y| y == -1).count();
            assert_eq!(pos + neg, 8);
            assert!((pos as i64 - neg as i64).abs() <= 1, "pos={pos} neg={neg}");
        }
    }

    #[test]
    fn observed_labels_match_truth() {
        let d = toy_dataset(5, 12);
        let masked = d.mask_labels(&LabelMask::providers(5, 0.5), 0);
        for u in masked.users() {
            for (i, l) in u.observed.iter().enumerate() {
                if let Some(y) = l {
                    assert_eq!(*y, u.truth[i]);
                }
            }
        }
    }

    #[test]
    fn mask_is_deterministic_per_seed() {
        let d = toy_dataset(6, 10);
        let a = d.mask_labels(&LabelMask::providers(3, 0.3), 5);
        let b = d.mask_labels(&LabelMask::providers(3, 0.3), 5);
        assert_eq!(a, b);
        let c = d.mask_labels(&LabelMask::providers(3, 0.3), 6);
        assert_ne!(a, c);
    }

    #[test]
    fn tiny_rate_still_labels_at_least_one() {
        let d = toy_dataset(2, 10);
        let masked = d.mask_labels(&LabelMask::providers(2, 0.01), 0);
        for t in masked.providers() {
            assert!(masked.user(t).num_labeled() >= 1);
        }
    }

    #[test]
    fn remasking_discards_previous_labels() {
        let d = toy_dataset(4, 10);
        let once = d.mask_labels(&LabelMask::providers(4, 1.0), 0);
        let twice = once.mask_labels(&LabelMask::providers(1, 0.1), 1);
        assert_eq!(twice.providers().len(), 1);
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn too_many_providers_panics() {
        let d = toy_dataset(2, 4);
        let _ = d.mask_labels(&LabelMask::providers(3, 0.5), 0);
    }

    #[test]
    #[should_panic(expected = "labels must be ±1")]
    fn bad_truth_labels_panic() {
        let _ = UserData::new(vec![Vector::from(vec![1.0])], vec![0]);
    }

    #[test]
    #[should_panic(expected = "disagree on feature dimension")]
    fn mixed_dims_panic() {
        let _ = MultiUserDataset::new(vec![toy_user(2, 3, 0.0), toy_user(2, 4, 0.0)]);
    }
}
