//! Fixed-width sliding-window segmentation.
//!
//! The paper splits every signal "by a fixed-width sliding window of 3.2
//! seconds with 50 % overlap" (Sec. VI-B). At 20 Hz that is a 64-sample
//! window with a 32-sample hop.

use std::ops::Range;

/// Index ranges of fixed-width sliding windows over a signal of `n` samples.
///
/// `overlap` is the fraction of a window shared with its successor
/// (`0.5` = the paper's 50 % overlap). Only complete windows are produced.
///
/// # Panics
///
/// Panics if `window == 0` or `overlap` is outside `[0, 1)`.
///
/// ```
/// use plos_sensing::window::sliding_windows;
/// let w = sliding_windows(10, 4, 0.5);
/// assert_eq!(w, vec![0..4, 2..6, 4..8, 6..10]);
/// ```
pub fn sliding_windows(n: usize, window: usize, overlap: f64) -> Vec<Range<usize>> {
    assert!(window > 0, "window must be positive");
    assert!((0.0..1.0).contains(&overlap), "overlap must be in [0,1), got {overlap}");
    let hop = ((window as f64) * (1.0 - overlap)).round().max(1.0) as usize;
    let mut out = Vec::new();
    let mut start = 0usize;
    while start + window <= n {
        out.push(start..start + window);
        start += hop;
    }
    out
}

/// Number of samples a signal needs so that [`sliding_windows`] yields
/// exactly `count` windows.
///
/// The body-sensor generator uses this to size traces so each activity
/// produces the paper's 70 segments.
///
/// # Panics
///
/// Panics on the same invalid inputs as [`sliding_windows`], or if
/// `count == 0`.
pub fn samples_for_windows(count: usize, window: usize, overlap: f64) -> usize {
    assert!(count > 0, "count must be positive");
    assert!(window > 0, "window must be positive");
    assert!((0.0..1.0).contains(&overlap), "overlap must be in [0,1)");
    let hop = ((window as f64) * (1.0 - overlap)).round().max(1.0) as usize;
    window + (count - 1) * hop
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_overlap_windows() {
        let w = sliding_windows(10, 4, 0.5);
        assert_eq!(w, vec![0..4, 2..6, 4..8, 6..10]);
    }

    #[test]
    fn no_overlap_windows() {
        let w = sliding_windows(9, 3, 0.0);
        assert_eq!(w, vec![0..3, 3..6, 6..9]);
    }

    #[test]
    fn partial_final_window_is_dropped() {
        let w = sliding_windows(11, 4, 0.5);
        assert_eq!(w.last().unwrap().end, 10);
    }

    #[test]
    fn signal_shorter_than_window_yields_nothing() {
        assert!(sliding_windows(3, 4, 0.5).is_empty());
    }

    #[test]
    fn paper_configuration_sixty_four_at_20hz() {
        // 3.2 s @ 20 Hz = 64 samples, 50% overlap = 32 hop.
        let n = samples_for_windows(70, 64, 0.5);
        assert_eq!(n, 64 + 69 * 32);
        let w = sliding_windows(n, 64, 0.5);
        assert_eq!(w.len(), 70);
        // One more hop-worth of samples adds exactly one window.
        assert_eq!(sliding_windows(n + 32, 64, 0.5).len(), 71);
    }

    #[test]
    fn samples_for_windows_round_trips() {
        for (count, window, overlap) in [(1, 8, 0.5), (5, 10, 0.0), (12, 64, 0.5), (3, 7, 0.25)] {
            let n = samples_for_windows(count, window, overlap);
            assert_eq!(sliding_windows(n, window, overlap).len(), count);
        }
    }

    #[test]
    fn extreme_overlap_hop_is_at_least_one() {
        let w = sliding_windows(6, 4, 0.9);
        // hop = round(0.4) = 0 -> clamped to 1
        assert_eq!(w, vec![0..4, 1..5, 2..6]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = sliding_windows(5, 0, 0.5);
    }

    #[test]
    #[should_panic(expected = "overlap must be in")]
    fn full_overlap_panics() {
        let _ = sliding_windows(5, 2, 1.0);
    }
}
