//! The paper's synthetic 2-D Gaussian dataset (Sec. VI-D).
//!
//! Two classes of 200 points each from `N(μ = (±10, ±10), Σ)` with
//! `Σ = [[225, −180], [−180, 225]]`; 10 % of the ground-truth labels are
//! randomly swapped ("as in the real world applications, the data are rarely
//! separable"). Each simulated user is the *same* base dataset rotated
//! around the origin; with a maximum rotation angle `θ_max`, the `T` users
//! receive uniformly spaced angles in `[0, θ_max]`.

use crate::dataset::{MultiUserDataset, UserData};
use crate::rng::sample_mvn;
use plos_linalg::{Matrix, Vector};
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic-data generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of simulated users `T` (paper: 10).
    pub num_users: usize,
    /// Points per class in the base dataset (paper: 200).
    pub points_per_class: usize,
    /// Maximum rotation angle; user `t` gets `θ_max · t/(T−1)` (paper sweeps
    /// 0..π; fixed experiments use π/2).
    pub max_rotation: f64,
    /// Probability of swapping a ground-truth label (paper: 0.1).
    pub flip_prob: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            num_users: 10,
            points_per_class: 200,
            max_rotation: std::f64::consts::FRAC_PI_2,
            flip_prob: 0.1,
        }
    }
}

/// The paper's class-+1 mean `(10, 10)`.
pub const POSITIVE_MEAN: [f64; 2] = [10.0, 10.0];

/// Lower Cholesky factor of the paper's covariance
/// `Σ = [[225, −180], [−180, 225]]`, i.e. `L = [[15, 0], [−12, 9]]`.
// Allowed: the literal rows are rectangular, so `from_rows` cannot fail.
#[allow(clippy::expect_used)]
fn covariance_cholesky() -> Matrix {
    Matrix::from_rows(&[vec![15.0, 0.0], vec![-12.0, 9.0]]).expect("fixed shape")
}

/// Generates the multi-user synthetic dataset.
///
/// Deterministic given `seed`. Ground-truth labels (including the flipped
/// ones) are shared across users because every user is a rotation of the
/// same base sample, exactly as in the paper.
///
/// # Panics
///
/// Panics if `num_users == 0`, `points_per_class == 0`, or `flip_prob` is
/// outside `[0, 1]`.
pub fn generate_synthetic(spec: &SyntheticSpec, seed: u64) -> MultiUserDataset {
    assert!(spec.num_users > 0, "num_users must be positive");
    assert!(spec.points_per_class > 0, "points_per_class must be positive");
    assert!(
        (0.0..=1.0).contains(&spec.flip_prob),
        "flip_prob must be in [0,1], got {}",
        spec.flip_prob
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let chol = covariance_cholesky();
    let mean_pos = Vector::from(POSITIVE_MEAN.to_vec());
    let mean_neg = -&mean_pos;

    // Base sample: points_per_class per class.
    let mut base: Vec<Vector> = Vec::with_capacity(2 * spec.points_per_class);
    let mut labels: Vec<i8> = Vec::with_capacity(2 * spec.points_per_class);
    for _ in 0..spec.points_per_class {
        base.push(sample_mvn(&mean_pos, &chol, &mut rng));
        labels.push(1);
    }
    for _ in 0..spec.points_per_class {
        base.push(sample_mvn(&mean_neg, &chol, &mut rng));
        labels.push(-1);
    }
    // Random label swaps.
    for y in &mut labels {
        if rng.gen::<f64>() < spec.flip_prob {
            *y = -*y;
        }
    }

    // One rotated copy per user.
    let users = (0..spec.num_users)
        .map(|t| {
            let angle = if spec.num_users == 1 {
                0.0
            } else {
                spec.max_rotation * t as f64 / (spec.num_users - 1) as f64
            };
            let rot = Matrix::rotation2d(angle);
            let features: Vec<Vector> = base.iter().map(|x| rot.matvec(x)).collect();
            UserData::new(features, labels.clone())
        })
        .collect();
    MultiUserDataset::new(users)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_matches_spec() {
        let spec = SyntheticSpec { num_users: 5, points_per_class: 50, ..Default::default() };
        let d = generate_synthetic(&spec, 0);
        assert_eq!(d.num_users(), 5);
        assert_eq!(d.dim(), 2);
        for u in d.users() {
            assert_eq!(u.num_samples(), 100);
        }
    }

    #[test]
    fn flip_rate_is_near_nominal() {
        let spec = SyntheticSpec { points_per_class: 2000, num_users: 1, ..Default::default() };
        let d = generate_synthetic(&spec, 1);
        let u = d.user(0);
        // Count labels that disagree with the generating class (first half +1).
        let flipped_pos = u.truth[..2000].iter().filter(|&&y| y == -1).count() as f64 / 2000.0;
        let flipped_neg = u.truth[2000..].iter().filter(|&&y| y == 1).count() as f64 / 2000.0;
        assert!((flipped_pos - 0.1).abs() < 0.03, "{flipped_pos}");
        assert!((flipped_neg - 0.1).abs() < 0.03, "{flipped_neg}");
    }

    #[test]
    fn users_are_rotations_of_the_base() {
        let spec = SyntheticSpec {
            num_users: 3,
            points_per_class: 10,
            max_rotation: std::f64::consts::PI,
            flip_prob: 0.0,
        };
        let d = generate_synthetic(&spec, 2);
        // User 0 has angle 0; user 2 has angle π (pure negation in 2-D).
        let u0 = d.user(0);
        let u2 = d.user(2);
        for (a, b) in u0.features.iter().zip(&u2.features) {
            assert!((a[0] + b[0]).abs() < 1e-9);
            assert!((a[1] + b[1]).abs() < 1e-9);
        }
        // Labels are shared.
        assert_eq!(u0.truth, u2.truth);
    }

    #[test]
    fn rotation_preserves_norms() {
        let spec = SyntheticSpec { num_users: 4, points_per_class: 20, ..Default::default() };
        let d = generate_synthetic(&spec, 3);
        for t in 1..4 {
            for (a, b) in d.user(0).features.iter().zip(&d.user(t).features) {
                assert!((a.norm() - b.norm()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn single_user_gets_zero_rotation() {
        let spec = SyntheticSpec { num_users: 1, points_per_class: 5, ..Default::default() };
        let d = generate_synthetic(&spec, 4);
        assert_eq!(d.num_users(), 1);
        // Class means should be near (±10, ±10) (no rotation applied).
        let u = d.user(0);
        let mean_x: f64 = u.features[..5].iter().map(|f| f[0]).sum::<f64>() / 5.0;
        assert!(mean_x > 0.0, "positive-class x mean should stay positive");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SyntheticSpec::default();
        assert_eq!(generate_synthetic(&spec, 9), generate_synthetic(&spec, 9));
        assert_ne!(generate_synthetic(&spec, 9), generate_synthetic(&spec, 10));
    }

    #[test]
    fn classes_are_roughly_separable_without_flips() {
        let spec = SyntheticSpec {
            num_users: 1,
            points_per_class: 300,
            max_rotation: 0.0,
            flip_prob: 0.0,
        };
        let d = generate_synthetic(&spec, 5);
        let u = d.user(0);
        // The separator x + y = 0 should classify almost everything.
        let correct = u
            .features
            .iter()
            .zip(&u.truth)
            .filter(|(f, &y)| ((f[0] + f[1] >= 0.0) as i32 * 2 - 1) as i8 == y)
            .count();
        assert!(correct as f64 / 600.0 > 0.9, "correct={correct}");
    }

    #[test]
    #[should_panic(expected = "flip_prob")]
    fn invalid_flip_prob_panics() {
        let spec = SyntheticSpec { flip_prob: 1.5, ..Default::default() };
        let _ = generate_synthetic(&spec, 0);
    }
}
