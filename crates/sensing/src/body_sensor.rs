//! End-to-end synthetic reproduction of the paper's body-sensor experiment
//! (Sec. VI-B).
//!
//! 20 subjects wear three TelosB motion nodes (waist, left shin, right
//! shin); each node reports accelerometer x/y/z and gyroscope u/v. Subjects
//! perform two activities — *rest at standing* (+1) and *rest at sitting*
//! (−1). Crucially, "no instruction was given to the subjects regarding the
//! exact placement and orientation of the sensing nodes": we model this as a
//! random orientation per (user, node), fixed across both activities.
//!
//! The generated raw traces then run through the paper's processing chain:
//! generated at 40 Hz → downsampled to 20 Hz → z-normalized → 3.2 s windows
//! with 50 % overlap (70 segments per activity) → 40 features per node → 120
//! features per segment.

use crate::dataset::{MultiUserDataset, UserData};
use crate::features::node_features;
use crate::imu::{generate_imu_trace, ActivityModel, UserTraits};
use crate::signal::Signal;
use crate::window::{samples_for_windows, sliding_windows};
use plos_linalg::Vector;
use rand::SeedableRng;

/// Body regions carrying sensing nodes, in the paper's order.
pub const NODE_PLACEMENTS: [&str; 3] = ["waist", "left-shin", "right-shin"];

/// Parameters of the body-sensor generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BodySensorSpec {
    /// Number of subjects (paper: 20).
    pub num_users: usize,
    /// Windowed segments per activity per subject (paper: 70).
    pub segments_per_activity: usize,
    /// Processing rate after downsampling, Hz (paper: 20).
    pub sample_rate_hz: f64,
    /// Window length in seconds (paper: 3.2).
    pub window_secs: f64,
    /// Window overlap fraction (paper: 0.5).
    pub overlap: f64,
    /// Strength of personal traits in `[0, 1]`. The body-sensor dataset is
    /// the paper's *most* personal one (free placement), so the default is
    /// high.
    pub personal_variation: f64,
}

impl Default for BodySensorSpec {
    fn default() -> Self {
        BodySensorSpec {
            num_users: 20,
            segments_per_activity: 70,
            sample_rate_hz: 20.0,
            window_secs: 3.2,
            overlap: 0.5,
            personal_variation: 0.6,
        }
    }
}

/// Motion model of one activity at one body region.
///
/// Standing: upright gravity on every node, pronounced postural sway.
/// Sitting: reclined waist, shins angled forward under the chair, much less
/// sway. The absolute values are nominal; the classifier only needs the two
/// classes to differ consistently while user traits perturb both.
fn activity_model(activity: i8, node: usize) -> ActivityModel {
    match (activity, node) {
        // Standing: upright posture, pronounced sway, restless drift.
        (1, 0) => ActivityModel {
            name: "rest-standing/waist",
            accel_base: [0.05, 0.02, 0.99],
            sway_amp: [0.045, 0.040, 0.012],
            sway_freq_hz: 0.65,
            gyro_amp: [0.08, 0.065, 0.02],
            gyro_freq_hz: 0.65,
            noise_std: 0.04,
            drift_std: 0.12,
            drift_tau_s: 3.0,
        },
        (1, _) => ActivityModel {
            name: "rest-standing/shin",
            accel_base: [0.02, 0.01, 1.0],
            sway_amp: [0.035, 0.028, 0.009],
            sway_freq_hz: 0.8,
            gyro_amp: [0.06, 0.045, 0.015],
            gyro_freq_hz: 0.8,
            noise_std: 0.04,
            drift_std: 0.10,
            drift_tau_s: 3.0,
        },
        // Sitting: mild recline, shins angled, calmer but still drifting.
        (-1, 0) => ActivityModel {
            name: "rest-sitting/waist",
            accel_base: [0.12, 0.04, 0.97],
            sway_amp: [0.030, 0.024, 0.008],
            sway_freq_hz: 0.40,
            gyro_amp: [0.045, 0.034, 0.012],
            gyro_freq_hz: 0.40,
            noise_std: 0.04,
            drift_std: 0.10,
            drift_tau_s: 4.0,
        },
        (-1, _) => ActivityModel {
            name: "rest-sitting/shin",
            accel_base: [0.13, 0.05, 0.96],
            sway_amp: [0.022, 0.017, 0.006],
            sway_freq_hz: 0.35,
            gyro_amp: [0.034, 0.026, 0.010],
            gyro_freq_hz: 0.35,
            noise_std: 0.04,
            drift_std: 0.10,
            drift_tau_s: 4.0,
        },
        _ => unreachable!("activity labels are ±1"),
    }
}

/// Generates the body-sensor multi-user dataset.
///
/// Deterministic given `seed`. Each user contributes
/// `2 × segments_per_activity` samples of dimension 120 with labels
/// `+1` (standing) / `−1` (sitting).
///
/// # Panics
///
/// Panics if any spec field is zero/degenerate.
// Allowed: `per_activity` always holds 3 nodes of 5 TelosB channels each
// and windows come from `sliding_windows` over the channel length, so the
// nested `[node][ch]` and window-range accesses are in bounds by
// construction.
#[allow(clippy::indexing_slicing)]
pub fn generate_body_sensor(spec: &BodySensorSpec, seed: u64) -> MultiUserDataset {
    assert!(spec.num_users > 0, "num_users must be positive");
    assert!(spec.segments_per_activity > 0, "segments_per_activity must be positive");
    let window_len = (spec.window_secs * spec.sample_rate_hz).round() as usize;
    assert!(window_len > 1, "window too short");

    let needed_20hz = samples_for_windows(spec.segments_per_activity, window_len, spec.overlap);
    // Generate at 2x the processing rate so the downsampling path is real.
    let raw_rate = spec.sample_rate_hz * 2.0;
    let needed_raw = needed_20hz * 2;

    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut users = Vec::with_capacity(spec.num_users);

    for _user in 0..spec.num_users {
        // One set of traits per node, shared by both activities: the device
        // is placed once.
        let node_traits: Vec<UserTraits> =
            (0..3).map(|_| UserTraits::sample(spec.personal_variation, true, &mut rng)).collect();

        let mut features: Vec<Vector> = Vec::new();
        let mut labels: Vec<i8> = Vec::new();

        // Generate and downsample both activities first; normalization
        // statistics are computed over the user's *whole* recording (the
        // paper normalizes the full 5-minute session), so the
        // between-activity mean shift — the main class signal — survives.
        let mut per_activity: Vec<(i8, Vec<Vec<Signal>>)> = Vec::with_capacity(2);
        for &activity in &[1i8, -1i8] {
            let mut node_channels: Vec<Vec<Signal>> = Vec::with_capacity(3);
            for (node, traits) in node_traits.iter().enumerate() {
                let model = activity_model(activity, node);
                let trace = generate_imu_trace(&model, traits, needed_raw, raw_rate, &mut rng);
                let processed: Vec<Signal> = trace
                    .telosb_channels()
                    .into_iter()
                    .map(|s| s.downsample(spec.sample_rate_hz))
                    .collect();
                node_channels.push(processed);
            }
            per_activity.push((activity, node_channels));
        }
        // Joint per-channel z-normalization across both activities.
        for node in 0..3 {
            for ch in 0..5 {
                let mut all: Vec<f64> = Vec::new();
                for (_, channels) in &per_activity {
                    all.extend_from_slice(channels[node][ch].samples());
                }
                let n = all.len() as f64;
                let mean = all.iter().sum::<f64>() / n;
                let std = (all.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt();
                for (_, channels) in &mut per_activity {
                    let rate = channels[node][ch].sample_rate_hz();
                    let normalized: Vec<f64> = channels[node][ch]
                        .samples()
                        .iter()
                        .map(|x| if std > 0.0 { (x - mean) / std } else { x - mean })
                        .collect();
                    channels[node][ch] = Signal::new(rate, normalized);
                }
            }
        }

        for (activity, node_channels) in &per_activity {
            let n = node_channels[0][0].len();
            for range in sliding_windows(n, window_len, spec.overlap) {
                let mut combined: Vec<f64> = Vec::with_capacity(120);
                for channels in node_channels {
                    let slice = |c: usize| &channels[c].samples()[range.clone()];
                    let nf = node_features(slice(0), slice(1), slice(2), slice(3), slice(4));
                    combined.extend(nf.iter().copied());
                }
                features.push(Vector::from(combined));
                labels.push(*activity);
            }
        }
        users.push(UserData::new(features, labels));
    }
    MultiUserDataset::new(users)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> BodySensorSpec {
        BodySensorSpec { num_users: 3, segments_per_activity: 10, ..Default::default() }
    }

    #[test]
    fn shape_matches_paper_configuration() {
        let d = generate_body_sensor(&small_spec(), 0);
        assert_eq!(d.num_users(), 3);
        assert_eq!(d.dim(), 120);
        for u in d.users() {
            assert_eq!(u.num_samples(), 20);
            let standing = u.truth.iter().filter(|&&y| y == 1).count();
            assert_eq!(standing, 10);
        }
    }

    #[test]
    fn features_are_finite() {
        let d = generate_body_sensor(&small_spec(), 1);
        for u in d.users() {
            for f in &u.features {
                assert!(f.is_finite());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = small_spec();
        assert_eq!(generate_body_sensor(&spec, 7), generate_body_sensor(&spec, 7));
        assert_ne!(generate_body_sensor(&spec, 7), generate_body_sensor(&spec, 8));
    }

    #[test]
    fn classes_differ_within_each_user() {
        // A nearest-centroid rule fit on a user's own data should beat
        // chance comfortably: the two activities have distinct signatures.
        let d = generate_body_sensor(&small_spec(), 2);
        for u in d.users() {
            let dim = u.dim();
            let mut mean_pos = Vector::zeros(dim);
            let mut mean_neg = Vector::zeros(dim);
            let (mut np, mut nn) = (0.0, 0.0);
            for (f, &y) in u.features.iter().zip(&u.truth) {
                if y == 1 {
                    mean_pos += f;
                    np += 1.0;
                } else {
                    mean_neg += f;
                    nn += 1.0;
                }
            }
            mean_pos.scale_mut(1.0 / np);
            mean_neg.scale_mut(1.0 / nn);
            let correct = u
                .features
                .iter()
                .zip(&u.truth)
                .filter(|(f, &y)| {
                    let pred = if f.distance_squared(&mean_pos) < f.distance_squared(&mean_neg) {
                        1
                    } else {
                        -1
                    };
                    pred == y
                })
                .count();
            let acc = correct as f64 / u.num_samples() as f64;
            assert!(acc > 0.85, "within-user separability too low: {acc}");
        }
    }

    #[test]
    fn users_exhibit_personal_traits() {
        // Feature centroids of the same activity should differ more across
        // users than the within-user activity noise would explain.
        let d = generate_body_sensor(&small_spec(), 3);
        let centroid = |t: usize| {
            let u = d.user(t);
            let mut m = Vector::zeros(u.dim());
            let mut n = 0.0;
            for (f, &y) in u.features.iter().zip(&u.truth) {
                if y == 1 {
                    m += f;
                    n += 1.0;
                }
            }
            m.scale_mut(1.0 / n);
            m
        };
        let c0 = centroid(0);
        let c1 = centroid(1);
        assert!(c0.distance(&c1) > 0.5, "users look identical: {}", c0.distance(&c1));
    }

    #[test]
    fn personal_variation_scales_user_differences() {
        // Cross-user centroid gaps must grow with the variation knob
        // (residual gaps at zero variation come from noise and postural
        // drift realizations).
        let gap_at = |variation: f64| {
            let spec = BodySensorSpec {
                personal_variation: variation,
                num_users: 2,
                segments_per_activity: 8,
                ..Default::default()
            };
            let d = generate_body_sensor(&spec, 4);
            let centroid = |t: usize| {
                let u = d.user(t);
                let mut m = Vector::zeros(u.dim());
                let mut n = 0.0;
                for (f, &y) in u.features.iter().zip(&u.truth) {
                    if y == 1 {
                        m += f;
                        n += 1.0;
                    }
                }
                m.scale_mut(1.0 / n);
                m
            };
            centroid(0).distance(&centroid(1))
        };
        assert!(gap_at(0.9) > gap_at(0.0), "strong variation should separate users more than none");
    }
}
