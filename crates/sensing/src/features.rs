//! Statistical feature extraction (the paper's Sec. VI-B pipeline).
//!
//! Two families of features per windowed segment:
//!
//! * **per-signal** — mean, standard deviation, median absolute deviation,
//!   maximum, minimum, energy, interquartile range (7 features per channel);
//! * **cross-signal** — mean accelerometer magnitude, the angles between the
//!   (mean) acceleration and the three axes, and the signal magnitude area
//!   (the normalized integral of absolute value) of the accelerometer.
//!
//! A TelosB node contributes 5 channels × 7 + 5 = 40 features; three nodes
//! concatenate to the paper's 120-dimensional vectors.

use plos_linalg::stats;
use plos_linalg::Vector;

/// Number of per-signal statistics extracted by [`signal_features`].
pub const PER_SIGNAL_FEATURES: usize = 7;

/// Number of cross-signal accelerometer features extracted by
/// [`accel_cross_features`].
pub const CROSS_FEATURES: usize = 5;

/// Features of one TelosB node window: 5 channels × 7 + 5.
pub const NODE_FEATURES: usize = 5 * PER_SIGNAL_FEATURES + CROSS_FEATURES;

/// The 7 per-signal statistics of one windowed channel, in the order mean,
/// std, MAD, max, min, energy, IQR.
///
/// # Panics
///
/// Panics if the window is empty.
// Allowed: the non-empty assert below guarantees every `stats::*` call
// returns `Ok`, so the expects are unreachable.
#[allow(clippy::expect_used)]
pub fn signal_features(samples: &[f64]) -> [f64; PER_SIGNAL_FEATURES] {
    assert!(!samples.is_empty(), "cannot featurize an empty window");
    [
        stats::mean(samples).expect("non-empty"),
        stats::std_dev(samples).expect("non-empty"),
        stats::median_absolute_deviation(samples).expect("non-empty"),
        stats::max(samples).expect("non-empty"),
        stats::min(samples).expect("non-empty"),
        stats::energy(samples).expect("non-empty"),
        stats::interquartile_range(samples).expect("non-empty"),
    ]
}

/// The 5 cross-signal accelerometer features of one window: mean magnitude,
/// angles between the mean acceleration and the x/y/z axes, and signal
/// magnitude area.
///
/// # Panics
///
/// Panics if the three channels are empty or of differing lengths.
pub fn accel_cross_features(ax: &[f64], ay: &[f64], az: &[f64]) -> [f64; CROSS_FEATURES] {
    assert!(!ax.is_empty(), "cannot featurize an empty window");
    assert!(
        ax.len() == ay.len() && ay.len() == az.len(),
        "accelerometer channels must have equal length"
    );
    let n = ax.len() as f64;

    // Mean per-sample magnitude.
    let mean_magnitude =
        ax.iter().zip(ay).zip(az).map(|((&x, &y), &z)| (x * x + y * y + z * z).sqrt()).sum::<f64>()
            / n;

    // Angles between the mean acceleration vector and each axis.
    let mx = ax.iter().sum::<f64>() / n;
    let my = ay.iter().sum::<f64>() / n;
    let mz = az.iter().sum::<f64>() / n;
    let norm = (mx * mx + my * my + mz * mz).sqrt();
    let angle = |component: f64| {
        if norm > 0.0 {
            (component / norm).clamp(-1.0, 1.0).acos()
        } else {
            std::f64::consts::FRAC_PI_2
        }
    };

    // Signal magnitude area: normalized integral of |x|+|y|+|z|.
    let sma =
        ax.iter().zip(ay).zip(az).map(|((&x, &y), &z)| x.abs() + y.abs() + z.abs()).sum::<f64>()
            / n;

    [mean_magnitude, angle(mx), angle(my), angle(mz), sma]
}

/// Featurizes one TelosB node window (accel x/y/z + gyro u/v) into the
/// 40-dimensional node feature vector.
///
/// # Panics
///
/// Panics if any channel is empty or channels have differing lengths.
pub fn node_features(ax: &[f64], ay: &[f64], az: &[f64], gu: &[f64], gv: &[f64]) -> Vector {
    let len = ax.len();
    assert!(
        [ay.len(), az.len(), gu.len(), gv.len()].iter().all(|&l| l == len),
        "all node channels must have equal length"
    );
    let mut out = Vec::with_capacity(NODE_FEATURES);
    for channel in [ax, ay, az, gu, gv] {
        out.extend_from_slice(&signal_features(channel));
    }
    out.extend_from_slice(&accel_cross_features(ax, ay, az));
    Vector::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_signal_feature_values() {
        let f = signal_features(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(f[0], 5.0); // mean
        assert_eq!(f[1], 2.0); // std
        assert_eq!(f[2], 0.5); // MAD
        assert_eq!(f[3], 9.0); // max
        assert_eq!(f[4], 2.0); // min
        assert!(f[5] > 0.0); // energy
        assert!(f[6] > 0.0); // IQR
    }

    #[test]
    fn cross_features_pure_gravity_on_z() {
        let n = 16;
        let zero = vec![0.0; n];
        let one = vec![1.0; n];
        let f = accel_cross_features(&zero, &zero, &one);
        assert!((f[0] - 1.0).abs() < 1e-12, "magnitude");
        assert!((f[1] - std::f64::consts::FRAC_PI_2).abs() < 1e-12, "angle to x");
        assert!((f[2] - std::f64::consts::FRAC_PI_2).abs() < 1e-12, "angle to y");
        assert!(f[3].abs() < 1e-12, "angle to z is zero");
        assert!((f[4] - 1.0).abs() < 1e-12, "sma");
    }

    #[test]
    fn cross_features_zero_acceleration() {
        let zero = vec![0.0; 4];
        let f = accel_cross_features(&zero, &zero, &zero);
        assert_eq!(f[0], 0.0);
        // Degenerate direction: angles default to π/2.
        assert_eq!(f[1], std::f64::consts::FRAC_PI_2);
        assert_eq!(f[4], 0.0);
    }

    #[test]
    fn angles_detect_orientation_difference() {
        let n = 8;
        let zero = vec![0.0; n];
        let one = vec![1.0; n];
        let on_x = accel_cross_features(&one, &zero, &zero);
        let on_z = accel_cross_features(&zero, &zero, &one);
        // Same magnitude, very different angle signature.
        assert!((on_x[0] - on_z[0]).abs() < 1e-12);
        assert!((on_x[1] - on_z[1]).abs() > 1.0);
    }

    #[test]
    fn node_feature_vector_has_expected_dim() {
        let n = 64;
        let ch: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let f = node_features(&ch, &ch, &ch, &ch, &ch);
        assert_eq!(f.len(), NODE_FEATURES);
        assert_eq!(NODE_FEATURES, 40);
        assert!(f.is_finite());
    }

    #[test]
    fn three_nodes_give_the_papers_120_dims() {
        assert_eq!(3 * NODE_FEATURES, 120);
    }

    #[test]
    #[should_panic(expected = "empty window")]
    fn empty_window_panics() {
        let _ = signal_features(&[]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_channels_panic() {
        let _ = node_features(&[1.0], &[1.0, 2.0], &[1.0], &[1.0], &[1.0]);
    }
}
