//! Random-sampling helpers shared by the data generators.

use plos_linalg::{Matrix, Vector};
use rand::Rng;

/// One standard-normal draw (Box–Muller; avoids a dependency on
/// `rand_distr`, which is not on the offline crate list).
pub fn randn(rng: &mut impl Rng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        }
    }
}

/// A vector of `n` independent standard-normal draws.
pub fn randn_vector(n: usize, rng: &mut impl Rng) -> Vector {
    (0..n).map(|_| randn(rng)).collect()
}

/// Samples from `N(mean, L·Lᵀ)` given the lower Cholesky factor `L` of the
/// covariance.
///
/// # Panics
///
/// Panics if `mean.len()` does not match `chol_l`'s dimension or `chol_l` is
/// not square.
pub fn sample_mvn(mean: &Vector, chol_l: &Matrix, rng: &mut impl Rng) -> Vector {
    assert!(chol_l.is_square(), "Cholesky factor must be square");
    assert_eq!(mean.len(), chol_l.nrows(), "mean/covariance dimension mismatch");
    let z = randn_vector(mean.len(), rng);
    let mut x = chol_l.matvec(&z);
    x += mean;
    x
}

/// A uniformly random 3-D rotation built from random Euler angles.
///
/// Not Haar-uniform over SO(3), but adequate for modeling arbitrary device
/// placement; yaw/pitch/roll are each uniform over their natural ranges.
pub fn random_rotation3d(rng: &mut impl Rng) -> Matrix {
    let yaw = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    let pitch = rng.gen_range(-std::f64::consts::FRAC_PI_2..std::f64::consts::FRAC_PI_2);
    let roll = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
    Matrix::rotation3d(yaw, pitch, roll)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let samples: Vec<f64> = (0..20_000).map(|_| randn(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / samples.len() as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn mvn_reproduces_covariance() {
        // Paper covariance Σ = [[225,−180],[−180,225]] has Cholesky
        // L = [[15, 0], [−12, 9]].
        let l = Matrix::from_rows(&[vec![15.0, 0.0], vec![-12.0, 9.0]]).unwrap();
        let mean = Vector::from(vec![10.0, 10.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let n = 30_000;
        let samples: Vec<Vector> = (0..n).map(|_| sample_mvn(&mean, &l, &mut rng)).collect();
        let m0: f64 = samples.iter().map(|s| s[0]).sum::<f64>() / n as f64;
        let m1: f64 = samples.iter().map(|s| s[1]).sum::<f64>() / n as f64;
        assert!((m0 - 10.0).abs() < 0.3);
        assert!((m1 - 10.0).abs() < 0.3);
        let cov01: f64 = samples.iter().map(|s| (s[0] - m0) * (s[1] - m1)).sum::<f64>() / n as f64;
        let var0: f64 = samples.iter().map(|s| (s[0] - m0) * (s[0] - m0)).sum::<f64>() / n as f64;
        assert!((var0 - 225.0).abs() < 10.0, "var0={var0}");
        assert!((cov01 + 180.0).abs() < 10.0, "cov01={cov01}");
    }

    #[test]
    fn random_rotation_is_orthonormal() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let r = random_rotation3d(&mut rng);
            let rtr = r.transpose().matmul(&r).unwrap();
            for i in 0..3 {
                for j in 0..3 {
                    let expected = if i == j { 1.0 } else { 0.0 };
                    assert!((rtr[(i, j)] - expected).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mvn_checks_dimensions() {
        let l = Matrix::identity(2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let _ = sample_mvn(&Vector::zeros(3), &l, &mut rng);
    }
}
