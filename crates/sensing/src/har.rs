//! HAR-like feature-space dataset (stand-in for UCI HAR, Sec. VI-C).
//!
//! The UCI Human Activity Recognition dataset has 30 users wearing a
//! waist-mounted smartphone, 561 engineered features, and — per the paper's
//! Sec. VI-C analysis — *milder* personal traits than the body-sensor data,
//! because the phone position is fixed and a single device gives a less
//! complete view of motion. The paper classifies the least separable pair,
//! *sitting* vs *standing*, with ~50 samples per activity per user.
//!
//! This generator reproduces those statistics with a shared low-rank class
//! structure in 561 dimensions plus a per-user perturbation whose strength
//! is the `personal_variation` knob: each user applies a few random Givens
//! rotations and a small offset to the common distribution. At the default
//! (mild) setting the *All* baseline remains competitive, matching the
//! paper's observation that the PLOS-vs-All gap is smaller on HAR.

use crate::dataset::{MultiUserDataset, UserData};
use crate::rng::{randn, randn_vector};
use plos_linalg::Vector;
use rand::{Rng, SeedableRng};

/// Parameters of the HAR-like generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarSpec {
    /// Number of users (UCI HAR: 30).
    pub num_users: usize,
    /// Samples per class per user (UCI HAR sitting/standing: ~50).
    pub samples_per_class: usize,
    /// Feature dimension (UCI HAR: 561).
    pub dim: usize,
    /// Rank of the shared latent structure.
    pub latent_rank: usize,
    /// Distance between the two class means along the class direction.
    pub class_separation: f64,
    /// Personal-trait strength in `[0, 1]`; HAR default is mild.
    pub personal_variation: f64,
    /// Standard deviation of isotropic feature noise.
    pub noise_std: f64,
}

impl Default for HarSpec {
    fn default() -> Self {
        HarSpec {
            num_users: 30,
            samples_per_class: 50,
            dim: 561,
            latent_rank: 10,
            class_separation: 2.8,
            personal_variation: 0.4,
            noise_std: 0.6,
        }
    }
}

/// One user's Givens-rotation perturbation: rotate coordinates `(i, j)` by
/// `angle`.
#[derive(Debug, Clone, Copy)]
struct Givens {
    i: usize,
    j: usize,
    cos: f64,
    sin: f64,
}

impl Givens {
    fn apply(&self, x: &mut Vector) {
        let xi = x[self.i];
        let xj = x[self.j];
        x[self.i] = self.cos * xi - self.sin * xj;
        x[self.j] = self.sin * xi + self.cos * xj;
    }
}

/// Generates the HAR-like multi-user dataset (`+1` = standing, `−1` =
/// sitting).
///
/// Deterministic given `seed`.
///
/// # Panics
///
/// Panics on degenerate spec fields (zero users/samples/dim, rank larger
/// than dim, variation outside `[0, 1]`).
pub fn generate_har(spec: &HarSpec, seed: u64) -> MultiUserDataset {
    assert!(spec.num_users > 0, "num_users must be positive");
    assert!(spec.samples_per_class > 0, "samples_per_class must be positive");
    assert!(spec.dim >= 2, "dim must be at least 2");
    assert!(spec.latent_rank >= 1 && spec.latent_rank <= spec.dim, "bad latent rank");
    assert!((0.0..=1.0).contains(&spec.personal_variation), "personal_variation must be in [0,1]");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);

    // Shared structure: a unit class direction and a latent basis.
    let mut class_dir = randn_vector(spec.dim, &mut rng);
    class_dir.scale_mut(1.0 / class_dir.norm());
    let latent_basis: Vec<Vector> = (0..spec.latent_rank)
        .map(|_| {
            let mut b = randn_vector(spec.dim, &mut rng);
            b.scale_mut(1.0 / b.norm());
            b
        })
        .collect();

    let mut users = Vec::with_capacity(spec.num_users);
    for _ in 0..spec.num_users {
        // Personal perturbation: a handful of random-plane rotations plus an
        // offset, all scaled by the variation knob.
        let rotations: Vec<Givens> = (0..8)
            .map(|_| {
                let i = rng.gen_range(0..spec.dim);
                let mut j = rng.gen_range(0..spec.dim);
                while j == i {
                    j = rng.gen_range(0..spec.dim);
                }
                let angle = spec.personal_variation * std::f64::consts::FRAC_PI_3 * randn(&mut rng);
                Givens { i, j, cos: angle.cos(), sin: angle.sin() }
            })
            .collect();
        let mut offset = randn_vector(spec.dim, &mut rng);
        offset.scale_mut(spec.personal_variation * 0.8 / (spec.dim as f64).sqrt() * 10.0);

        let mut features = Vec::with_capacity(2 * spec.samples_per_class);
        let mut labels = Vec::with_capacity(2 * spec.samples_per_class);
        for &label in &[1i8, -1i8] {
            for _ in 0..spec.samples_per_class {
                // Shared class mean ± separation/2 along the class direction.
                let mut x = class_dir.scaled(label as f64 * spec.class_separation / 2.0);
                // Shared latent variation.
                for b in &latent_basis {
                    x.axpy(randn(&mut rng) * 0.8, b);
                }
                // Isotropic noise.
                for v in x.iter_mut() {
                    *v += spec.noise_std * randn(&mut rng);
                }
                // Personal transform.
                for g in &rotations {
                    g.apply(&mut x);
                }
                x += &offset;
                features.push(x);
                labels.push(label);
            }
        }
        users.push(UserData::new(features, labels));
    }
    MultiUserDataset::new(users)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> HarSpec {
        HarSpec { num_users: 4, samples_per_class: 20, dim: 60, ..Default::default() }
    }

    #[test]
    fn shape_matches_spec() {
        let d = generate_har(&small_spec(), 0);
        assert_eq!(d.num_users(), 4);
        assert_eq!(d.dim(), 60);
        for u in d.users() {
            assert_eq!(u.num_samples(), 40);
            assert_eq!(u.truth.iter().filter(|&&y| y == 1).count(), 20);
        }
    }

    #[test]
    fn default_spec_matches_uci_har_statistics() {
        let spec = HarSpec::default();
        assert_eq!(spec.num_users, 30);
        assert_eq!(spec.dim, 561);
        assert_eq!(spec.samples_per_class, 50);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = small_spec();
        assert_eq!(generate_har(&spec, 3), generate_har(&spec, 3));
        assert_ne!(generate_har(&spec, 3), generate_har(&spec, 4));
    }

    #[test]
    fn classes_are_linearly_separable_within_users() {
        let d = generate_har(&small_spec(), 1);
        for u in d.users() {
            // Project onto the difference of class centroids; count the
            // sign agreement.
            let dim = u.dim();
            let mut mp = Vector::zeros(dim);
            let mut mn = Vector::zeros(dim);
            let (mut np, mut nn) = (0.0, 0.0);
            for (f, &y) in u.features.iter().zip(&u.truth) {
                if y == 1 {
                    mp += f;
                    np += 1.0;
                } else {
                    mn += f;
                    nn += 1.0;
                }
            }
            mp.scale_mut(1.0 / np);
            mn.scale_mut(1.0 / nn);
            let w = &mp - &mn;
            let mid = (&mp + &mn).scaled(0.5);
            let correct = u
                .features
                .iter()
                .zip(&u.truth)
                .filter(|(f, &y)| {
                    let s = w.dot(&(*f - &mid));
                    (if s >= 0.0 { 1 } else { -1 }) == y
                })
                .count();
            let acc = correct as f64 / u.num_samples() as f64;
            assert!(acc > 0.8, "per-user separability too low: {acc}");
        }
    }

    #[test]
    fn har_traits_milder_than_high_variation() {
        // Same geometry measured at two variation levels: the cross-user
        // centroid spread must grow with variation.
        let mild = HarSpec { personal_variation: 0.1, ..small_spec() };
        let wild = HarSpec { personal_variation: 0.9, ..small_spec() };
        let spread = |spec: &HarSpec| {
            let d = generate_har(spec, 5);
            let centroid = |t: usize| {
                let u = d.user(t);
                let mut m = Vector::zeros(u.dim());
                for f in &u.features {
                    m += f;
                }
                m.scale_mut(1.0 / u.num_samples() as f64);
                m
            };
            let c0 = centroid(0);
            (1..d.num_users()).map(|t| centroid(t).distance(&c0)).sum::<f64>()
        };
        assert!(spread(&wild) > spread(&mild) * 1.5);
    }

    #[test]
    #[should_panic(expected = "bad latent rank")]
    fn rank_above_dim_panics() {
        let spec = HarSpec { latent_rank: 100, dim: 10, ..Default::default() };
        let _ = generate_har(&spec, 0);
    }
}
