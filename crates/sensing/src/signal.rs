//! Uniformly sampled scalar sensor traces.
//!
//! The paper's pipeline (Sec. VI-B): raw node signals are "first
//! downsampled to 20 Hz and normalized" before windowing. [`Signal`] carries
//! one channel (e.g. accelerometer x) with its sample rate and implements
//! those two steps.

/// A uniformly sampled scalar signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    sample_rate_hz: f64,
    samples: Vec<f64>,
}

impl Signal {
    /// Creates a signal from raw samples at the given rate.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate_hz` is not finite and positive.
    pub fn new(sample_rate_hz: f64, samples: Vec<f64>) -> Self {
        assert!(
            sample_rate_hz.is_finite() && sample_rate_hz > 0.0,
            "sample rate must be positive, got {sample_rate_hz}"
        );
        Signal { sample_rate_hz, samples }
    }

    /// Sample rate in Hz.
    pub fn sample_rate_hz(&self) -> f64 {
        self.sample_rate_hz
    }

    /// Borrow the samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if the signal holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Duration in seconds (`len / rate`).
    pub fn duration_secs(&self) -> f64 {
        self.samples.len() as f64 / self.sample_rate_hz
    }

    /// Downsamples by integer decimation with block averaging to
    /// `target_hz`.
    ///
    /// The source rate must be an integer multiple of the target rate (the
    /// paper decimates 100 Hz-class node output to 20 Hz). Block averaging
    /// doubles as a crude anti-aliasing filter.
    ///
    /// # Panics
    ///
    /// Panics if `target_hz` does not evenly divide the current rate.
    pub fn downsample(&self, target_hz: f64) -> Signal {
        assert!(target_hz > 0.0, "target rate must be positive");
        let ratio = self.sample_rate_hz / target_hz;
        let factor = ratio.round() as usize;
        assert!(
            factor >= 1 && (ratio - factor as f64).abs() < 1e-9,
            "target rate {target_hz} must evenly divide source rate {}",
            self.sample_rate_hz
        );
        if factor == 1 {
            return self.clone();
        }
        let samples = self
            .samples
            .chunks_exact(factor)
            .map(|chunk| chunk.iter().sum::<f64>() / factor as f64)
            .collect();
        Signal { sample_rate_hz: target_hz, samples }
    }

    /// Returns the z-score-normalized signal (zero mean, unit variance).
    ///
    /// A constant signal is centered but left unscaled. The empty signal is
    /// returned unchanged.
    pub fn normalized(&self) -> Signal {
        if self.samples.is_empty() {
            return self.clone();
        }
        let n = self.samples.len() as f64;
        let mean = self.samples.iter().sum::<f64>() / n;
        let var = self.samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        let samples = self
            .samples
            .iter()
            .map(|x| if std > 0.0 { (x - mean) / std } else { x - mean })
            .collect();
        Signal { sample_rate_hz: self.sample_rate_hz, samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let s = Signal::new(20.0, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.sample_rate_hz(), 20.0);
        assert_eq!(s.len(), 4);
        assert!(!s.is_empty());
        assert_eq!(s.duration_secs(), 0.2);
    }

    #[test]
    fn downsample_by_block_average() {
        let s = Signal::new(40.0, vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0]);
        let d = s.downsample(20.0);
        assert_eq!(d.sample_rate_hz(), 20.0);
        assert_eq!(d.samples(), &[2.0, 6.0, 10.0]);
    }

    #[test]
    fn downsample_identity_factor() {
        let s = Signal::new(20.0, vec![1.0, 2.0]);
        assert_eq!(s.downsample(20.0), s);
    }

    #[test]
    fn downsample_drops_trailing_partial_block() {
        let s = Signal::new(40.0, vec![2.0, 4.0, 6.0]);
        let d = s.downsample(20.0);
        assert_eq!(d.samples(), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "evenly divide")]
    fn downsample_rejects_non_integer_factor() {
        let _ = Signal::new(30.0, vec![0.0; 10]).downsample(20.0);
    }

    #[test]
    fn normalization_zero_mean_unit_var() {
        let s = Signal::new(20.0, vec![2.0, 4.0, 6.0, 8.0]);
        let n = s.normalized();
        let mean: f64 = n.samples().iter().sum::<f64>() / 4.0;
        let var: f64 = n.samples().iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-12);
        assert!((var - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_normalizes_to_zero() {
        let s = Signal::new(20.0, vec![5.0; 8]).normalized();
        assert!(s.samples().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_signal_normalizes_to_itself() {
        let s = Signal::new(20.0, vec![]);
        assert_eq!(s.normalized(), s);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "sample rate must be positive")]
    fn rejects_bad_rate() {
        let _ = Signal::new(0.0, vec![]);
    }
}
