// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Mobile-sensing data substrate for the PLOS reproduction.
//!
//! The paper evaluates PLOS on three data sources; none of the original data
//! is publicly redistributable (the body-sensor corpus was collected by the
//! authors; UCI HAR is an external download), so this crate implements
//! faithful synthetic substitutes that exercise the *same* processing code
//! paths the paper describes:
//!
//! * [`body_sensor`] — reproduces the Sec. VI-B setup end to end: 20
//!   subjects × 3 TelosB nodes (waist, left shin, right shin), each node
//!   reporting accelerometer x/y/z and gyroscope u/v at 20 Hz; free
//!   placement is modeled with per-user random device orientations. The raw
//!   traces are windowed (3.2 s, 50 % overlap → 70 segments per activity)
//!   and featurized to the paper's 120-dimensional vectors.
//! * [`har`] — a feature-space generative model mimicking the UCI HAR
//!   dataset (Sec. VI-C): 30 users, 561 features, *sitting* vs *standing*,
//!   with milder personal traits than the body-sensor data (the paper's own
//!   explanation for the smaller PLOS-vs-All gap there).
//! * [`synthetic`] — exactly the paper's 2-D Gaussian construction
//!   (Sec. VI-D), including the 10 % label flips and the per-user rotations.
//!
//! Supporting modules: [`signal`] (traces, downsampling, normalization),
//! [`imu`] (harmonic IMU simulation), [`window`] (sliding windows),
//! [`features`] (the statistical feature extractor), [`dataset`] (multi-user
//! containers and label masking), and [`rng`] (Gaussian sampling helpers).

pub mod body_sensor;
pub mod dataset;
pub mod features;
pub mod har;
pub mod imu;
pub mod multiclass;
pub mod rng;
pub mod signal;
pub mod synthetic;
pub mod window;

pub use body_sensor::{generate_body_sensor, BodySensorSpec};
pub use dataset::{LabelMask, MultiUserDataset, UserData};
pub use har::{generate_har, HarSpec};
pub use synthetic::{generate_synthetic, SyntheticSpec};
