//! End-to-end training benchmarks: centralized vs. distributed PLOS on a
//! small synthetic cohort (the Fig. 12 comparison at criterion scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plos_core::{CentralizedPlos, DistributedPlos, PlosConfig};
use plos_sensing::dataset::LabelMask;
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};
use std::hint::black_box;

fn cohort(users: usize) -> plos_sensing::dataset::MultiUserDataset {
    let spec = SyntheticSpec {
        num_users: users,
        points_per_class: 30,
        max_rotation: std::f64::consts::FRAC_PI_4,
        flip_prob: 0.05,
    };
    generate_synthetic(&spec, 9).mask_labels(&LabelMask::providers(users / 2, 0.1), 3)
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("plos_fit");
    group.sample_size(10);
    for &users in &[4usize, 8, 16] {
        let data = cohort(users);
        let config = PlosConfig::fast();
        group.bench_with_input(BenchmarkId::new("centralized", users), &users, |b, _| {
            let trainer = CentralizedPlos::new(config.clone());
            b.iter(|| black_box(trainer.fit(&data)));
        });
        group.bench_with_input(BenchmarkId::new("distributed", users), &users, |b, _| {
            let trainer = DistributedPlos::new(config.clone());
            b.iter(|| black_box(trainer.fit(&data)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
