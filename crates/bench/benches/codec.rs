//! Microbenchmark: wire-format encode/decode of the distributed-PLOS
//! messages (every ADMM round moves two of these per user).

// Allowed: bench setup code; the bytes being decoded were just produced by
// the encoder, so the expect cannot fail.
#![allow(clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plos_linalg::Vector;
use plos_net::Message;
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("message_codec");
    // 121 = the body-sensor dimension + bias; 562 = HAR + bias.
    for &d in &[3usize, 121, 562] {
        let msg = Message::Broadcast {
            round: 12,
            w0: Vector::filled(d, 0.5),
            u_t: Vector::filled(d, -0.25),
        };
        group.bench_with_input(BenchmarkId::new("encode", d), &d, |b, _| {
            b.iter(|| black_box(msg.encode()));
        });
        let bytes = msg.encode();
        group.bench_with_input(BenchmarkId::new("decode", d), &d, |b, _| {
            b.iter(|| black_box(Message::decode(bytes.clone()).expect("valid bytes")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
