//! Microbenchmark: the grouped QP solver that backs both PLOS duals.
//!
//! The cutting-plane loops re-solve the dual after every constraint batch,
//! so this solver dominates training time at scale.

// Allowed: bench setup code; the generated problem is square and valid by
// construction, so these expects cannot fail.
#![allow(clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plos_linalg::{Matrix, Vector};
use plos_opt::{GroupedQp, QpSolverOptions};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_qp(n: usize, groups: usize, seed: u64) -> GroupedQp {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // PSD Q = AᵀA + ridge.
    let mut a = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            a[(i, j)] = rng.gen_range(-1.0..1.0);
        }
    }
    let mut q = a.transpose().matmul(&a).expect("square");
    q.add_diagonal(0.5);
    let b: Vector = (0..n).map(|_| rng.gen_range(-0.5..1.5)).collect();
    let members: Vec<(Vec<usize>, f64)> =
        (0..groups).map(|g| ((g..n).step_by(groups).collect(), 1.0)).collect();
    GroupedQp::new(q, b, members).expect("valid construction")
}

fn bench_qp(c: &mut Criterion) {
    let mut group = c.benchmark_group("grouped_qp_solve");
    for &n in &[10usize, 40, 120] {
        let qp = random_qp(n, (n / 10).max(1), 7);
        let opts = QpSolverOptions::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bencher, _| {
            bencher.iter(|| black_box(qp.solve(&opts)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_qp);
criterion_main!(benches);
