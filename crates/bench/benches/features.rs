//! Microbenchmark: the sensing pipeline — IMU generation, downsampling,
//! windowing, and the 120-dim feature extraction that produces every
//! body-sensor sample.

use criterion::{criterion_group, criterion_main, Criterion};
use plos_sensing::body_sensor::{generate_body_sensor, BodySensorSpec};
use plos_sensing::features::node_features;
use std::hint::black_box;

fn bench_node_features(c: &mut Criterion) {
    // One 3.2 s window at 20 Hz = 64 samples per channel.
    let channel: Vec<f64> = (0..64).map(|i| (i as f64 * 0.37).sin()).collect();
    c.bench_function("node_features_64_samples", |b| {
        b.iter(|| black_box(node_features(&channel, &channel, &channel, &channel, &channel)))
    });
}

fn bench_body_sensor_user(c: &mut Criterion) {
    let spec = BodySensorSpec { num_users: 1, segments_per_activity: 70, ..Default::default() };
    c.bench_function("body_sensor_generate_one_user", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            black_box(generate_body_sensor(&spec, seed))
        })
    });
}

criterion_group!(benches, bench_node_features, bench_body_sensor_user);
criterion_main!(benches);
