//! Microbenchmark: the dual-coordinate-descent linear SVM (the *All* and
//! *Single* baselines, and the PLOS initializer).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use plos_linalg::Vector;
use plos_ml::svm::{LinearSvm, SvmParams};
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn blobs(n: usize, d: usize, seed: u64) -> (Vec<Vector>, Vec<i8>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    for _ in 0..n {
        let y: i8 = if rng.gen_bool(0.5) { 1 } else { -1 };
        let x: Vector = (0..d)
            .map(|j| if j == 0 { 2.0 * y as f64 } else { 0.0 } + rng.gen_range(-1.0..1.0))
            .collect();
        xs.push(x);
        ys.push(y);
    }
    (xs, ys)
}

fn bench_svm(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_svm_fit");
    for &(n, d) in &[(200usize, 20usize), (500, 120), (1000, 120)] {
        let (xs, ys) = blobs(n, d, 3);
        let trainer = LinearSvm::new(SvmParams::default());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{d}")),
            &n,
            |bencher, _| {
                bencher.iter(|| black_box(trainer.fit(&xs, &ys)));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_svm);
criterion_main!(benches);
