// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Figure-reproduction harness for the PLOS paper.
//!
//! One binary per figure of the paper's evaluation section (the paper has
//! no result tables); each prints the same series the figure plots. Shared
//! machinery lives here: dataset construction per experiment, method
//! sweeps, trial averaging, and plain-text series output.
//!
//! Run everything with reduced sizes:
//!
//! ```text
//! cargo run --release -p plos-bench --bin figures
//! ```
//!
//! or an individual figure at full scale, e.g.
//!
//! ```text
//! cargo run --release -p plos-bench --bin fig08_synth_rotation -- --trials 3
//! ```

use plos_core::eval::{compare_methods, EvalConfig, MethodScores};
use plos_core::{CoreError, PlosConfig};
use plos_sensing::dataset::{LabelMask, MultiUserDataset};

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Number of random trials averaged per point.
    pub trials: usize,
    /// Reduced problem sizes for smoke runs.
    pub quick: bool,
    /// Base seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions { trials: 1, quick: false, seed: 42 }
    }
}

impl RunOptions {
    /// Parses `--trials N`, `--quick`, `--seed S` from `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    // Allowed: CLI argument parsing in the figure harness; aborting with a
    // usage message on malformed flags is the intended behavior.
    #[allow(clippy::expect_used, clippy::panic)]
    pub fn from_args() -> Self {
        let mut opts = RunOptions::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--trials" => {
                    let v = args.next().expect("--trials requires a value");
                    opts.trials = v.parse().expect("--trials must be an integer");
                }
                "--seed" => {
                    let v = args.next().expect("--seed requires a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--quick" => opts.quick = true,
                other => panic!("unknown argument {other}; use --trials N | --seed S | --quick"),
            }
        }
        opts
    }
}

/// One x-position of an accuracy figure: the four methods on both panels.
#[derive(Debug, Clone)]
pub struct AccuracyRow {
    /// The x value (number of providers, training rate, rotation, ...).
    pub x: f64,
    /// Method scores averaged over trials.
    pub scores: MethodScores,
}

/// Averages [`compare_methods`] over `trials` different mask seeds.
///
/// `make_dataset(trial)` builds the cohort for that trial (generators are
/// seeded so trial `i` is reproducible).
///
/// # Errors
///
/// Propagates the first training failure of any trial.
pub fn averaged_comparison(
    trials: usize,
    config: &EvalConfig,
    mut make_dataset: impl FnMut(usize) -> MultiUserDataset,
) -> Result<MethodScores, CoreError> {
    assert!(trials > 0, "at least one trial required");
    let mut acc: Option<MethodScores> = None;
    for trial in 0..trials {
        let dataset = make_dataset(trial);
        let scores = compare_methods(&dataset, config)?;
        acc = Some(match acc {
            None => scores,
            Some(prev) => merge_scores(prev, scores),
        });
    }
    // `trials > 0` is asserted above, so at least one trial ran.
    let mut total = acc.ok_or(CoreError::EmptyDataset)?;
    scale_scores(&mut total, 1.0 / trials as f64);
    Ok(total)
}

fn merge_opt(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x + y),
        (x, None) => x,
        (None, y) => y,
    }
}

fn merge_scores(a: MethodScores, b: MethodScores) -> MethodScores {
    use plos_core::eval::Accuracies;
    let merge = |x: Accuracies, y: Accuracies| Accuracies {
        labeled_users: merge_opt(x.labeled_users, y.labeled_users),
        unlabeled_users: merge_opt(x.unlabeled_users, y.unlabeled_users),
    };
    MethodScores {
        plos: merge(a.plos, b.plos),
        all: merge(a.all, b.all),
        group: merge(a.group, b.group),
        single: merge(a.single, b.single),
    }
}

fn scale_scores(s: &mut MethodScores, factor: f64) {
    for acc in [&mut s.plos, &mut s.all, &mut s.group, &mut s.single] {
        acc.labeled_users = acc.labeled_users.map(|v| v * factor);
        acc.unlabeled_users = acc.unlabeled_users.map(|v| v * factor);
    }
}

/// Prints the two panels of an accuracy figure in the paper's layout:
/// method curves over the x sweep, accuracy in percent.
pub fn print_accuracy_figure(title: &str, x_label: &str, rows: &[AccuracyRow]) {
    let pct = |v: Option<f64>| match v {
        Some(a) => format!("{:6.1}", a * 100.0),
        None => "     -".to_string(),
    };
    println!("\n=== {title} ===");
    println!("--- (a) accuracy (%) on users WITH labels ---");
    println!("{x_label:>12}   PLOS    All  Group Single");
    for row in rows {
        println!(
            "{:>12.3} {} {} {} {}",
            row.x,
            pct(row.scores.plos.labeled_users),
            pct(row.scores.all.labeled_users),
            pct(row.scores.group.labeled_users),
            pct(row.scores.single.labeled_users),
        );
    }
    println!("--- (b) accuracy (%) on users WITHOUT labels ---");
    println!("{x_label:>12}   PLOS    All  Group Single");
    for row in rows {
        println!(
            "{:>12.3} {} {} {} {}",
            row.x,
            pct(row.scores.plos.unlabeled_users),
            pct(row.scores.all.unlabeled_users),
            pct(row.scores.group.unlabeled_users),
            pct(row.scores.single.unlabeled_users),
        );
    }
}

/// The PLOS configuration the figure binaries use at full scale: defaults
/// tuned like the paper's cross-validated choices.
pub fn figure_plos_config() -> PlosConfig {
    PlosConfig {
        lambda: 40.0,
        max_cccp_rounds: 6,
        max_cutting_rounds: 30,
        restarts: 2,
        refine_rounds: 2,
        ..PlosConfig::default()
    }
}

/// The evaluation-harness configuration used by the accuracy figures.
pub fn figure_eval_config() -> EvalConfig {
    EvalConfig { plos: figure_plos_config(), ..EvalConfig::default() }
}

/// A reduced-cost PLOS configuration for `--quick` runs.
pub fn quick_plos_config() -> PlosConfig {
    PlosConfig { lambda: 40.0, ..PlosConfig::fast() }
}

/// Evaluation config for `--quick` runs.
pub fn quick_eval_config() -> EvalConfig {
    EvalConfig { plos: quick_plos_config(), ..EvalConfig::default() }
}

/// Selects the eval config according to `--quick`.
pub fn eval_config_for(opts: &RunOptions) -> EvalConfig {
    if opts.quick {
        quick_eval_config()
    } else {
        figure_eval_config()
    }
}

/// Masks a dataset with `providers` label providers at `rate`, seeded per
/// trial.
pub fn mask(
    dataset: &MultiUserDataset,
    providers: usize,
    rate: f64,
    opts: &RunOptions,
    trial: usize,
) -> MultiUserDataset {
    dataset.mask_labels(
        &LabelMask::providers(providers, rate),
        opts.seed.wrapping_add(1000 * trial as u64 + 7),
    )
}

/// One point of the Sec. VI-E scalability experiments (Figs. 11–13).
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Number of users.
    pub users: usize,
    /// Synthetic points generated per class per user (each user holds
    /// `2 * points_per_class` samples).
    pub points_per_class: usize,
    /// Overall accuracy of centralized PLOS.
    pub acc_centralized: f64,
    /// Overall accuracy of distributed PLOS.
    pub acc_distributed: f64,
    /// Centralized training wall-clock on the server profile, seconds.
    pub time_centralized_s: f64,
    /// Distributed running time, seconds: the slowest phone's compute
    /// (rescaled to the Nexus 5 profile) plus server aggregation.
    pub time_distributed_s: f64,
    /// Mean per-user traffic in kilobytes.
    pub kb_per_user: f64,
    /// Total ADMM iterations of the distributed run.
    pub admm_iterations: usize,
}

/// Runs both trainers on a synthetic cohort of `users` users and measures
/// everything Figs. 11–13 report. The paper's Sec. VI-E settings: each user
/// generates their own data, ρ = 1, ε_abs = 10⁻³.
///
/// # Errors
///
/// Propagates a failure of either trainer.
pub fn run_scale_point(users: usize, opts: &RunOptions) -> Result<ScalePoint, CoreError> {
    use plos_core::eval::{plos_predictions, score_predictions};
    use plos_core::{CentralizedPlos, DistributedPlos};
    use plos_net::DeviceProfile;
    use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};
    use std::time::Instant;

    let points = if opts.quick { 40 } else { 100 };
    let spec = SyntheticSpec {
        num_users: users,
        points_per_class: points,
        max_rotation: std::f64::consts::FRAC_PI_2,
        flip_prob: 0.1,
    };
    let providers = (users / 2).max(1);
    let base = generate_synthetic(&spec, opts.seed);
    let data = mask(&base, providers, 0.05, opts, 0);

    let plos_cfg = if opts.quick { quick_plos_config() } else { figure_plos_config() };

    let started = Instant::now();
    let central = CentralizedPlos::new(plos_cfg.clone()).fit(&data)?;
    let time_centralized_s = started.elapsed().as_secs_f64();

    let (dist, report) = DistributedPlos::new(plos_cfg).fit(&data)?;

    let overall = |model: &plos_core::PersonalizedModel| {
        let acc = score_predictions(&data, &plos_predictions(model, &data));
        acc.overall(providers, users - providers)
    };

    let phone = DeviceProfile::nexus5();
    let reference = DeviceProfile::reference();
    let phone_time = phone.rescale_from(report.max_client_compute(), &reference);
    let time_distributed_s = phone_time.as_secs_f64() + report.server_compute.as_secs_f64();

    Ok(ScalePoint {
        users,
        points_per_class: points,
        acc_centralized: overall(&central),
        acc_distributed: overall(&dist),
        time_centralized_s,
        time_distributed_s,
        kb_per_user: report.mean_user_kb(),
        admm_iterations: report.admm_iterations,
    })
}

/// The user-count sweep of the Sec. VI-E experiments.
pub fn scale_sweep(opts: &RunOptions) -> Vec<usize> {
    if opts.quick {
        vec![10, 20, 30]
    } else {
        vec![10, 20, 40, 70, 100]
    }
}

/// Resolves `results/<file_name>` from the workspace root so the suites can
/// run from any directory.
pub fn results_path(file_name: &str) -> std::path::PathBuf {
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or(manifest.clone(), std::path::Path::to_path_buf);
    root.join("results").join(file_name)
}

/// Renders a suite report as one JSON document built entirely from
/// `plos-obs` trace events: a `"suite"` header event plus an `"events"`
/// array, each element rendered with the exact JSONL schema a
/// `PLOS_TRACE` run would stream. Keeping `results/BENCH_*.json` on the
/// trace schema means one parser (`plos_obs::json`) reads both.
pub fn render_suite_json(header: &plos_obs::Event, events: &[plos_obs::Event]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"suite\": ");
    s.push_str(&plos_obs::json::render(header));
    s.push_str(",\n  \"events\": [\n");
    let last = events.len().saturating_sub(1);
    for (i, e) in events.iter().enumerate() {
        s.push_str("    ");
        s.push_str(&plos_obs::json::render(e));
        if i != last {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// Mirrors a prebuilt event into the live trace (if `PLOS_TRACE` is set),
/// so the suites' summary events land in the JSONL stream alongside the
/// solver's own per-iteration events.
pub fn emit_event(event: &plos_obs::Event) {
    plos_obs::emit(event.name, &event.fields);
}

#[cfg(test)]
mod tests {
    use super::*;
    use plos_core::eval::Accuracies;

    fn scores(v: f64) -> MethodScores {
        let a = Accuracies { labeled_users: Some(v), unlabeled_users: None };
        MethodScores { plos: a, all: a, group: a, single: a }
    }

    #[test]
    fn merge_and_scale() {
        let mut m = merge_scores(scores(0.4), scores(0.6));
        scale_scores(&mut m, 0.5);
        assert_eq!(m.plos.labeled_users, Some(0.5));
        assert_eq!(m.plos.unlabeled_users, None);
    }

    #[test]
    fn merge_handles_missing_panels() {
        assert_eq!(merge_opt(Some(1.0), None), Some(1.0));
        assert_eq!(merge_opt(None, Some(2.0)), Some(2.0));
        assert_eq!(merge_opt(None, None), None);
    }

    #[test]
    fn configs_are_valid() {
        figure_plos_config().validate();
        quick_plos_config().validate();
    }

    #[test]
    fn default_options() {
        let o = RunOptions::default();
        assert_eq!(o.trials, 1);
        assert!(!o.quick);
    }

    #[test]
    fn suite_json_round_trips_through_the_trace_parser() {
        use plos_obs::json::Json;
        use plos_obs::{Event, Value};
        let header = Event { name: "scale_suite", fields: vec![("threads", Value::U64(4))] };
        let events = vec![
            Event {
                name: "scale_point",
                fields: vec![("users", Value::U64(10)), ("acc", Value::F64(0.5))],
            },
            Event { name: "scale_point", fields: vec![("users", Value::U64(20))] },
        ];
        let doc = render_suite_json(&header, &events);
        let parsed = plos_obs::json::parse(&doc).unwrap();
        let suite = parsed.get("suite").unwrap();
        assert_eq!(suite.get("event").and_then(Json::as_str), Some("scale_suite"));
        assert_eq!(suite.get("threads").and_then(Json::as_u64), Some(4));
        let arr = parsed.get("events").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("users").and_then(Json::as_u64), Some(10));
        assert_eq!(arr[0].get("acc").and_then(Json::as_f64), Some(0.5));
    }
}
