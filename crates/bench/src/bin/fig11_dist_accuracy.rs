//! Figure 11 — accuracy difference between centralized and distributed
//! PLOS.
//!
//! Paper setup (Sec. VI-E): synthetic per-user data, 10 → 100 users,
//! `ρ = 1`, `ε_abs = 10⁻³`. The paper reports a difference "close to zero",
//! i.e. the ADMM decomposition is a faithful approximation of the
//! centralized solver.

use plos_bench::{run_scale_point, scale_sweep, RunOptions};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    println!("\n=== Figure 11: accuracy difference (centralized - distributed), percent ===");
    println!("{:>8} {:>14} {:>14} {:>12}", "# users", "central acc %", "dist acc %", "diff (pp)");
    for users in scale_sweep(&opts) {
        let p = run_scale_point(users, &opts)?;
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>12.2}",
            p.users,
            p.acc_centralized * 100.0,
            p.acc_distributed * 100.0,
            (p.acc_centralized - p.acc_distributed) * 100.0
        );
    }
    Ok(())
}
