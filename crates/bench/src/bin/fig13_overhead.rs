//! Figure 13 — per-user message overhead of distributed PLOS.
//!
//! Paper setup (Sec. VI-E): users only exchange model parameters with the
//! server, so per-user traffic is a few kilobytes and stays flat as the
//! cohort grows. The byte counts here are exact: every message crosses the
//! binary codec of `plos-net`.

use plos_bench::{run_scale_point, scale_sweep, RunOptions};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    println!("\n=== Figure 13: message overhead per user (KB) vs # of users ===");
    println!("{:>8} {:>14} {:>10}", "# users", "KB per user", "ADMM iters");
    for users in scale_sweep(&opts) {
        let p = run_scale_point(users, &opts)?;
        println!("{:>8} {:>14.2} {:>10}", p.users, p.kb_per_user, p.admm_iterations);
    }
    Ok(())
}
