//! Figure 12 — running time of centralized vs. distributed PLOS.
//!
//! Paper setup (Sec. VI-E): centralized runs on a 3.4 GHz server;
//! distributed runs on Nexus 5 phones computing in parallel, so its running
//! time is bounded by the slowest phone. The paper's shape: centralized
//! grows superlinearly with the number of users while distributed stays
//! almost flat.
//!
//! This reproduction measures real wall-clock on the host and rescales the
//! device side with the Nexus 5 compute profile (see
//! `plos_net::DeviceProfile`).

use plos_bench::{run_scale_point, scale_sweep, RunOptions};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    println!("\n=== Figure 12: running time (s) vs # of users ===");
    println!(
        "{:>8} {:>16} {:>18} {:>10}",
        "# users", "centralized (s)", "distributed (s)", "ADMM iters"
    );
    for users in scale_sweep(&opts) {
        let p = run_scale_point(users, &opts)?;
        println!(
            "{:>8} {:>16.3} {:>18.3} {:>10}",
            p.users, p.time_centralized_s, p.time_distributed_s, p.admm_iterations
        );
    }
    Ok(())
}
