//! Figure 5 — HAR-like dataset: accuracy vs. number of label providers.
//!
//! Paper setup (Sec. VI-C): 30 users, 561-dim features, sitting vs standing
//! (~50 samples per class per user); providers label 6 % of their data;
//! the provider count sweeps 6 → 27.

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::har::{generate_har, HarSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let spec = if opts.quick {
        HarSpec { num_users: 8, samples_per_class: 20, dim: 60, ..Default::default() }
    } else {
        HarSpec::default()
    };
    let sweep: Vec<usize> =
        if opts.quick { vec![2, 4, 6] } else { vec![6, 9, 12, 15, 18, 21, 24, 27] };
    let config = eval_config_for(&opts);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &providers in &sweep {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let base = generate_har(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, providers, 0.06, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: providers as f64, scores });
    }

    print_accuracy_figure(
        "Figure 5: HAR accuracy vs. # of users who provide labels (6% labeled)",
        "# providers",
        &rows,
    );
    Ok(())
}
