//! Runs every figure reproduction in sequence.
//!
//! By default uses the figures' full-scale settings; pass `--quick` to run
//! reduced sizes (a smoke test of the whole harness in a couple of
//! minutes).
//!
//! ```text
//! cargo run --release -p plos-bench --bin figures -- --quick
//! ```

use std::process::Command;

const FIGURES: &[&str] = &[
    "fig03_body_labelers",
    "fig04_body_rate",
    "fig05_har_labelers",
    "fig06_har_rate",
    "fig07_har_lambda",
    "fig08_synth_rotation",
    "fig09_synth_labelers",
    "fig10_synth_rate",
    "fig11_dist_accuracy",
    "fig12_runtime",
    "fig13_overhead",
    "fig_ablation",
];

// Allowed: top-level figure runner; aborting with a message when the
// environment is broken (no current-exe path, spawn failure) is the
// intended behavior.
#[allow(clippy::expect_used, clippy::panic)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let self_path = std::env::current_exe().expect("current executable path");
    let bin_dir = self_path.parent().expect("bin directory").to_path_buf();

    let mut failures = Vec::new();
    for figure in FIGURES {
        let path = bin_dir.join(figure);
        if !path.exists() {
            eprintln!("skipping {figure}: binary not built ({path:?})");
            continue;
        }
        let status = Command::new(&path)
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {figure}: {e}"));
        if !status.success() {
            failures.push(*figure);
        }
    }
    if !failures.is_empty() {
        eprintln!("figures failed: {failures:?}");
        std::process::exit(1);
    }
    println!("\nall figures completed");
}
