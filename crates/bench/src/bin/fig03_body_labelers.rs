//! Figure 3 — body-sensor dataset: accuracy vs. number of label providers.
//!
//! Paper setup (Sec. VI-B): 20 subjects, 2 activities × 70 segments,
//! 120-dim features; providers labeled 6 % of their data (~4 samples per
//! activity); the number of providers sweeps 2 → 18.

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::body_sensor::{generate_body_sensor, BodySensorSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let spec = if opts.quick {
        BodySensorSpec { num_users: 8, segments_per_activity: 20, ..Default::default() }
    } else {
        BodySensorSpec::default()
    };
    let sweep: Vec<usize> =
        if opts.quick { vec![2, 4, 6] } else { vec![2, 4, 6, 8, 10, 12, 14, 16, 18] };
    let config = eval_config_for(&opts);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &providers in &sweep {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let base = generate_body_sensor(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, providers, 0.06, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: providers as f64, scores });
    }

    print_accuracy_figure(
        "Figure 3: body-sensor accuracy vs. # of users who provide labels (6% labeled)",
        "# providers",
        &rows,
    );
    Ok(())
}
