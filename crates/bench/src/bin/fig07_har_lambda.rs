//! Figure 7 — HAR-like dataset: PLOS accuracy vs. the coupling parameter λ.
//!
//! Paper setup (Sec. VI-C): 15 providers, 6 labeled samples each; sweep
//! `log10(λ)` over 0 → 4. The paper finds a peak around `log10(λ) ≈ 2` and
//! degradation on both ends — large λ collapses PLOS onto *All*, small λ
//! onto *Single*.

use plos_bench::{eval_config_for, mask, RunOptions};
use plos_core::eval::{plos_predictions, score_predictions};
use plos_core::CentralizedPlos;
use plos_sensing::har::{generate_har, HarSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let (spec, providers) = if opts.quick {
        (HarSpec { num_users: 8, samples_per_class: 20, dim: 60, ..Default::default() }, 4)
    } else {
        (HarSpec::default(), 15)
    };
    let config = eval_config_for(&opts);
    let log_lambdas: Vec<f64> =
        if opts.quick { vec![0.0, 2.0, 4.0] } else { (0..=8).map(|k| k as f64 * 0.5).collect() };

    println!("\n=== Figure 7: HAR PLOS accuracy vs log10(lambda) (15 providers x 6 labels) ===");
    println!("{:>10} {:>14} {:>17}", "log10(l)", "acc labeled %", "acc unlabeled %");
    for &ll in &log_lambdas {
        let lambda = 10f64.powf(ll);
        let mut lab = 0.0;
        let mut unlab = 0.0;
        for trial in 0..opts.trials {
            let base = generate_har(&spec, opts.seed.wrapping_add(trial as u64));
            // 6 labels out of ~100 samples ≈ 6 %.
            let data = mask(&base, providers, 0.06, &opts, trial);
            let plos_cfg = config.plos.clone().with_lambda(lambda);
            let model = CentralizedPlos::new(plos_cfg).fit(&data)?;
            let acc = score_predictions(&data, &plos_predictions(&model, &data));
            lab += acc.labeled_users.unwrap_or(0.0);
            unlab += acc.unlabeled_users.unwrap_or(0.0);
        }
        let n = opts.trials as f64;
        println!("{:>10.1} {:>14.1} {:>17.1}", ll, lab / n * 100.0, unlab / n * 100.0);
    }
    Ok(())
}
