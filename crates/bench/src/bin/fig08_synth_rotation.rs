//! Figure 8 — synthetic dataset: accuracy vs. the difference level among
//! users (maximum rotation angle).
//!
//! Paper setup (Sec. VI-D): 10 users, each a rotation of the same 2-class
//! Gaussian sample (200 points per class, 10 % label flips); 5 providers
//! label 8 samples each (2 %); the maximum rotation sweeps 0 → π.

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let points = if opts.quick { 60 } else { 200 };
    let fracs: Vec<f64> =
        if opts.quick { vec![0.0, 0.5, 1.0] } else { (0..=6).map(|k| k as f64 / 6.0).collect() };
    let config = eval_config_for(&opts);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &frac in &fracs {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let spec = SyntheticSpec {
                num_users: 10,
                points_per_class: points,
                max_rotation: std::f64::consts::PI * frac,
                flip_prob: 0.1,
            };
            let base = generate_synthetic(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, 5, 0.02, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: frac, scores });
    }

    print_accuracy_figure(
        "Figure 8: synthetic accuracy vs. max rotation angle (x = fraction of pi)",
        "rotation/pi",
        &rows,
    );
    Ok(())
}
