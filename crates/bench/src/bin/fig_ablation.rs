//! Ablation study of the design choices called out in DESIGN.md.
//!
//! Not a paper figure — this bench isolates what each ingredient of the
//! reproduction buys on the synthetic cohort (rotation π/2, 5 providers at
//! 2 %):
//!
//! * `vanilla`      — Algorithm 1 exactly as printed (no refinement, no
//!   restarts);
//! * `refine-only`  — block-coordinate refinement without random restarts;
//! * `full`         — refinement + multi-start (the default);
//! * `cu=0`         — drop the unlabeled margin term entirely;
//! * `lambda→∞`     — collapse onto a single global hyperplane (≈ *All*);
//! * `lambda→0`     — decouple the users (≈ independent semi-supervised
//!   SVMs);
//! * `1 CCCP round` — a single convexification, no sign refreshes.

use plos_bench::{figure_plos_config, mask, quick_plos_config, RunOptions};
use plos_core::eval::{plos_predictions, score_predictions};
use plos_core::{CentralizedPlos, PlosConfig};
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let points = if opts.quick { 60 } else { 200 };
    let spec = SyntheticSpec {
        num_users: 10,
        points_per_class: points,
        max_rotation: std::f64::consts::FRAC_PI_2,
        flip_prob: 0.1,
    };
    let base_cfg = if opts.quick { quick_plos_config() } else { figure_plos_config() };

    let variants: Vec<(&str, PlosConfig)> = vec![
        (
            "vanilla (Alg.1 as printed)",
            PlosConfig { restarts: 0, refine_rounds: 0, ..base_cfg.clone() },
        ),
        ("refine-only (no restarts)", PlosConfig { restarts: 0, ..base_cfg.clone() }),
        ("full (refine + restarts)", base_cfg.clone()),
        ("cu = 0 (labels only)", PlosConfig { c_unlabeled: 0.0, ..base_cfg.clone() }),
        ("lambda = 1e6 (~All)", PlosConfig { lambda: 1e6, ..base_cfg.clone() }),
        ("lambda = 1e-3 (~Single)", PlosConfig { lambda: 1e-3, ..base_cfg.clone() }),
        (
            "single CCCP round",
            PlosConfig { max_cccp_rounds: 1, refine_rounds: 0, restarts: 0, ..base_cfg },
        ),
    ];

    println!("\n=== Ablation: synthetic cohort, rotation pi/2, 5 providers x 2% labels ===");
    println!("{:<28} {:>14} {:>17}", "variant", "acc labeled %", "acc unlabeled %");
    for (name, cfg) in variants {
        let mut lab = 0.0;
        let mut unlab = 0.0;
        for trial in 0..opts.trials {
            let data = mask(
                &generate_synthetic(&spec, opts.seed.wrapping_add(trial as u64)),
                5,
                0.02,
                &opts,
                trial,
            );
            let model = CentralizedPlos::new(cfg.clone()).fit(&data)?;
            let acc = score_predictions(&data, &plos_predictions(&model, &data));
            lab += acc.labeled_users.unwrap_or(0.0);
            unlab += acc.unlabeled_users.unwrap_or(0.0);
        }
        let n = opts.trials as f64;
        println!("{:<28} {:>14.1} {:>17.1}", name, lab / n * 100.0, unlab / n * 100.0);
    }
    Ok(())
}
