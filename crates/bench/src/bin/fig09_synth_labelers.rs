//! Figure 9 — synthetic dataset: accuracy vs. number of label providers.
//!
//! Paper setup (Sec. VI-D): max rotation fixed at π/2, labeling rate 2 %,
//! provider count sweeps 1 → 10 (panel (b) stops at 9 since with 10
//! providers no unlabeled users remain).

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let points = if opts.quick { 60 } else { 200 };
    let sweep: Vec<usize> = if opts.quick { vec![2, 5, 9] } else { (1..=9).collect() };
    let config = eval_config_for(&opts);
    let spec = SyntheticSpec {
        num_users: 10,
        points_per_class: points,
        max_rotation: std::f64::consts::FRAC_PI_2,
        flip_prob: 0.1,
    };

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &providers in &sweep {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let base = generate_synthetic(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, providers, 0.02, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: providers as f64, scores });
    }

    print_accuracy_figure(
        "Figure 9: synthetic accuracy vs. # of users who provide labels (2% labeled, rot pi/2)",
        "# providers",
        &rows,
    );
    Ok(())
}
