//! Figure 6 — HAR-like dataset: accuracy vs. training rate.
//!
//! Paper setup (Sec. VI-C): 15 randomly picked label providers; the labeled
//! fraction per provider sweeps 4 % → 48 %.

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::har::{generate_har, HarSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let (spec, providers) = if opts.quick {
        (HarSpec { num_users: 8, samples_per_class: 20, dim: 60, ..Default::default() }, 4)
    } else {
        (HarSpec::default(), 15)
    };
    let sweep: Vec<f64> = if opts.quick {
        vec![0.08, 0.24, 0.48]
    } else {
        (1..=12).map(|k| 0.04 * k as f64).collect()
    };
    let config = eval_config_for(&opts);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &rate in &sweep {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let base = generate_har(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, providers, rate, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: rate * 100.0, scores });
    }

    print_accuracy_figure(
        "Figure 6: HAR accuracy vs. training rate (%) with 15 providers",
        "rate (%)",
        &rows,
    );
    Ok(())
}
