//! Resume-parity gate: killing and resuming training must not change the
//! model by a single bit.
//!
//! For each trainer (centralized CCCP and distributed ADMM) this binary
//! first runs a seeded fit to completion, then re-runs it with an abort
//! threshold of one — the run dies at its *first* checkpoint, is resumed,
//! dies at the next, and so on until completion. Every checkpoint seam the
//! run can produce is therefore exercised as an actual kill/resume cycle.
//! The surviving model's FNV-1a digest must equal the uninterrupted run's;
//! any divergence exits nonzero and fails `ci.sh`.
//!
//! The gate covers fault-free runs only: under fault injection wall-clock
//! timing feeds retry/eviction decisions, so bit-parity is not defined
//! there (the chaos suite asserts an accuracy band instead).

use plos_ckpt::model_digest;
use plos_core::{
    CentralizedPlos, CheckpointPolicy, CoreError, DistributedPlos, PersonalizedModel, PlosConfig,
};
use plos_sensing::dataset::{LabelMask, MultiUserDataset};
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

/// Canonical model digest (same fold as `trace_parity` and the golden
/// fixtures): w0 coefficients, then every user's bias, in user order.
fn digest(model: &PersonalizedModel) -> u64 {
    model_digest(model.global_hyperplane(), model.personal_biases())
}

/// Small seeded cohort: the gate's cost scales with the number of
/// checkpoint seams (each is a full kill/resume cycle), so this stays
/// deliberately leaner than the figure-reproduction datasets.
fn cohort() -> MultiUserDataset {
    let spec =
        SyntheticSpec { num_users: 4, points_per_class: 20, max_rotation: 0.4, flip_prob: 0.02 };
    generate_synthetic(&spec, 21).mask_labels(&LabelMask::providers(2, 0.25), 3)
}

/// Runs `fit` to completion while killing it at every checkpoint seam:
/// each leg aborts after writing one checkpoint and the next leg resumes
/// from it. Returns the final model and the number of kills survived.
fn run_killing_at_every_seam<F>(
    dir: &std::path::Path,
    fit: F,
) -> Result<(PersonalizedModel, u32), CoreError>
where
    F: Fn(CheckpointPolicy) -> Result<PersonalizedModel, CoreError>,
{
    let mut kills = 0u32;
    // One leg per seam plus the finishing leg; anything beyond this bound
    // means the resume logic is looping instead of progressing.
    const MAX_LEGS: u32 = 10_000;
    loop {
        match fit(CheckpointPolicy::new(dir).abort_after(1)) {
            Ok(model) => return Ok((model, kills)),
            Err(CoreError::Interrupted { .. }) => {
                kills += 1;
                if kills >= MAX_LEGS {
                    return Err(CoreError::Ckpt(plos_ckpt::CkptError::Malformed {
                        detail: format!("no convergence after {MAX_LEGS} kill/resume legs"),
                    }));
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn gate(
    name: &str,
    clean: &PersonalizedModel,
    dir: &std::path::Path,
    fit: impl Fn(CheckpointPolicy) -> Result<PersonalizedModel, CoreError>,
) -> Result<bool, CoreError> {
    let (resumed, kills) = run_killing_at_every_seam(dir, fit)?;
    let clean_digest = digest(clean);
    let resumed_digest = digest(&resumed);
    let verdict = if clean_digest == resumed_digest { "ok" } else { "MISMATCH" };
    println!(
        "{name} clean {clean_digest:016x} resumed {resumed_digest:016x} kills {kills} {verdict}"
    );
    Ok(clean_digest == resumed_digest)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = cohort();
    let config = PlosConfig::fast();
    let dir = std::env::temp_dir().join(format!("plos-resume-parity-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    let central_clean = CentralizedPlos::new(config.clone()).fit(&data)?;
    let central_ok = gate("centralized", &central_clean, &dir, |policy| {
        CentralizedPlos::new(config.clone()).with_checkpointing(policy).fit(&data)
    })?;

    let (dist_clean, _) = DistributedPlos::new(config.clone()).fit(&data)?;
    let dist_ok = gate("distributed", &dist_clean, &dir, |policy| {
        DistributedPlos::new(config.clone())
            .with_checkpointing(policy)
            .fit(&data)
            .map(|(model, _report)| model)
    })?;

    std::fs::remove_dir_all(&dir)?;
    if !(central_ok && dist_ok) {
        return Err(
            "resume parity violated: killed-and-resumed model differs from clean run".into()
        );
    }
    println!("resume parity OK");
    Ok(())
}
