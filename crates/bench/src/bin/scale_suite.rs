//! Combined runner for the Sec. VI-E scalability experiments: one sweep
//! over the user counts, three tables — Fig. 11 (accuracy parity), Fig. 12
//! (running time), Fig. 13 (message overhead). Equivalent to running the
//! three individual binaries but 3× cheaper, since they share the sweep.

use plos_bench::{run_scale_point, scale_sweep, RunOptions};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let points = scale_sweep(&opts)
        .into_iter()
        .map(|users| run_scale_point(users, &opts))
        .collect::<Result<Vec<_>, _>>()?;

    println!("\n=== Figure 11: accuracy difference (centralized - distributed), percent ===");
    println!("{:>8} {:>14} {:>14} {:>12}", "# users", "central acc %", "dist acc %", "diff (pp)");
    for p in &points {
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>12.2}",
            p.users,
            p.acc_centralized * 100.0,
            p.acc_distributed * 100.0,
            (p.acc_centralized - p.acc_distributed) * 100.0
        );
    }

    println!("\n=== Figure 12: running time (s) vs # of users ===");
    println!(
        "{:>8} {:>16} {:>18} {:>10}",
        "# users", "centralized (s)", "distributed (s)", "ADMM iters"
    );
    for p in &points {
        println!(
            "{:>8} {:>16.3} {:>18.3} {:>10}",
            p.users, p.time_centralized_s, p.time_distributed_s, p.admm_iterations
        );
    }

    println!("\n=== Figure 13: message overhead per user (KB) vs # of users ===");
    println!("{:>8} {:>14} {:>10}", "# users", "KB per user", "ADMM iters");
    for p in &points {
        println!("{:>8} {:>14.2} {:>10}", p.users, p.kb_per_user, p.admm_iterations);
    }
    Ok(())
}
