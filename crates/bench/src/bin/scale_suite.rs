//! Combined runner for the Sec. VI-E scalability experiments: one sweep
//! over the user counts, three tables — Fig. 11 (accuracy parity), Fig. 12
//! (running time), Fig. 13 (message overhead). Equivalent to running the
//! three individual binaries but 3× cheaper, since they share the sweep.
//!
//! Besides the human-readable tables on stdout, the suite writes a
//! machine-readable `results/BENCH_scale.json` (per-phase wall-clock,
//! thread count used, dataset sizes) so perf regressions can be tracked
//! without scraping the text output.

use plos_bench::{run_scale_point, scale_sweep, RunOptions, ScalePoint};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    let threads = plos_exec::Pool::current().threads();
    let sweep_started = Instant::now();
    let points = scale_sweep(&opts)
        .into_iter()
        .map(|users| run_scale_point(users, &opts))
        .collect::<Result<Vec<_>, _>>()?;
    let total_wall_clock_s = sweep_started.elapsed().as_secs_f64();

    println!("\n=== Figure 11: accuracy difference (centralized - distributed), percent ===");
    println!("{:>8} {:>14} {:>14} {:>12}", "# users", "central acc %", "dist acc %", "diff (pp)");
    for p in &points {
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>12.2}",
            p.users,
            p.acc_centralized * 100.0,
            p.acc_distributed * 100.0,
            (p.acc_centralized - p.acc_distributed) * 100.0
        );
    }

    println!("\n=== Figure 12: running time (s) vs # of users ===");
    println!(
        "{:>8} {:>16} {:>18} {:>10}",
        "# users", "centralized (s)", "distributed (s)", "ADMM iters"
    );
    for p in &points {
        println!(
            "{:>8} {:>16.3} {:>18.3} {:>10}",
            p.users, p.time_centralized_s, p.time_distributed_s, p.admm_iterations
        );
    }

    println!("\n=== Figure 13: message overhead per user (KB) vs # of users ===");
    println!("{:>8} {:>14} {:>10}", "# users", "KB per user", "ADMM iters");
    for p in &points {
        println!("{:>8} {:>14.2} {:>10}", p.users, p.kb_per_user, p.admm_iterations);
    }

    let json = render_json(&opts, threads, total_wall_clock_s, &points);
    let out = json_output_path();
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&out, json)?;
    println!("\nwrote {}", out.display());
    Ok(())
}

/// `results/BENCH_scale.json` next to the existing `results/*.txt`, resolved
/// from the workspace root so the suite can run from any directory.
fn json_output_path() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map_or(manifest.clone(), std::path::Path::to_path_buf);
    root.join("results").join("BENCH_scale.json")
}

/// Hand-rolled JSON (the workspace is dependency-free; there is no serde).
/// All emitted floats come from accuracies and elapsed timers, so they are
/// finite and `{}` formatting yields valid JSON numbers.
fn render_json(
    opts: &RunOptions,
    threads: usize,
    total_wall_clock_s: f64,
    points: &[ScalePoint],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"suite\": \"scale\",");
    let _ = writeln!(s, "  \"quick\": {},", opts.quick);
    let _ = writeln!(s, "  \"trials\": {},", opts.trials);
    let _ = writeln!(s, "  \"seed\": {},", opts.seed);
    let _ = writeln!(s, "  \"threads\": {threads},");
    let _ = writeln!(s, "  \"total_wall_clock_s\": {total_wall_clock_s},");
    let _ = writeln!(s, "  \"points\": [");
    let last = points.len().saturating_sub(1);
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"users\": {},", p.users);
        let _ = writeln!(s, "      \"points_per_class\": {},", p.points_per_class);
        let _ = writeln!(s, "      \"samples_per_user\": {},", 2 * p.points_per_class);
        let _ = writeln!(s, "      \"acc_centralized\": {},", p.acc_centralized);
        let _ = writeln!(s, "      \"acc_distributed\": {},", p.acc_distributed);
        let _ = writeln!(s, "      \"phase_wall_clock_s\": {{");
        let _ = writeln!(s, "        \"centralized\": {},", p.time_centralized_s);
        let _ = writeln!(s, "        \"distributed\": {}", p.time_distributed_s);
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"kb_per_user\": {},", p.kb_per_user);
        let _ = writeln!(s, "      \"admm_iterations\": {}", p.admm_iterations);
        let _ = writeln!(s, "    }}{}", if i == last { "" } else { "," });
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}
