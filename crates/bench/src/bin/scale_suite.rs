//! Combined runner for the Sec. VI-E scalability experiments: one sweep
//! over the user counts, three tables — Fig. 11 (accuracy parity), Fig. 12
//! (running time), Fig. 13 (message overhead). Equivalent to running the
//! three individual binaries but 3× cheaper, since they share the sweep.
//!
//! Besides the human-readable tables on stdout, the suite writes a
//! machine-readable `results/BENCH_scale.json` built from `plos-obs` trace
//! events (`scale_point`, one per sweep position), so perf regressions can
//! be tracked with the same parser that reads `PLOS_TRACE` JSONL streams.

use plos_bench::{
    emit_event, render_suite_json, results_path, run_scale_point, scale_sweep, RunOptions,
    ScalePoint,
};
use plos_obs::Event;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    let threads = plos_exec::Pool::current().threads();
    let sweep_started = Instant::now();
    let points = scale_sweep(&opts)
        .into_iter()
        .map(|users| run_scale_point(users, &opts))
        .collect::<Result<Vec<_>, _>>()?;
    let total_wall_clock_s = sweep_started.elapsed().as_secs_f64();

    println!("\n=== Figure 11: accuracy difference (centralized - distributed), percent ===");
    println!("{:>8} {:>14} {:>14} {:>12}", "# users", "central acc %", "dist acc %", "diff (pp)");
    for p in &points {
        println!(
            "{:>8} {:>14.2} {:>14.2} {:>12.2}",
            p.users,
            p.acc_centralized * 100.0,
            p.acc_distributed * 100.0,
            (p.acc_centralized - p.acc_distributed) * 100.0
        );
    }

    println!("\n=== Figure 12: running time (s) vs # of users ===");
    println!(
        "{:>8} {:>16} {:>18} {:>10}",
        "# users", "centralized (s)", "distributed (s)", "ADMM iters"
    );
    for p in &points {
        println!(
            "{:>8} {:>16.3} {:>18.3} {:>10}",
            p.users, p.time_centralized_s, p.time_distributed_s, p.admm_iterations
        );
    }

    println!("\n=== Figure 13: message overhead per user (KB) vs # of users ===");
    println!("{:>8} {:>14} {:>10}", "# users", "KB per user", "ADMM iters");
    for p in &points {
        println!("{:>8} {:>14.2} {:>10}", p.users, p.kb_per_user, p.admm_iterations);
    }

    let header = Event {
        name: "scale_suite",
        fields: vec![
            ("quick", opts.quick.into()),
            ("trials", opts.trials.into()),
            ("seed", opts.seed.into()),
            ("threads", threads.into()),
            ("total_wall_clock_s", total_wall_clock_s.into()),
        ],
    };
    let events: Vec<Event> = points.iter().map(point_event).collect();
    for e in std::iter::once(&header).chain(&events) {
        emit_event(e);
    }
    let out = results_path("BENCH_scale.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&out, render_suite_json(&header, &events))?;
    println!("\nwrote {}", out.display());
    Ok(())
}

/// One `scale_point` trace event per sweep position — the same record shape
/// whether it lands in `BENCH_scale.json` or a `PLOS_TRACE` JSONL stream.
fn point_event(p: &ScalePoint) -> Event {
    Event {
        name: "scale_point",
        fields: vec![
            ("users", p.users.into()),
            ("points_per_class", p.points_per_class.into()),
            ("samples_per_user", (2 * p.points_per_class).into()),
            ("acc_centralized", p.acc_centralized.into()),
            ("acc_distributed", p.acc_distributed.into()),
            ("time_centralized_s", p.time_centralized_s.into()),
            ("time_distributed_s", p.time_distributed_s.into()),
            ("kb_per_user", p.kb_per_user.into()),
            ("admm_iterations", p.admm_iterations.into()),
        ],
    }
}
