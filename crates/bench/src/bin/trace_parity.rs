//! Trace-parity gate: tracing must not perturb training.
//!
//! Runs a seeded centralized fit and a seeded (fault-free) distributed fit
//! and prints a bit-exact digest of each trained model — the IEEE-754 bit
//! pattern of every coefficient, FNV-1a folded to one line. `ci.sh` runs
//! this binary twice, once plain and once under `PLOS_TRACE=<tmp>`, and
//! diffs the stdout: any divergence means telemetry leaked into the solver
//! (a clock read feeding a decision, a counter perturbing iteration order)
//! and fails the build. The traced run's JSONL is then checked for the
//! per-iteration events the observability layer promises.
//!
//! The gate covers deterministic runs only: under fault injection,
//! wall-clock timing feeds retry/eviction decisions, so bit-parity is not
//! defined there (see DESIGN.md §9).

use plos_ckpt::model_digest;
use plos_core::{CentralizedPlos, DistributedPlos, PersonalizedModel, PlosConfig};
use plos_sensing::dataset::LabelMask;
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

/// FNV-1a over the IEEE-754 bit patterns of every model coefficient —
/// the canonical fold shared with `resume_parity` and the golden fixtures.
/// Negative zero vs. positive zero, NaN payloads — everything distinguishes.
fn digest(model: &PersonalizedModel) -> u64 {
    model_digest(model.global_hyperplane(), model.personal_biases())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = SyntheticSpec {
        num_users: 6,
        points_per_class: 30,
        max_rotation: std::f64::consts::FRAC_PI_3,
        flip_prob: 0.05,
    };
    let data = generate_synthetic(&spec, 77).mask_labels(&LabelMask::providers(3, 0.2), 5);
    let config = PlosConfig::fast();

    let central = CentralizedPlos::new(config.clone()).fit(&data)?;
    println!("centralized {:016x}", digest(&central));

    let (dist, report) = DistributedPlos::new(config).fit(&data)?;
    println!("distributed {:016x}", digest(&dist));
    println!("admm_rounds {}", report.admm_iterations);
    Ok(())
}
