//! Figure 10 — synthetic dataset: accuracy vs. training rate.
//!
//! Paper setup (Sec. VI-D): max rotation π/2, 5 label providers, labeling
//! rate sweeps 1 % → 10 %.

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let points = if opts.quick { 60 } else { 200 };
    let sweep: Vec<f64> = if opts.quick {
        vec![0.01, 0.05, 0.10]
    } else {
        (1..=10).map(|k| k as f64 / 100.0).collect()
    };
    let config = eval_config_for(&opts);
    let spec = SyntheticSpec {
        num_users: 10,
        points_per_class: points,
        max_rotation: std::f64::consts::FRAC_PI_2,
        flip_prob: 0.1,
    };

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &rate in &sweep {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let base = generate_synthetic(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, 5, rate, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: rate * 100.0, scores });
    }

    print_accuracy_figure(
        "Figure 10: synthetic accuracy vs. training rate (%) (5 providers, rot pi/2)",
        "rate (%)",
        &rows,
    );
    Ok(())
}
