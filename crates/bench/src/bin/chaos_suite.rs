//! Chaos suite — distributed PLOS accuracy under seeded fault injection.
//!
//! Not a paper figure: this sweep characterizes the fault-tolerance layer
//! (retry/backoff, quorum gather, eviction) by training the same cohort
//! under increasingly hostile link conditions and printing accuracy,
//! participation, and eviction counts per point. All plans share one seed,
//! so the injected schedule — and the whole table — is reproducible.
//!
//! Besides the table, the suite writes `results/BENCH_chaos.json` built
//! from `plos-obs` trace events (`chaos_scenario`, one per row) so the
//! fault-tolerance numbers are machine-readable with the same parser that
//! reads `PLOS_TRACE` JSONL streams.

use std::time::Duration;

use plos_bench::{emit_event, render_suite_json, results_path, RunOptions};
use plos_core::eval::{plos_predictions, score_predictions};
use plos_core::{DistributedPlos, FaultTolerance, PlosConfig, RetryPolicy};
use plos_net::FaultPlan;
use plos_obs::Event;
use plos_sensing::dataset::LabelMask;
use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};

/// A middle-ground policy for the sweep: windows short enough that a run
/// under 20% drop finishes in seconds, but with enough re-broadcasts that
/// only a genuinely dead device gets evicted.
fn sweep_policy() -> FaultTolerance {
    FaultTolerance {
        retry: RetryPolicy {
            recv_timeout: Duration::from_millis(80),
            max_retries: 3,
            backoff_base: Duration::from_millis(40),
            backoff_factor: 2.0,
            round_deadline: Duration::from_secs(1),
        },
        evict_after: 3,
        ..FaultTolerance::default()
    }
    .with_quorum(0.75)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = RunOptions::from_args();
    let users = if opts.quick { 4 } else { 8 };
    let spec = SyntheticSpec {
        num_users: users,
        points_per_class: if opts.quick { 20 } else { 40 },
        max_rotation: 0.25,
        flip_prob: 0.02,
    };
    let data = generate_synthetic(&spec, opts.seed)
        .mask_labels(&LabelMask::providers(users / 2, 0.2), opts.seed.wrapping_add(3));

    let trainer = DistributedPlos::new(PlosConfig::fast()).with_fault_tolerance(sweep_policy());
    let seed = opts.seed.wrapping_add(2024);

    let scenarios: Vec<(&str, FaultPlan)> = vec![
        ("clean", FaultPlan::none()),
        ("drop 5%", FaultPlan::seeded(seed).with_drop(0.05)),
        ("drop 10%", FaultPlan::seeded(seed).with_drop(0.10)),
        ("drop 20%", FaultPlan::seeded(seed).with_drop(0.20)),
        ("delay 25%/5ms", FaultPlan::seeded(seed).with_delay(0.25, Duration::from_millis(5))),
        ("corrupt 8%", FaultPlan::seeded(seed).with_corruption(0.08)),
        (
            "combo + 1 dead",
            FaultPlan::seeded(seed)
                .with_drop(0.10)
                .with_delay(0.05, Duration::from_millis(3))
                .with_dead_link(users - 1, 40),
        ),
    ];

    println!("\n=== Chaos suite: accuracy under seeded link faults (quorum 0.75) ===");
    println!(
        "{:>16} {:>10} {:>14} {:>9} {:>10}",
        "scenario", "accuracy", "participation", "evicted", "degraded"
    );
    let mut events: Vec<Event> = Vec::new();
    for (name, plan) in &scenarios {
        let (model, report) = trainer.fit_with_faults(&data, plan)?;
        let acc = score_predictions(&data, &plos_predictions(&model, &data));
        let providers = data.providers().len();
        let overall = acc.overall(providers, data.num_users() - providers);
        println!(
            "{:>16} {:>10.4} {:>13.1}% {:>9} {:>10}",
            name,
            overall,
            report.participation_rate() * 100.0,
            report.evicted.len(),
            report.degraded
        );
        events.push(Event {
            name: "chaos_scenario",
            fields: vec![
                ("scenario", (*name).into()),
                ("accuracy", overall.into()),
                ("participation_rate", report.participation_rate().into()),
                ("admm_rounds", report.admm_iterations.into()),
                ("evicted", report.evicted.len().into()),
                ("degraded", report.degraded.into()),
                ("converged", report.converged.into()),
                ("protocol_errors", report.protocol_errors.into()),
                ("late_discards", report.late_discards.into()),
            ],
        });
    }

    let header = Event {
        name: "chaos_suite",
        fields: vec![
            ("quick", opts.quick.into()),
            ("seed", opts.seed.into()),
            ("users", users.into()),
            ("quorum", 0.75.into()),
        ],
    };
    for e in std::iter::once(&header).chain(&events) {
        emit_event(e);
    }
    let out = results_path("BENCH_chaos.json");
    if let Some(dir) = out.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(&out, render_suite_json(&header, &events))?;
    println!("\nwrote {}", out.display());
    Ok(())
}
