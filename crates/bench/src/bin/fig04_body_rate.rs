//! Figure 4 — body-sensor dataset: accuracy vs. training rate.
//!
//! Paper setup (Sec. VI-B): 9 randomly picked label providers; the fraction
//! of labeled samples per provider sweeps 4 % → 48 %.

use plos_bench::{
    averaged_comparison, eval_config_for, mask, print_accuracy_figure, AccuracyRow, RunOptions,
};
use plos_sensing::body_sensor::{generate_body_sensor, BodySensorSpec};

fn main() -> Result<(), plos_core::CoreError> {
    let opts = RunOptions::from_args();
    let (spec, providers) = if opts.quick {
        (BodySensorSpec { num_users: 8, segments_per_activity: 20, ..Default::default() }, 4)
    } else {
        (BodySensorSpec::default(), 9)
    };
    let sweep: Vec<f64> =
        if opts.quick { vec![0.08, 0.24, 0.48] } else { vec![0.04, 0.08, 0.16, 0.24, 0.36, 0.48] };
    let config = eval_config_for(&opts);

    let mut rows: Vec<AccuracyRow> = Vec::new();
    for &rate in &sweep {
        let scores = averaged_comparison(opts.trials, &config, |trial| {
            let base = generate_body_sensor(&spec, opts.seed.wrapping_add(trial as u64));
            mask(&base, providers, rate, &opts, trial)
        })?;
        rows.push(AccuracyRow { x: rate * 100.0, scores });
    }

    print_accuracy_figure(
        "Figure 4: body-sensor accuracy vs. training rate (%) with 9 providers",
        "rate (%)",
        &rows,
    );
    Ok(())
}
