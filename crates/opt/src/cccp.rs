//! Concave–convex procedure (CCCP) driver.
//!
//! PLOS handles the non-convex `|w · x|` margin terms of unlabeled samples by
//! CCCP (Yuille & Rangarajan 2003): at round `k`, replace `|w·x|` with its
//! first-order expansion `sign(w⁽ᵏ⁾·x)(w·x)` around the previous iterate
//! (Eq. 10), solve the resulting convex problem, repeat. The objective is
//! bounded below and decreases monotonically, so the loop converges
//! (Algorithm 1, step 7; Algorithm 2, step 7).
//!
//! This driver is generic over the state (the convexification, e.g. the sign
//! pattern) and the convex-subproblem solver.

use crate::convergence::History;

/// Configuration of the CCCP outer loop.
#[derive(Debug, Clone)]
pub struct Cccp {
    /// Stop when consecutive objective values differ by less than this.
    pub tol: f64,
    /// Maximum outer rounds.
    pub max_rounds: usize,
}

impl Default for Cccp {
    fn default() -> Self {
        Cccp { tol: 1e-4, max_rounds: 50 }
    }
}

/// Outcome of a CCCP run.
#[derive(Debug, Clone)]
pub struct CccpResult<S> {
    /// State after the last round (e.g. the final model).
    pub state: S,
    /// Objective after each round.
    pub history: History,
    /// Whether the objective change dropped below `tol` (as opposed to
    /// exhausting `max_rounds`).
    pub converged: bool,
}

impl Cccp {
    /// Runs CCCP from `init`.
    ///
    /// `step(&state)` must linearize the concave part around `state`, solve
    /// the convex subproblem, and return `(new_state, objective)` where
    /// `objective` is the *original* (non-convexified) objective evaluated at
    /// `new_state` — this is the quantity whose monotone decrease CCCP
    /// guarantees.
    pub fn run<S>(&self, init: S, step: impl FnMut(&S) -> (S, f64)) -> CccpResult<S> {
        self.run_with_history(init, History::new(), step)
    }

    /// Runs CCCP from `init`, continuing a previously recorded objective
    /// trajectory — the resume path for checkpointed runs.
    ///
    /// Rounds already present in `prior` count against `max_rounds`, and
    /// convergence is re-checked on entry, so a run interrupted after its
    /// convergence round does not take an extra step. With an empty prior
    /// this is exactly [`Cccp::run`].
    pub fn run_with_history<S>(
        &self,
        init: S,
        prior: History,
        mut step: impl FnMut(&S) -> (S, f64),
    ) -> CccpResult<S> {
        let mut state = init;
        let mut history = prior;
        let mut converged = history.converged(self.tol);
        while !converged && history.len() < self.max_rounds {
            let (next, objective) = step(&state);
            state = next;
            history.push(objective);
            plos_obs::emit(
                "cccp_round",
                &[("round", history.len().into()), ("objective", objective.into())],
            );
            converged = history.converged(self.tol);
        }
        CccpResult { state, history, converged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = x² − |x| by CCCP: linearize −|x| at x_k, giving the
    /// convex subproblem x² − sign(x_k)·x with solution sign(x_k)/2.
    /// Global optima are x = ±1/2 with f = −1/4.
    #[test]
    fn cccp_solves_x2_minus_abs_x() {
        let cccp = Cccp { tol: 1e-12, max_rounds: 100 };
        let f = |x: f64| x * x - x.abs();
        let result = cccp.run(2.0_f64, |&x| {
            let s = if x >= 0.0 { 1.0 } else { -1.0 };
            let next = s / 2.0;
            (next, f(next))
        });
        assert!(result.converged);
        assert!((result.state - 0.5).abs() < 1e-12);
        assert!((result.history.last().unwrap() + 0.25).abs() < 1e-12);
        assert!(result.history.is_monotone_decreasing(1e-12));
    }

    #[test]
    fn negative_start_converges_to_negative_optimum() {
        let cccp = Cccp { tol: 1e-12, max_rounds: 100 };
        let f = |x: f64| x * x - x.abs();
        let result = cccp.run(-3.0_f64, |&x| {
            let s = if x >= 0.0 { 1.0 } else { -1.0 };
            let next = s / 2.0;
            (next, f(next))
        });
        assert!((result.state + 0.5).abs() < 1e-12);
    }

    #[test]
    fn max_rounds_is_respected() {
        let cccp = Cccp { tol: 0.0, max_rounds: 5 };
        let mut calls = 0;
        let result = cccp.run(0.0_f64, |&x| {
            calls += 1;
            (x + 1.0, -(x + 1.0)) // strictly decreasing forever
        });
        assert_eq!(calls, 5);
        assert!(!result.converged);
        assert_eq!(result.history.len(), 5);
    }

    #[test]
    fn run_with_history_matches_uninterrupted_run() {
        let cccp = Cccp { tol: 1e-12, max_rounds: 100 };
        let f = |x: f64| x * x - x.abs();
        let step = |&x: &f64| {
            let s = if x >= 0.0 { 1.0 } else { -1.0 };
            let next = s / 2.0;
            (next, f(next))
        };
        let full = cccp.run(2.0_f64, step);
        // Interrupt after one round: replay the first step, then resume
        // with the recorded history.
        let head = Cccp { tol: 1e-12, max_rounds: 1 }.run(2.0_f64, step);
        let resumed = cccp.run_with_history(
            head.state,
            History::from_values(head.history.values().to_vec()),
            step,
        );
        assert_eq!(resumed.converged, full.converged);
        assert_eq!(resumed.history.len(), full.history.len());
        assert_eq!(resumed.state.to_bits(), full.state.to_bits());
    }

    #[test]
    fn run_with_history_skips_work_when_already_converged() {
        let cccp = Cccp { tol: 1e-3, max_rounds: 50 };
        let mut calls = 0;
        let result = cccp.run_with_history(0.5_f64, History::from_values(vec![1.0, 1.0]), |&x| {
            calls += 1;
            (x, 1.0)
        });
        assert_eq!(calls, 0);
        assert!(result.converged);
        assert_eq!(result.history.len(), 2);
    }

    #[test]
    fn run_with_history_counts_prior_rounds_against_budget() {
        let cccp = Cccp { tol: 0.0, max_rounds: 5 };
        let mut calls = 0;
        let result =
            cccp.run_with_history(0.0_f64, History::from_values(vec![3.0, 2.0, 1.0]), |&x| {
                calls += 1;
                (x + 1.0, -(x + 1.0))
            });
        assert_eq!(calls, 2);
        assert_eq!(result.history.len(), 5);
        assert!(!result.converged);
    }

    #[test]
    fn converges_immediately_on_fixed_point() {
        let cccp = Cccp { tol: 1e-9, max_rounds: 50 };
        let result = cccp.run(1.0_f64, |&x| (x, 42.0));
        // Objective is constant, so convergence triggers on round 2.
        assert!(result.converged);
        assert_eq!(result.history.len(), 2);
        assert_eq!(result.state, 1.0);
    }
}
