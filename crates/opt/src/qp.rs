//! Coordinate-ascent solver for the PLOS dual quadratic programs.
//!
//! Both duals in the paper share one shape. Eq. (16):
//!
//! ```text
//! max_{γ ≥ 0}  −½‖Σ γ_kt z_kt‖² + Σ γ_kt c_kt
//! s.t.          Σ_k γ_kt ≤ T/2λ           (one cap per user t)
//! ```
//!
//! In minimization form this is `min ½ γᵀQγ − bᵀγ` with `Q_ij = ⟨z_i, z_j⟩`
//! PSD, subject to `γ ≥ 0` and a *capped-sum* constraint per disjoint group
//! of variables. The local device dual of Eq. (22) is the same problem with a
//! single group. Because the constraints are separable per coordinate given
//! the rest of its group, cyclic coordinate descent with per-coordinate
//! clipping is exact and converges monotonically for PSD `Q` — the same
//! family of solvers used by liblinear for SVM duals.

use crate::error::OptError;
use plos_linalg::{LinalgError, Matrix, Vector};

/// A PSD quadratic program `min ½ γᵀQγ − bᵀγ` over `γ ≥ 0` with disjoint
/// capped-sum groups `Σ_{i ∈ g} γ_i ≤ cap_g`.
///
/// Variables not covered by any group are only constrained to `γ_i ≥ 0`.
///
/// ```
/// use plos_linalg::{Matrix, Vector};
/// use plos_opt::{GroupedQp, OptError, QpSolverOptions};
/// # fn main() -> Result<(), OptError> {
/// // min ½(γ₀² + γ₁²) − γ₀ − 2γ₁  s.t. γ ≥ 0, γ₀ + γ₁ ≤ 1
/// let q = Matrix::identity(2);
/// let b = Vector::from(vec![1.0, 2.0]);
/// let qp = GroupedQp::new(q, b, vec![(vec![0, 1], 1.0)])?;
/// let sol = qp.solve(&QpSolverOptions::default())?;
/// assert!(sol.gamma[1] > sol.gamma[0]); // the larger linear gain wins the cap
/// assert!(sol.gamma[0] + sol.gamma[1] <= 1.0 + 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GroupedQp {
    q: Matrix,
    b: Vector,
    /// `(member indices, cap)` per group; groups are disjoint.
    groups: Vec<(Vec<usize>, f64)>,
    /// group id per variable (usize::MAX = ungrouped)
    group_of: Vec<usize>,
}

/// Tuning knobs for [`GroupedQp::solve`].
#[derive(Debug, Clone)]
pub struct QpSolverOptions {
    /// Stop when the largest coordinate update in a sweep falls below this.
    pub tol: f64,
    /// Maximum number of full sweeps.
    pub max_sweeps: usize,
}

impl Default for QpSolverOptions {
    fn default() -> Self {
        QpSolverOptions { tol: 1e-10, max_sweeps: 10_000 }
    }
}

/// Solution of a [`GroupedQp`].
#[derive(Debug, Clone)]
pub struct QpSolution {
    /// Optimal variables.
    pub gamma: Vector,
    /// Objective value `½ γᵀQγ − bᵀγ` at `gamma`.
    pub objective: f64,
    /// Sweeps actually performed.
    pub sweeps: usize,
    /// Whether the tolerance was reached within the sweep budget.
    pub converged: bool,
    /// Coordinates a pairwise (SMO) move lifted back off the shrunk set —
    /// how often the liblinear-style shrinking heuristic guessed wrong.
    pub shrink_reactivations: u64,
}

impl GroupedQp {
    /// Creates a grouped QP.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `q` is not square.
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != q.nrows()`, if a
    ///   group references an out-of-range variable, or if groups overlap.
    /// * [`LinalgError::OutOfRange`] if a group cap is negative or not finite.
    pub fn new(q: Matrix, b: Vector, groups: Vec<(Vec<usize>, f64)>) -> Result<Self, LinalgError> {
        if !q.is_square() {
            return Err(LinalgError::NotSquare { rows: q.nrows(), cols: q.ncols() });
        }
        let n = q.nrows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "GroupedQp::new (b)",
                expected: n,
                actual: b.len(),
            });
        }
        let mut group_of = vec![usize::MAX; n];
        for (gi, (members, cap)) in groups.iter().enumerate() {
            if !(cap.is_finite() && *cap >= 0.0) {
                return Err(LinalgError::OutOfRange {
                    op: "GroupedQp::new (group cap)",
                    value: *cap,
                });
            }
            for &m in members {
                let Some(slot) = group_of.get_mut(m) else {
                    return Err(LinalgError::DimensionMismatch {
                        op: "GroupedQp::new (group member)",
                        expected: n,
                        actual: m,
                    });
                };
                if *slot != usize::MAX {
                    return Err(LinalgError::DimensionMismatch {
                        op: "GroupedQp::new (overlapping groups)",
                        expected: usize::MAX,
                        actual: m,
                    });
                }
                *slot = gi;
            }
        }
        Ok(GroupedQp { q, b, groups, group_of })
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.b.len()
    }

    /// Objective `½ γᵀQγ − bᵀγ`.
    pub fn objective(&self, gamma: &Vector) -> f64 {
        0.5 * self.q.quadratic_form(gamma) - self.b.dot(gamma)
    }

    /// Returns `true` if `gamma` satisfies all constraints within `tol`.
    pub fn is_feasible(&self, gamma: &Vector, tol: f64) -> bool {
        if gamma.len() != self.dim() {
            return false;
        }
        if gamma.iter().any(|&g| g < -tol) {
            return false;
        }
        self.groups
            .iter()
            .all(|(members, cap)| members.iter().map(|&i| gamma[i]).sum::<f64>() <= cap + tol)
    }

    /// Solves the QP by cyclic coordinate descent with exact per-coordinate
    /// clipping, starting from `γ = 0` (always feasible).
    ///
    /// # Errors
    ///
    /// Returns [`OptError::NonFinite`] if `Q` or `b` contains NaN or
    /// infinite entries.
    pub fn solve(&self, opts: &QpSolverOptions) -> Result<QpSolution, OptError> {
        self.solve_warm(Vector::zeros(self.dim()), opts)
    }

    /// Solves starting from a warm-start point.
    ///
    /// The warm start is first projected to feasibility (coordinates clamped
    /// to `≥ 0`, then groups rescaled onto their caps if violated).
    ///
    /// # Errors
    ///
    /// * [`OptError::Linalg`] ([`LinalgError::DimensionMismatch`]) if
    ///   `warm.len() != dim()`.
    /// * [`OptError::NonFinite`] if `Q`, `b`, or the warm start contains NaN
    ///   or infinite entries.
    // Allowed: `new` validates every group member index against `n` and fills
    // `group_of` with ids below `groups.len()`; `group_sum` is sized to
    // `groups.len()` locally, so all slice indices below are invariant-backed.
    #[allow(clippy::indexing_slicing)]
    pub fn solve_warm(&self, warm: Vector, opts: &QpSolverOptions) -> Result<QpSolution, OptError> {
        let n = self.dim();
        if warm.len() != n {
            return Err(OptError::Linalg(LinalgError::DimensionMismatch {
                op: "GroupedQp::solve_warm (warm start)",
                expected: n,
                actual: warm.len(),
            }));
        }
        if !warm.iter().all(|g| g.is_finite()) {
            return Err(OptError::NonFinite { what: "warm start" });
        }
        if !self.q.as_slice().iter().all(|v| v.is_finite()) {
            return Err(OptError::NonFinite { what: "Q matrix" });
        }
        if !self.b.iter().all(|v| v.is_finite()) {
            return Err(OptError::NonFinite { what: "b vector" });
        }
        let mut gamma = warm.map(|g| g.max(0.0));
        // Rescale any over-cap group onto its cap.
        let mut group_sum: Vec<f64> = self
            .groups
            .iter()
            .map(|(members, _)| members.iter().map(|&i| gamma[i]).sum())
            .collect();
        for (gi, (members, cap)) in self.groups.iter().enumerate() {
            if group_sum[gi] > *cap && group_sum[gi] > 0.0 {
                let scale = cap / group_sum[gi];
                for &i in members {
                    gamma[i] *= scale;
                }
                group_sum[gi] = *cap;
            }
        }

        // Maintain grad = Q·γ − b incrementally.
        let mut grad = self.q.matvec(&gamma);
        grad -= &self.b;

        // Active-set shrinking (liblinear-style): a coordinate pinned at 0
        // with positive gradient is KKT-satisfied where it stands; after it
        // has looked pinned for SHRINK_AFTER consecutive sweeps we stop
        // visiting it. Convergence on the shrunk set is only provisional —
        // a full verification sweep over every coordinate must also be
        // quiet before we declare the solution optimal.
        const SHRINK_AFTER: usize = 2;
        let shrink_tol = opts.tol.max(1e-12);
        let mut active = vec![true; n];
        let mut pinned_sweeps = vec![0usize; n];
        let mut verifying = false;

        let mut sweeps = 0;
        let mut converged = false;
        let mut shrink_reactivations = 0_u64;
        while sweeps < opts.max_sweeps {
            sweeps += 1;
            let full_sweep = verifying;
            let mut max_delta = 0.0_f64;

            // Pass 1: single-coordinate updates with clipping against the
            // non-negativity bound and the remaining group budget.
            for i in 0..n {
                if !full_sweep && !active[i] {
                    continue;
                }
                let qii = self.q[(i, i)];
                let gi = self.group_of[i];
                let upper = if gi == usize::MAX {
                    f64::INFINITY
                } else {
                    // Cap minus the rest of the group.
                    self.groups[gi].1 - (group_sum[gi] - gamma[i])
                };
                let new_val = if qii > 0.0 {
                    (gamma[i] - grad[i] / qii).clamp(0.0, upper.max(0.0))
                } else {
                    // Degenerate curvature: the objective is linear in γ_i;
                    // move to whichever bound decreases it.
                    if grad[i] > 0.0 {
                        0.0
                    } else if grad[i] < 0.0 && upper.is_finite() {
                        upper.max(0.0)
                    } else {
                        gamma[i]
                    }
                };
                let delta = new_val - gamma[i];
                if delta != 0.0 {
                    self.apply_update(i, delta, &mut gamma, &mut grad);
                    if gi != usize::MAX {
                        group_sum[gi] += delta;
                    }
                    max_delta = max_delta.max(delta.abs());
                }
                // Shrink bookkeeping: count consecutive sweeps this
                // coordinate has sat at its lower bound wanting to stay.
                if gamma[i] == 0.0 && grad[i] > shrink_tol {
                    pinned_sweeps[i] += 1;
                    if pinned_sweeps[i] >= SHRINK_AFTER {
                        active[i] = false;
                    }
                } else {
                    pinned_sweeps[i] = 0;
                    active[i] = true;
                }
            }

            // Pass 2: SMO-style pairwise updates inside each group. A move
            // of δ along e_i − e_j keeps the group sum constant, which is
            // the only way to redistribute mass once the cap is active
            // (single-coordinate moves are blocked at that vertex).
            for (members, _cap) in &self.groups {
                for a in 0..members.len() {
                    for b in (a + 1)..members.len() {
                        let (i, j) = (members[a], members[b]);
                        // Two shrunk coordinates both sit at 0, so the pair
                        // move is clamped to [−0, 0] — skipping is lossless.
                        if !full_sweep && !active[i] && !active[j] {
                            continue;
                        }
                        let curvature = self.q[(i, i)] + self.q[(j, j)] - 2.0 * self.q[(i, j)];
                        let slope = grad[i] - grad[j];
                        let lo = -gamma[i]; // keeps γ_i ≥ 0
                        let hi = gamma[j]; // keeps γ_j ≥ 0
                        let delta = if curvature > 0.0 {
                            (-slope / curvature).clamp(lo, hi)
                        } else if slope > 0.0 {
                            lo
                        } else if slope < 0.0 {
                            hi
                        } else {
                            0.0
                        };
                        if delta != 0.0 {
                            self.apply_update(i, delta, &mut gamma, &mut grad);
                            self.apply_update(j, -delta, &mut gamma, &mut grad);
                            max_delta = max_delta.max(delta.abs());
                            // A pair move can lift a shrunk coordinate off
                            // its bound; put both back in the working set.
                            shrink_reactivations += u64::from(!active[i]) + u64::from(!active[j]);
                            active[i] = true;
                            active[j] = true;
                            pinned_sweeps[i] = 0;
                            pinned_sweeps[j] = 0;
                        }
                    }
                }
            }

            if max_delta < opts.tol {
                if full_sweep || active.iter().all(|&a| a) {
                    converged = true;
                    break;
                }
                // Quiet on the shrunk set only: unshrink everything and run
                // one full verification sweep before declaring convergence.
                active.iter_mut().for_each(|a| *a = true);
                pinned_sweeps.iter_mut().for_each(|p| *p = 0);
                verifying = true;
            } else {
                verifying = false;
            }
        }
        let objective = self.objective(&gamma);
        // Eq. (18) dual feasibility: γ ≥ 0 with every capped-sum group on or
        // under its cap. Coordinate descent maintains feasibility at every
        // step, so a violation here is a solver bug, not bad input.
        #[cfg(feature = "strict-invariants")]
        debug_assert!(
            self.is_feasible(&gamma, 1e-8),
            "QP solution violates Eq. (18) dual feasibility"
        );
        #[cfg(feature = "strict-invariants")]
        debug_assert!(objective.is_finite(), "QP objective is not finite at the returned point");
        plos_obs::emit(
            "qp_solve",
            &[
                ("dim", n.into()),
                ("sweeps", sweeps.into()),
                ("converged", converged.into()),
                ("shrink_reactivations", shrink_reactivations.into()),
                ("objective", objective.into()),
            ],
        );
        Ok(QpSolution { gamma, objective, sweeps, converged, shrink_reactivations })
    }

    /// Applies `gamma[i] += delta` and keeps `grad = Q·γ − b` consistent.
    fn apply_update(&self, i: usize, delta: f64, gamma: &mut Vector, grad: &mut Vector) {
        plos_linalg::kernels::axpy(grad.as_mut_slice(), delta, self.q.row(i));
        gamma[i] += delta;
    }

    pub(crate) fn q_ref(&self) -> &Matrix {
        &self.q
    }

    pub(crate) fn b_ref(&self) -> &Vector {
        &self.b
    }

    pub(crate) fn groups_ref(&self) -> &[(Vec<usize>, f64)] {
        &self.groups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> QpSolverOptions {
        QpSolverOptions::default()
    }

    #[test]
    fn unconstrained_interior_optimum() {
        // min ½γᵀIγ − bᵀγ with b ≥ 0 and loose cap: optimum γ = b.
        let qp = GroupedQp::new(
            Matrix::identity(3),
            Vector::from(vec![0.5, 1.0, 0.25]),
            vec![(vec![0, 1, 2], 100.0)],
        )
        .unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert!(sol.converged);
        for (g, b) in sol.gamma.iter().zip([0.5, 1.0, 0.25]) {
            assert!((g - b).abs() < 1e-8);
        }
    }

    #[test]
    fn nonneg_constraint_binds() {
        // Negative linear gain => γ stays 0.
        let qp =
            GroupedQp::new(Matrix::identity(2), Vector::from(vec![-1.0, -2.0]), vec![]).unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert_eq!(sol.gamma.as_slice(), &[0.0, 0.0]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn cap_binds_and_allocates_to_best_coordinate() {
        // Equal curvature, one coordinate with larger gain, tight cap.
        let qp = GroupedQp::new(
            Matrix::identity(2),
            Vector::from(vec![1.0, 2.0]),
            vec![(vec![0, 1], 1.0)],
        )
        .unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert!(qp.is_feasible(&sol.gamma, 1e-9));
        let total: f64 = sol.gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-8, "cap should be active, total={total}");
        // KKT: cap multiplier μ = 1 gives γ = (1−μ, 2−μ)₊ = (0, 1).
        assert!(sol.gamma[0].abs() < 1e-6);
        assert!((sol.gamma[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn multiple_independent_groups() {
        let qp = GroupedQp::new(
            Matrix::identity(4),
            Vector::from(vec![5.0, 5.0, 0.1, 0.1]),
            vec![(vec![0, 1], 1.0), (vec![2, 3], 10.0)],
        )
        .unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert!((sol.gamma[0] + sol.gamma[1] - 1.0).abs() < 1e-8, "group 0 cap active");
        // Group 1 cap slack: interior optimum = b.
        assert!((sol.gamma[2] - 0.1).abs() < 1e-8);
        assert!((sol.gamma[3] - 0.1).abs() < 1e-8);
    }

    #[test]
    fn zero_cap_pins_group_to_zero() {
        let qp = GroupedQp::new(
            Matrix::identity(2),
            Vector::from(vec![3.0, 3.0]),
            vec![(vec![0, 1], 0.0)],
        )
        .unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert_eq!(sol.gamma.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn correlated_q_matches_kkt() {
        // Q = [[2,1],[1,2]], b = (1,1): unconstrained optimum Qγ = b => γ = (1/3,1/3).
        let q = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let qp = GroupedQp::new(q, Vector::from(vec![1.0, 1.0]), vec![]).unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert!((sol.gamma[0] - 1.0 / 3.0).abs() < 1e-8);
        assert!((sol.gamma[1] - 1.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn zero_curvature_linear_coordinate() {
        // Q has a zero row/col: variable 1 is linear with positive gain and a cap.
        let q = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 0.0]]).unwrap();
        let qp = GroupedQp::new(q, Vector::from(vec![1.0, 1.0]), vec![(vec![1], 2.0)]).unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert!((sol.gamma[0] - 1.0).abs() < 1e-8);
        assert!((sol.gamma[1] - 2.0).abs() < 1e-8, "linear coordinate rides to its cap");
    }

    #[test]
    fn warm_start_infeasible_is_projected() {
        let qp = GroupedQp::new(
            Matrix::identity(2),
            Vector::from(vec![1.0, 1.0]),
            vec![(vec![0, 1], 1.0)],
        )
        .unwrap();
        let sol = qp.solve_warm(Vector::from(vec![-5.0, 10.0]), &opts()).unwrap();
        assert!(qp.is_feasible(&sol.gamma, 1e-9));
        // Optimum splits the cap evenly by symmetry.
        assert!((sol.gamma[0] - 0.5).abs() < 1e-6);
        assert!((sol.gamma[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn warm_start_matches_cold_start() {
        let q = Matrix::from_rows(&[vec![3.0, 0.5], vec![0.5, 2.0]]).unwrap();
        let qp = GroupedQp::new(q, Vector::from(vec![1.0, 4.0]), vec![(vec![0, 1], 1.5)]).unwrap();
        let cold = qp.solve(&opts()).unwrap();
        let warm = qp.solve_warm(Vector::from(vec![0.7, 0.7]), &opts()).unwrap();
        assert!((cold.objective - warm.objective).abs() < 1e-8);
    }

    #[test]
    fn constructor_validations() {
        assert!(GroupedQp::new(Matrix::zeros(2, 3), Vector::zeros(2), vec![]).is_err());
        assert!(GroupedQp::new(Matrix::identity(2), Vector::zeros(3), vec![]).is_err());
        assert!(
            GroupedQp::new(Matrix::identity(2), Vector::zeros(2), vec![(vec![5], 1.0)]).is_err()
        );
        assert!(GroupedQp::new(
            Matrix::identity(2),
            Vector::zeros(2),
            vec![(vec![0], 1.0), (vec![0], 1.0)]
        )
        .is_err());
    }

    #[test]
    fn objective_decreases_from_feasible_start() {
        let q = Matrix::from_rows(&[vec![2.0, 0.3], vec![0.3, 1.0]]).unwrap();
        let qp = GroupedQp::new(q, Vector::from(vec![1.0, -0.2]), vec![(vec![0, 1], 0.8)]).unwrap();
        let start = Vector::from(vec![0.4, 0.4]);
        let before = qp.objective(&start);
        let sol = qp.solve_warm(start, &opts()).unwrap();
        assert!(sol.objective <= before + 1e-12);
    }

    #[test]
    fn is_feasible_rejects_bad_points() {
        let qp =
            GroupedQp::new(Matrix::identity(2), Vector::zeros(2), vec![(vec![0, 1], 1.0)]).unwrap();
        assert!(qp.is_feasible(&Vector::from(vec![0.5, 0.5]), 1e-9));
        assert!(!qp.is_feasible(&Vector::from(vec![-0.1, 0.5]), 1e-9));
        assert!(!qp.is_feasible(&Vector::from(vec![0.8, 0.8]), 1e-9));
        assert!(!qp.is_feasible(&Vector::zeros(3), 1e-9));
    }

    #[test]
    fn solve_rejects_bad_inputs_with_err() {
        let nan_b =
            GroupedQp::new(Matrix::identity(2), Vector::from(vec![1.0, f64::NAN]), vec![]).unwrap();
        assert!(matches!(nan_b.solve(&opts()), Err(OptError::NonFinite { what: "b vector" })));

        let nan_q =
            GroupedQp::new(Matrix::from_diagonal(&[f64::NAN, 1.0]), Vector::zeros(2), vec![])
                .unwrap();
        assert!(matches!(nan_q.solve(&opts()), Err(OptError::NonFinite { what: "Q matrix" })));

        let qp = GroupedQp::new(Matrix::identity(2), Vector::zeros(2), vec![]).unwrap();
        assert!(matches!(
            qp.solve_warm(Vector::zeros(3), &opts()),
            Err(OptError::Linalg(LinalgError::DimensionMismatch { .. }))
        ));
        assert!(matches!(
            qp.solve_warm(Vector::from(vec![0.0, f64::INFINITY]), &opts()),
            Err(OptError::NonFinite { what: "warm start" })
        ));
    }

    #[test]
    fn shrinking_reaches_unique_optimum_from_any_start() {
        // Strictly convex random QP: the optimum is unique, so the shrunk
        // working-set path and every warm start must land on the same point.
        let n = 12;
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (1u64 << 31) as f64 - 1.0
        };
        let a = Matrix::from_row_major(n, n, (0..n * n).map(|_| next()).collect()).unwrap();
        let mut q = a.transpose().matmul(&a).unwrap();
        q.add_diagonal(0.5);
        // Mostly-negative gains pin most coordinates at 0 and exercise the
        // shrink/verify cycle.
        let b: Vector =
            (0..n).map(|i| if i % 4 == 0 { 1.0 } else { -1.0 + 0.1 * next() }).collect();
        let qp = GroupedQp::new(q, b, vec![(vec![0, 4, 8], 0.7)]).unwrap();
        let cold = qp.solve(&opts()).unwrap();
        assert!(cold.converged);
        assert!(qp.is_feasible(&cold.gamma, 1e-9));
        for trial in 0..4 {
            let warm: Vector = (0..n).map(|_| next().abs() * (trial as f64)).collect();
            let sol = qp.solve_warm(warm, &opts()).unwrap();
            assert!(sol.converged, "trial {trial}");
            assert!((sol.objective - cold.objective).abs() < 1e-7, "trial {trial}");
            for (g, c) in sol.gamma.iter().zip(cold.gamma.iter()) {
                assert!((g - c).abs() < 1e-5, "trial {trial}: {g} vs {c}");
            }
        }
    }

    #[test]
    fn shrinking_satisfies_kkt_at_pinned_coordinates() {
        // All-negative gains: every coordinate pins at 0 (grad = −b > 0),
        // the whole set shrinks, and the verification pass must still sign
        // off with converged = true in a handful of sweeps.
        let qp = GroupedQp::new(
            Matrix::identity(6),
            Vector::from(vec![-1.0, -2.0, -0.5, -3.0, -1.5, -0.1]),
            vec![(vec![0, 1, 2], 1.0)],
        )
        .unwrap();
        let sol = qp.solve(&opts()).unwrap();
        assert!(sol.converged);
        assert!(sol.sweeps <= 5, "shrunk problem should converge fast, took {}", sol.sweeps);
        assert_eq!(sol.gamma.as_slice(), &[0.0; 6]);
    }

    #[test]
    fn constructor_rejects_bad_caps() {
        for cap in [f64::NAN, f64::INFINITY, -1.0] {
            let err = GroupedQp::new(Matrix::identity(1), Vector::zeros(1), vec![(vec![0], cap)])
                .unwrap_err();
            assert!(matches!(err, LinalgError::OutOfRange { .. }), "cap {cap}: {err:?}");
        }
    }
}
