//! Objective-trajectory bookkeeping shared by the iterative drivers.

/// Records a scalar objective trajectory and answers convergence questions.
///
/// ```
/// use plos_opt::History;
/// let mut h = History::new();
/// h.push(10.0);
/// h.push(9.0);
/// h.push(8.9999);
/// assert!(h.converged(1e-3));
/// assert!(h.is_monotone_decreasing(1e-9));
/// ```
#[derive(Debug, Clone, Default)]
pub struct History {
    values: Vec<f64>,
}

impl History {
    /// Creates an empty history.
    pub fn new() -> Self {
        History { values: Vec::new() }
    }

    /// Rebuilds a history from previously recorded values, in order — used
    /// when resuming an interrupted run from a checkpoint.
    pub fn from_values(values: Vec<f64>) -> Self {
        History { values }
    }

    /// Appends an objective value.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// All recorded values, in order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The most recent value, if any.
    pub fn last(&self) -> Option<f64> {
        self.values.last().copied()
    }

    /// Number of recorded values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if nothing was recorded yet.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `true` once the last two values differ by less than `tol`.
    pub fn converged(&self, tol: f64) -> bool {
        match self.values.as_slice() {
            [.., prev, last] => (last - prev).abs() < tol,
            _ => false,
        }
    }

    /// `true` if the sequence never increases by more than `tol`.
    ///
    /// CCCP guarantees a monotonically decreasing objective; the PLOS tests
    /// assert this invariant on every run.
    pub fn is_monotone_decreasing(&self, tol: f64) -> bool {
        self.values.iter().zip(self.values.iter().skip(1)).all(|(a, b)| *b <= *a + tol)
    }

    /// Total decrease from the first to the last value (positive = progress).
    pub fn total_decrease(&self) -> f64 {
        match (self.values.first(), self.values.last()) {
            (Some(first), Some(last)) => first - last,
            _ => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_behaviour() {
        let h = History::new();
        assert!(h.is_empty());
        assert_eq!(h.last(), None);
        assert!(!h.converged(1.0));
        assert!(h.is_monotone_decreasing(0.0));
        assert_eq!(h.total_decrease(), 0.0);
    }

    #[test]
    fn single_value_not_converged() {
        let mut h = History::new();
        h.push(5.0);
        assert!(!h.converged(100.0));
        assert_eq!(h.last(), Some(5.0));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn convergence_detection() {
        let mut h = History::new();
        h.push(10.0);
        h.push(5.0);
        assert!(!h.converged(1.0));
        h.push(4.5);
        assert!(h.converged(0.6));
        assert!(!h.converged(0.4));
    }

    #[test]
    fn monotonicity_with_tolerance() {
        let mut h = History::new();
        for v in [3.0, 2.0, 2.0000001, 1.0] {
            h.push(v);
        }
        assert!(h.is_monotone_decreasing(1e-6));
        assert!(!h.is_monotone_decreasing(1e-9));
    }

    #[test]
    fn total_decrease() {
        let mut h = History::new();
        h.push(10.0);
        h.push(3.0);
        assert_eq!(h.total_decrease(), 7.0);
    }
}
