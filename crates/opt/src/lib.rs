// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! Optimization substrate for the PLOS reproduction.
//!
//! The PLOS paper (ICDCS 2018) composes four optimization building blocks:
//!
//! * a **quadratic-program solver** for the cutting-plane duals — Eq. (16)
//!   is a PSD QP over `γ ≥ 0` with one capped-sum constraint per user, and
//!   Eq. (22)'s dual has the same shape with a single cap ([`qp`]);
//! * the **cutting-plane method** (Kelley 1960) that grows working sets of
//!   most-violated constraints until none is violated by more than `ε`
//!   ([`cutting_plane`]);
//! * the **concave–convex procedure** (CCCP) that repeatedly linearizes the
//!   concave `|w·x|` terms contributed by unlabeled samples ([`cccp`]);
//! * **consensus ADMM** for the distributed variant, with the paper's
//!   primal/dual residual stopping rule, Eq. (23)–(24) ([`admm`]).
//!
//! Each block is generic: the PLOS-specific objective lives in `plos-core`,
//! which plugs its closures/impls into these drivers. A projected-gradient
//! reference solver ([`pg`]) cross-checks the coordinate-descent QP solver in
//! tests.

pub mod admm;
pub mod cccp;
pub mod convergence;
pub mod cutting_plane;
pub mod error;
pub mod pg;
pub mod qp;

pub use admm::{AdmmProblem, AdmmResult, AdmmState, ConsensusAdmm};
pub use cccp::{Cccp, CccpResult};
pub use convergence::History;
pub use cutting_plane::{CuttingPlane, CuttingPlaneReport};
pub use error::OptError;
pub use qp::{GroupedQp, QpSolution, QpSolverOptions};
