//! Generic cutting-plane (constraint-generation) driver.
//!
//! The PLOS primal (11) has `Σ_t 2^{m_t}` constraints — one per subset
//! selector `c_t ∈ {0,1}^{m_t}` per user. The paper follows Kelley's
//! cutting-plane method: keep a small working set `Ω_t` per user, solve the
//! relaxed problem, then ask a *most-violated-constraint oracle* (Eq. 14)
//! whether any user has a constraint violated by more than `ε`; if so, add it
//! and re-solve (Algorithm 1, steps 4–6).
//!
//! This module implements the loop generically over:
//!
//! * a **solver** closure: given the per-group working sets, produce a
//!   solution of the relaxed problem;
//! * an **oracle** closure: given that solution and a group index, return the
//!   most violated constraint and its violation margin (how far beyond
//!   `ξ_t + ε` it sits), or `None` if the group is satisfied.

/// Configuration for the cutting-plane loop.
#[derive(Debug, Clone)]
pub struct CuttingPlane {
    /// Constraint-violation tolerance `ε` (Algorithm 1, step 6).
    pub eps: f64,
    /// Safety cap on the number of solve/oracle rounds.
    pub max_rounds: usize,
}

impl Default for CuttingPlane {
    fn default() -> Self {
        CuttingPlane { eps: 1e-3, max_rounds: 200 }
    }
}

/// Outcome of a cutting-plane run.
#[derive(Debug, Clone, PartialEq)]
pub struct CuttingPlaneReport {
    /// Rounds of solve + oracle performed.
    pub rounds: usize,
    /// Total constraints accumulated over all groups.
    pub total_constraints: usize,
    /// Whether the loop exited because every group was `ε`-satisfied (as
    /// opposed to hitting `max_rounds`).
    pub satisfied: bool,
}

impl CuttingPlane {
    /// Runs the constraint-generation loop.
    ///
    /// `solve(working_sets)` must return the optimum of the relaxed problem
    /// restricted to the given working sets. `most_violated(&sol, g)` must
    /// return `Some((constraint, violation))` when group `g` has a constraint
    /// violated by more than zero, where `violation` is measured *after*
    /// subtracting the slack (`ξ_g`); constraints with `violation <= eps`
    /// are not added.
    ///
    /// Returns the final solution together with a [`CuttingPlaneReport`].
    ///
    /// # Panics
    ///
    /// Panics if `n_groups == 0`.
    pub fn run<C, Sol>(
        &self,
        n_groups: usize,
        mut solve: impl FnMut(&[Vec<C>]) -> Sol,
        mut most_violated: impl FnMut(&Sol, usize) -> Option<(C, f64)>,
    ) -> (Sol, Vec<Vec<C>>, CuttingPlaneReport) {
        assert!(n_groups > 0, "cutting plane requires at least one group");
        let mut working_sets: Vec<Vec<C>> = (0..n_groups).map(|_| Vec::new()).collect();
        let mut rounds = 0;
        loop {
            rounds += 1;
            let sol = solve(&working_sets);
            let mut any_added = false;
            let mut added = 0_usize;
            let mut max_violation = 0.0_f64;
            for (g, ws) in working_sets.iter_mut().enumerate() {
                if let Some((constraint, violation)) = most_violated(&sol, g) {
                    max_violation = max_violation.max(violation);
                    if violation > self.eps {
                        ws.push(constraint);
                        any_added = true;
                        added += 1;
                    }
                }
            }
            plos_obs::emit(
                "cutting_round",
                &[
                    ("round", rounds.into()),
                    ("working_set", working_sets.iter().map(Vec::len).sum::<usize>().into()),
                    ("added", added.into()),
                    ("max_violation", max_violation.into()),
                ],
            );
            if !any_added || rounds >= self.max_rounds {
                let total_constraints = working_sets.iter().map(Vec::len).sum();
                let report =
                    CuttingPlaneReport { rounds, total_constraints, satisfied: !any_added };
                return (sol, working_sets, report);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy problem: minimize x² subject to x >= a_i for constraints a_i,
    /// where the full constraint set is {x >= 0.9}. The solver only sees the
    /// working set; the oracle reveals the constraint when violated.
    #[test]
    fn converges_on_toy_problem() {
        let cp = CuttingPlane { eps: 1e-6, max_rounds: 50 };
        let hidden_bound = 0.9_f64;
        let (sol, sets, report) = cp.run(
            1,
            |ws: &[Vec<f64>]| {
                // min x² s.t. x >= max(working set, 0)
                ws[0].iter().copied().fold(0.0_f64, f64::max)
            },
            |&x, _g| {
                let violation = hidden_bound - x;
                if violation > 0.0 {
                    Some((hidden_bound, violation))
                } else {
                    None
                }
            },
        );
        assert!(report.satisfied);
        assert!((sol - hidden_bound).abs() < 1e-12);
        assert_eq!(sets[0].len(), 1);
        assert_eq!(report.total_constraints, 1);
        assert_eq!(report.rounds, 2); // one to discover, one to confirm
    }

    #[test]
    fn multiple_groups_accumulate_independently() {
        let cp = CuttingPlane { eps: 1e-9, max_rounds: 50 };
        let bounds = [0.5_f64, 2.0];
        let (sol, sets, report) = cp.run(
            2,
            |ws: &[Vec<f64>]| {
                let per_group: Vec<f64> =
                    ws.iter().map(|w| w.iter().copied().fold(0.0_f64, f64::max)).collect();
                per_group
            },
            |xs: &Vec<f64>, g| {
                let violation = bounds[g] - xs[g];
                (violation > 0.0).then_some((bounds[g], violation))
            },
        );
        assert!(report.satisfied);
        assert_eq!(sol, vec![0.5, 2.0]);
        assert_eq!(sets[0], vec![0.5]);
        assert_eq!(sets[1], vec![2.0]);
    }

    #[test]
    fn eps_filters_small_violations() {
        let cp = CuttingPlane { eps: 0.5, max_rounds: 50 };
        let (sol, sets, report) = cp.run(
            1,
            |ws: &[Vec<f64>]| ws[0].iter().copied().fold(0.0_f64, f64::max),
            |&x, _| {
                let violation = 0.3 - x; // below eps: never added
                (violation > 0.0).then_some((0.3, violation))
            },
        );
        assert!(report.satisfied);
        assert_eq!(sol, 0.0);
        assert!(sets[0].is_empty());
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn max_rounds_caps_runaway_oracle() {
        let cp = CuttingPlane { eps: 1e-9, max_rounds: 7 };
        let mut counter = 0.0_f64;
        let (_, _, report) = cp.run(
            1,
            |_ws: &[Vec<f64>]| 0.0,
            |_, _| {
                counter += 1.0;
                Some((counter, 1.0)) // always claims a fresh violated constraint
            },
        );
        assert!(!report.satisfied);
        assert_eq!(report.rounds, 7);
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        let cp = CuttingPlane::default();
        let _ = cp.run(0, |_: &[Vec<f64>]| 0.0, |_, _| None::<(f64, f64)>);
    }
}
