//! Generic consensus ADMM driver with the paper's stopping rule.
//!
//! Distributed PLOS (Sec. V) is consensus ADMM over the constraint
//! `w_t = w0 + v_t`: each agent `t` locally solves Eq. (22) for
//! `(w_t, v_t, ξ_t)` and reports the consensus variable `x_t := w_t − v_t`;
//! the server computes the closed-form global update of `z := w0` and the
//! scaled duals `u_t` (Eq. 23), and stops when the dual and primal residual
//! norms fall below `√(2T)·ε_abs` and `√T·ε_abs` respectively (Eq. 24).
//!
//! The driver below is generic: `plos-core` supplies the PLOS local QP and
//! the paper's server aggregation through the [`AdmmProblem`] trait; the same
//! trait is exercised by simple quadratic test problems here.

use crate::convergence::History;
use plos_linalg::Vector;

/// One consensus-ADMM problem instance.
///
/// The abstraction follows the x/z/u split of Boyd et al. (2011) §7:
/// `x_t` are agent-local consensus variables, `z` the global variable and
/// `u_t` the scaled duals for the constraints `x_t = z`.
pub trait AdmmProblem {
    /// Number of agents `T`.
    fn num_agents(&self) -> usize;

    /// Dimension of the consensus variable.
    fn dim(&self) -> usize;

    /// Solves the agent-`t` subproblem given the current global variable and
    /// this agent's scaled dual, returning the new `x_t`.
    fn local_step(&mut self, t: usize, z: &Vector, u_t: &Vector) -> Vector;

    /// Computes the new global variable from all local variables and duals.
    fn global_step(&self, xs: &[Vector], us: &[Vector]) -> Vector;

    /// Evaluates the objective used for progress reporting.
    fn objective(&self, xs: &[Vector], z: &Vector) -> f64;
}

/// Consensus-ADMM configuration (ρ and ε_abs as in Sec. VI-E: the paper uses
/// `ρ = 1`, `ε_abs = 10⁻³`).
#[derive(Debug, Clone)]
pub struct ConsensusAdmm {
    /// Augmented-Lagrangian penalty / step size ρ.
    pub rho: f64,
    /// Absolute residual tolerance ε_abs.
    pub eps_abs: f64,
    /// Maximum ADMM iterations.
    pub max_iters: usize,
}

impl Default for ConsensusAdmm {
    fn default() -> Self {
        ConsensusAdmm { rho: 1.0, eps_abs: 1e-3, max_iters: 500 }
    }
}

/// Mid-run snapshot of a consensus-ADMM run: everything the loop reads at
/// the top of an iteration. Exporting after iteration `k` and resuming via
/// [`ConsensusAdmm::run_from`] reproduces the uninterrupted run bit-exactly,
/// because the iteration body is a pure function of this state.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmmState {
    /// Global variable `z` after the last completed iteration.
    pub z: Vector,
    /// Local variables `x_t`.
    pub xs: Vec<Vector>,
    /// Scaled duals `u_t`.
    pub us: Vec<Vector>,
    /// Objective values recorded so far.
    pub history: Vec<f64>,
    /// Iterations already performed (they count against `max_iters`).
    pub iterations: usize,
    /// Whether the residual test had already passed.
    pub converged: bool,
    /// Dual residual after the last completed iteration.
    pub dual_residual: f64,
    /// Primal residual after the last completed iteration.
    pub primal_residual: f64,
}

impl AdmmState {
    /// The state of a run that has not taken any iterations yet.
    ///
    /// # Panics
    ///
    /// Panics if `t_count` is zero.
    pub fn fresh(z0: Vector, t_count: usize) -> Self {
        assert!(t_count > 0, "ADMM requires at least one agent");
        let dim = z0.len();
        AdmmState {
            z: z0,
            xs: vec![Vector::zeros(dim); t_count],
            us: vec![Vector::zeros(dim); t_count],
            history: Vec::new(),
            iterations: 0,
            converged: false,
            dual_residual: f64::INFINITY,
            primal_residual: f64::INFINITY,
        }
    }
}

/// Result of an ADMM run.
#[derive(Debug, Clone)]
pub struct AdmmResult {
    /// Final global variable `z` (for PLOS: the global hyperplane `w0`).
    pub z: Vector,
    /// Final local variables `x_t` (for PLOS: `w_t − v_t`).
    pub xs: Vec<Vector>,
    /// Final scaled duals `u_t`.
    pub us: Vec<Vector>,
    /// Objective after each iteration.
    pub history: History,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether both residual tests passed before `max_iters`.
    pub converged: bool,
    /// Final dual residual norm `ρ·√(2T)·‖z⁺ − z‖` (Eq. 24).
    pub dual_residual: f64,
    /// Final primal residual norm `√(Σ‖u⁺ − u‖²)` (Eq. 24).
    pub primal_residual: f64,
}

impl AdmmResult {
    /// Converts the result into a resumable snapshot, e.g. to continue with
    /// a larger iteration budget or after a checkpoint round trip.
    pub fn into_state(self) -> AdmmState {
        AdmmState {
            z: self.z,
            xs: self.xs,
            us: self.us,
            history: self.history.values().to_vec(),
            iterations: self.iterations,
            converged: self.converged,
            dual_residual: self.dual_residual,
            primal_residual: self.primal_residual,
        }
    }
}

impl ConsensusAdmm {
    /// Runs ADMM from the given initial global variable.
    ///
    /// # Panics
    ///
    /// Panics if the problem reports zero agents or if `z0.len()` does not
    /// match `problem.dim()`.
    pub fn run<P: AdmmProblem>(&self, problem: &mut P, z0: Vector) -> AdmmResult {
        let t_count = problem.num_agents();
        assert_eq!(z0.len(), problem.dim(), "z0 dimension mismatch");
        self.run_from(problem, AdmmState::fresh(z0, t_count))
    }

    /// Continues ADMM from a mid-run snapshot (see [`AdmmState`]).
    ///
    /// Iterations already recorded in `state` count against `max_iters`,
    /// and a state that had already converged returns immediately, so
    /// `run(k iters) → into_state → run_from` matches an uninterrupted run
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shapes disagree with the problem's.
    pub fn run_from<P: AdmmProblem>(&self, problem: &mut P, state: AdmmState) -> AdmmResult {
        let t_count = problem.num_agents();
        let dim = problem.dim();
        assert!(t_count > 0, "ADMM requires at least one agent");
        assert_eq!(state.z.len(), dim, "z0 dimension mismatch");
        assert_eq!(state.xs.len(), t_count, "snapshot xs count mismatch");
        assert_eq!(state.us.len(), t_count, "snapshot us count mismatch");

        let AdmmState {
            mut z,
            mut xs,
            mut us,
            history,
            mut iterations,
            mut converged,
            mut dual_residual,
            mut primal_residual,
        } = state;
        let mut history = History::from_values(history);

        let sqrt_2t = (2.0 * t_count as f64).sqrt();
        let sqrt_t = (t_count as f64).sqrt();

        while !converged && iterations < self.max_iters {
            iterations += 1;

            // x-step: every agent solves its local subproblem.
            for (t, (x_t, u_t)) in xs.iter_mut().zip(&us).enumerate() {
                *x_t = problem.local_step(t, &z, u_t);
            }

            // z-step: global aggregation (Eq. 23, first line, for PLOS).
            let z_new = problem.global_step(&xs, &us);
            assert_eq!(z_new.len(), dim, "global_step returned wrong dimension");

            // u-step: u_t += x_t − z⁺ (Eq. 23, second line).
            let mut u_change_sq = 0.0;
            for (x_t, u_t) in xs.iter().zip(us.iter_mut()) {
                let mut delta = x_t.clone();
                delta -= &z_new;
                // plos-lint: allow(D3): fold runs in fixed agent-index order; this scalar trajectory is pinned by the golden digests
                u_change_sq += delta.norm_squared();
                *u_t += &delta;
            }

            // Residuals per Eq. (24). A non-finite residual means a local
            // step diverged (NaN/∞ escaped an agent's solver); the stopping
            // test would silently never fire, so fail fast in strict mode.
            dual_residual = self.rho * sqrt_2t * z_new.distance(&z);
            primal_residual = u_change_sq.sqrt();
            #[cfg(feature = "strict-invariants")]
            debug_assert!(
                dual_residual.is_finite() && primal_residual.is_finite(),
                "ADMM Eq. (24) residuals not finite at iteration {iterations}: \
                 dual {dual_residual}, primal {primal_residual}"
            );
            z = z_new;

            history.push(problem.objective(&xs, &z));
            plos_obs::emit(
                "admm_round",
                &[
                    ("round", iterations.into()),
                    ("primal_residual", primal_residual.into()),
                    ("dual_residual", dual_residual.into()),
                ],
            );

            if dual_residual <= sqrt_2t * self.eps_abs && primal_residual <= sqrt_t * self.eps_abs {
                converged = true;
                break;
            }
        }

        AdmmResult { z, xs, us, history, iterations, converged, dual_residual, primal_residual }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Consensus averaging: each agent wants x_t near a private target a_t,
    /// global variable must equal all x_t.
    ///
    ///   min Σ_t ½‖x_t − a_t‖²  s.t. x_t = z
    ///
    /// The optimum is z* = mean(a_t). Local step for scaled ADMM:
    /// x_t = (a_t + ρ(z − u_t)) / (1 + ρ); global step: z = mean(x_t + u_t).
    struct Averaging {
        targets: Vec<Vector>,
        rho: f64,
    }

    impl AdmmProblem for Averaging {
        fn num_agents(&self) -> usize {
            self.targets.len()
        }
        fn dim(&self) -> usize {
            self.targets[0].len()
        }
        fn local_step(&mut self, t: usize, z: &Vector, u_t: &Vector) -> Vector {
            let mut zu = z.clone();
            zu -= u_t;
            let mut x = self.targets[t].clone();
            x.axpy(self.rho, &zu);
            x.scale_mut(1.0 / (1.0 + self.rho));
            x
        }
        fn global_step(&self, xs: &[Vector], us: &[Vector]) -> Vector {
            let dim = self.dim();
            let mut z = Vector::zeros(dim);
            for (x, u) in xs.iter().zip(us) {
                z += x;
                z += u;
            }
            z.scale_mut(1.0 / xs.len() as f64);
            z
        }
        fn objective(&self, xs: &[Vector], _z: &Vector) -> f64 {
            xs.iter().zip(&self.targets).map(|(x, a)| 0.5 * x.distance_squared(a)).sum()
        }
    }

    #[test]
    fn consensus_averaging_converges_to_mean() {
        let targets = vec![
            Vector::from(vec![1.0, 0.0]),
            Vector::from(vec![3.0, 2.0]),
            Vector::from(vec![2.0, 4.0]),
        ];
        let rho = 1.0;
        let mut problem = Averaging { targets, rho };
        let admm = ConsensusAdmm { rho, eps_abs: 1e-8, max_iters: 2000 };
        let result = admm.run(&mut problem, Vector::zeros(2));
        assert!(result.converged, "iterations={}", result.iterations);
        assert!((result.z[0] - 2.0).abs() < 1e-5);
        assert!((result.z[1] - 2.0).abs() < 1e-5);
        // Consensus actually reached.
        for x in &result.xs {
            assert!(x.distance(&result.z) < 1e-4);
        }
    }

    #[test]
    fn residuals_shrink_below_thresholds() {
        let targets = vec![Vector::from(vec![5.0]), Vector::from(vec![-5.0])];
        let mut problem = Averaging { targets, rho: 1.0 };
        let admm = ConsensusAdmm { rho: 1.0, eps_abs: 1e-6, max_iters: 5000 };
        let result = admm.run(&mut problem, Vector::zeros(1));
        assert!(result.converged);
        assert!(result.dual_residual <= (4.0_f64).sqrt() * 1e-6);
        assert!(result.primal_residual <= (2.0_f64).sqrt() * 1e-6);
        assert!((result.z[0]).abs() < 1e-4);
    }

    #[test]
    fn single_agent_consensus_is_its_target() {
        let mut problem = Averaging { targets: vec![Vector::from(vec![7.0])], rho: 2.0 };
        let admm = ConsensusAdmm { rho: 2.0, eps_abs: 1e-9, max_iters: 5000 };
        let result = admm.run(&mut problem, Vector::zeros(1));
        assert!(result.converged);
        assert!((result.z[0] - 7.0).abs() < 1e-6);
    }

    #[test]
    fn max_iters_bounds_work() {
        let targets = vec![Vector::from(vec![1.0]), Vector::from(vec![-1.0])];
        let mut problem = Averaging { targets, rho: 1.0 };
        let admm = ConsensusAdmm { rho: 1.0, eps_abs: 0.0, max_iters: 3 };
        let result = admm.run(&mut problem, Vector::zeros(1));
        assert!(!result.converged);
        assert_eq!(result.iterations, 3);
        assert_eq!(result.history.len(), 3);
    }

    #[test]
    fn split_run_matches_full_run_bit_exactly() {
        let targets = vec![
            Vector::from(vec![1.0, 0.5]),
            Vector::from(vec![3.0, -2.0]),
            Vector::from(vec![-2.0, 4.0]),
        ];
        let full = {
            let mut problem = Averaging { targets: targets.clone(), rho: 1.0 };
            let admm = ConsensusAdmm { rho: 1.0, eps_abs: 1e-6, max_iters: 200 };
            admm.run(&mut problem, Vector::zeros(2))
        };
        for k in [1usize, 3, 7] {
            let mut problem = Averaging { targets: targets.clone(), rho: 1.0 };
            let head = ConsensusAdmm { rho: 1.0, eps_abs: 1e-6, max_iters: k };
            let snapshot = head.run(&mut problem, Vector::zeros(2)).into_state();
            let tail = ConsensusAdmm { rho: 1.0, eps_abs: 1e-6, max_iters: 200 };
            let resumed = tail.run_from(&mut problem, snapshot);
            assert_eq!(resumed.iterations, full.iterations, "split at {k}");
            assert_eq!(resumed.converged, full.converged);
            for (a, b) in resumed.z.iter().zip(full.z.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "z diverged after split at {k}");
            }
            for (xa, xb) in resumed.xs.iter().zip(&full.xs) {
                for (a, b) in xa.iter().zip(xb.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
            assert_eq!(resumed.history.len(), full.history.len());
        }
    }

    #[test]
    fn resuming_a_converged_state_is_a_no_op() {
        let targets = vec![Vector::from(vec![2.0]), Vector::from(vec![4.0])];
        let mut problem = Averaging { targets, rho: 1.0 };
        let admm = ConsensusAdmm { rho: 1.0, eps_abs: 1e-6, max_iters: 2000 };
        let done = admm.run(&mut problem, Vector::zeros(1));
        assert!(done.converged);
        let iterations = done.iterations;
        let z_bits = done.z[0].to_bits();
        let resumed = admm.run_from(&mut problem, done.into_state());
        assert_eq!(resumed.iterations, iterations);
        assert_eq!(resumed.z[0].to_bits(), z_bits);
    }

    #[test]
    #[should_panic(expected = "z0 dimension mismatch")]
    fn z0_dimension_checked() {
        let mut problem = Averaging { targets: vec![Vector::from(vec![1.0])], rho: 1.0 };
        let admm = ConsensusAdmm::default();
        let _ = admm.run(&mut problem, Vector::zeros(3));
    }
}
