//! Projected-gradient reference solver for [`GroupedQp`](crate::qp::GroupedQp).
//!
//! Slower but conceptually independent of the coordinate-descent solver; the
//! test suite uses it as an oracle to validate coordinate descent, and it
//! doubles as the projection toolbox (non-negative capped simplex) used
//! elsewhere.

use crate::error::OptError;
use crate::qp::GroupedQp;
use plos_linalg::Vector;

/// Projects `x` (in place) onto `{x ≥ 0, Σ x_i ≤ cap}`.
///
/// If clamping at zero already satisfies the cap the clamp is the projection;
/// otherwise the point is projected onto the simplex `{x ≥ 0, Σ x = cap}`
/// with the classic sort-and-threshold algorithm.
///
/// # Panics
///
/// Panics if `cap` is negative or not finite.
pub fn project_capped_simplex(x: &mut [f64], cap: f64) {
    assert!(cap.is_finite() && cap >= 0.0, "cap must be finite and >= 0");
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    let sum: f64 = x.iter().sum();
    if sum <= cap {
        return;
    }
    // Project onto {x >= 0, sum == cap}: find threshold tau with
    // sum(max(x_i - tau, 0)) == cap.
    let mut sorted = x.to_vec();
    sorted.sort_by(|a, b| f64::total_cmp(b, a));
    let mut cumulative = 0.0;
    let mut tau = 0.0;
    for (k, &v) in sorted.iter().enumerate() {
        // plos-lint: allow(D3): prefix sum over the sorted values IS the simplex-projection algorithm; order is the semantics
        cumulative += v;
        let candidate = (cumulative - cap) / (k as f64 + 1.0);
        if sorted.get(k + 1).is_none_or(|&next| next <= candidate) {
            tau = candidate;
            break;
        }
    }
    for v in x.iter_mut() {
        *v = (*v - tau).max(0.0);
    }
}

/// Result of [`solve_projected_gradient`].
#[derive(Debug, Clone)]
pub struct PgSolution {
    /// Final iterate.
    pub gamma: Vector,
    /// Objective value at the final iterate.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
}

/// Solves a [`GroupedQp`] by projected gradient descent with a fixed step
/// from a Lipschitz upper bound (`trace(Q)` majorizes the top eigenvalue).
///
/// Intended as a test oracle: robust, derivative-checked, slow.
///
/// # Errors
///
/// Returns [`OptError::NonFinite`] when the final objective is NaN or
/// infinite (i.e. the problem data contained non-finite entries).
pub fn solve_projected_gradient(
    qp: &GroupedQp,
    max_iters: usize,
    tol: f64,
) -> Result<PgSolution, OptError> {
    let n = qp.dim();
    let mut gamma = Vector::zeros(n);
    // Lipschitz constant of the gradient: λ_max(Q) <= trace(Q) for PSD Q.
    let lipschitz: f64 = (0..n).map(|i| qp.q_entry(i, i)).sum::<f64>().max(1e-12);
    let step = 1.0 / lipschitz;

    let mut iterations = 0;
    for _ in 0..max_iters {
        iterations += 1;
        let grad = qp.gradient(&gamma);
        let mut next = gamma.clone();
        next.axpy(-step, &grad);
        qp.project(&mut next);
        let delta = next.distance(&gamma);
        gamma = next;
        if delta < tol {
            break;
        }
    }
    let objective = qp.objective(&gamma);
    if !objective.is_finite() {
        return Err(OptError::NonFinite { what: "projected-gradient objective" });
    }
    Ok(PgSolution { gamma, objective, iterations })
}

impl GroupedQp {
    /// Gradient `Q·γ − b` of the QP objective.
    pub fn gradient(&self, gamma: &Vector) -> Vector {
        let mut g = self.q_matvec(gamma);
        g -= self.b_ref();
        g
    }

    /// Projects `gamma` (in place) onto the feasible set: coordinates clamped
    /// to `≥ 0` and each group projected onto its capped simplex.
    pub fn project(&self, gamma: &mut Vector) {
        for v in gamma.iter_mut() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        for (members, cap) in self.groups_ref() {
            let mut vals: Vec<f64> = members.iter().map(|&i| gamma[i]).collect();
            project_capped_simplex(&mut vals, *cap);
            for (&i, v) in members.iter().zip(vals) {
                gamma[i] = v;
            }
        }
    }
}

// Crate-internal accessors used by the reference solver; kept out of the main
// public surface of `qp.rs`.
impl GroupedQp {
    pub(crate) fn q_entry(&self, i: usize, j: usize) -> f64 {
        self.q_ref()[(i, j)]
    }
    pub(crate) fn q_matvec(&self, x: &Vector) -> Vector {
        self.q_ref().matvec(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qp::QpSolverOptions;
    use plos_linalg::Matrix;
    use rand::{Rng, SeedableRng};

    #[test]
    fn projection_clamps_when_cap_slack() {
        let mut x = vec![-1.0, 0.5, 0.2];
        project_capped_simplex(&mut x, 10.0);
        assert_eq!(x, vec![0.0, 0.5, 0.2]);
    }

    #[test]
    fn projection_onto_tight_simplex() {
        let mut x = vec![2.0, 2.0];
        project_capped_simplex(&mut x, 1.0);
        assert!((x[0] - 0.5).abs() < 1e-12);
        assert!((x[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn projection_zeroes_small_coordinates() {
        let mut x = vec![3.0, 0.1];
        project_capped_simplex(&mut x, 1.0);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert_eq!(x[1], 0.0);
    }

    #[test]
    fn projection_zero_cap() {
        let mut x = vec![1.0, 2.0];
        project_capped_simplex(&mut x, 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let n = rng.gen_range(1..8);
            let cap = rng.gen_range(0.0..3.0);
            let mut x: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            project_capped_simplex(&mut x, cap);
            let once = x.clone();
            project_capped_simplex(&mut x, cap);
            for (a, b) in once.iter().zip(&x) {
                assert!((a - b).abs() < 1e-12);
            }
            assert!(x.iter().sum::<f64>() <= cap + 1e-9);
            assert!(x.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn pg_agrees_with_coordinate_descent_on_random_qps() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for trial in 0..20 {
            let n = rng.gen_range(2..7);
            // Random PSD Q = AᵀA + small ridge.
            let mut a = Matrix::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = rng.gen_range(-1.0..1.0);
                }
            }
            let mut q = a.transpose().matmul(&a).unwrap();
            q.add_diagonal(0.1);
            let b: Vector = (0..n).map(|_| rng.gen_range(-1.0..2.0)).collect();
            // One group over all variables with a random cap.
            let cap = rng.gen_range(0.1..2.0);
            let qp = GroupedQp::new(q, b, vec![((0..n).collect(), cap)]).unwrap();

            let cd = qp.solve(&QpSolverOptions::default()).unwrap();
            let pg = solve_projected_gradient(&qp, 200_000, 1e-12).unwrap();
            assert!(
                (cd.objective - pg.objective).abs() < 1e-5,
                "trial {trial}: cd={} pg={}",
                cd.objective,
                pg.objective
            );
            assert!(qp.is_feasible(&cd.gamma, 1e-8));
            assert!(qp.is_feasible(&pg.gamma, 1e-8));
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let q = Matrix::from_rows(&[vec![2.0, 0.5], vec![0.5, 1.0]]).unwrap();
        let qp = GroupedQp::new(q, Vector::from(vec![1.0, -0.5]), vec![]).unwrap();
        let x = Vector::from(vec![0.3, 0.7]);
        let g = qp.gradient(&x);
        let h = 1e-6;
        for i in 0..2 {
            let mut xp = x.clone();
            xp[i] += h;
            let mut xm = x.clone();
            xm[i] -= h;
            let fd = (qp.objective(&xp) - qp.objective(&xm)) / (2.0 * h);
            assert!((fd - g[i]).abs() < 1e-5, "coordinate {i}");
        }
    }
}
