//! Error type shared by the fallible optimization drivers.

use plos_linalg::LinalgError;
use std::fmt;

/// Error returned by fallible routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// A shape or domain error surfaced by the linear-algebra layer.
    Linalg(LinalgError),
    /// An input contained NaN or infinite entries where finite values are
    /// required for the solver's convergence guarantees to hold.
    NonFinite {
        /// Which input was non-finite.
        what: &'static str,
    },
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Linalg(e) => write!(f, "{e}"),
            OptError::NonFinite { what } => {
                write!(f, "non-finite values in {what}")
            }
        }
    }
}

impl std::error::Error for OptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OptError::Linalg(e) => Some(e),
            OptError::NonFinite { .. } => None,
        }
    }
}

impl From<LinalgError> for OptError {
    fn from(e: LinalgError) -> Self {
        OptError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<OptError> = vec![
            OptError::Linalg(LinalgError::Singular),
            OptError::NonFinite { what: "warm start" },
        ];
        for c in cases {
            assert!(!format!("{c}").is_empty());
            assert!(!format!("{c:?}").is_empty());
        }
    }

    #[test]
    fn from_linalg_preserves_source() {
        use std::error::Error;
        let e = OptError::from(LinalgError::Singular);
        assert!(e.source().is_some());
    }
}
