// Unit tests assert by panicking; the panic-free gate applies to library
// code only (see [workspace.lints] in the root Cargo.toml).
#![cfg_attr(
    test,
    allow(clippy::unwrap_used, clippy::expect_used, clippy::panic, clippy::indexing_slicing)
)]
//! # PLOS — Personalized Learning in Mobile Sensing Systems
//!
//! Facade crate for the reproduction of *"Towards Personalized Learning in
//! Mobile Sensing Systems"* (Jiang, Li, Su, Miao, Gu, Xu — ICDCS 2018). It
//! re-exports the whole workspace under one roof so applications can depend
//! on a single crate:
//!
//! * [`core`] — the PLOS algorithms: centralized (CCCP + cutting plane + dual
//!   QP) and distributed (consensus ADMM) training, plus the paper's
//!   *All*/*Single*/*Group* baselines and the evaluation harness.
//! * [`sensing`] — synthetic mobile-sensing data: IMU trace generation, the
//!   paper's windowing + feature-extraction pipeline, and the three
//!   evaluation datasets (body-sensor, HAR-like, 2-D Gaussian synthetic).
//! * [`net`] — the simulated distributed runtime: binary codec, message
//!   schema, in-process transport with byte/energy accounting.
//! * [`ckpt`] — versioned binary checkpoints: framed, digest-verified
//!   snapshots of training state with bit-parity resume (`PLOS_CKPT_DIR`).
//! * [`ml`] — classical-ML substrate: linear SVM, k-means, spectral
//!   clustering, LSH, metrics.
//! * [`exec`] — deterministic fork-join runtime: the scoped thread pool the
//!   solver hot paths fan out on (`PLOS_THREADS` override, bit-identical
//!   results across pool sizes).
//! * [`obs`] — zero-dependency telemetry: spans, counters, gauges, and
//!   per-iteration solver trace events, streamed as JSONL when
//!   `PLOS_TRACE=<path>` is set and free (one atomic load) when not.
//! * [`opt`] — optimization substrate: grouped QP solver, cutting-plane,
//!   CCCP, and consensus-ADMM drivers.
//! * [`linalg`] — dense vectors/matrices, Cholesky, Jacobi eigensolver.
//!
//! # Quickstart
//!
//! ```
//! use plos::prelude::*;
//!
//! // Generate the paper's synthetic multi-user dataset (Sec. VI-D) ...
//! let spec = SyntheticSpec { num_users: 4, ..SyntheticSpec::default() };
//! let dataset = generate_synthetic(&spec, 42);
//! // ... mask labels so only 2 users provide 10% labels ...
//! let masked = dataset.mask_labels(&LabelMask::providers(2, 0.10), 7);
//! // ... and train a personalized model per user. Training is fallible
//! // (numerically degenerate cohorts surface as errors, not panics).
//! let model = CentralizedPlos::new(PlosConfig::default()).fit(&masked).expect("training succeeds");
//! assert_eq!(model.num_users(), 4);
//! ```

pub use plos_ckpt as ckpt;
pub use plos_core as core;
pub use plos_exec as exec;
pub use plos_linalg as linalg;
pub use plos_ml as ml;
pub use plos_net as net;
pub use plos_obs as obs;
pub use plos_opt as opt;
pub use plos_sensing as sensing;

/// Commonly used items, re-exported for `use plos::prelude::*`.
pub mod prelude {
    pub use plos_core::baselines::{AllBaseline, GroupBaseline, SingleBaseline};
    pub use plos_core::{
        AdmmResiduals, CentralizedPlos, CheckpointPolicy, DistributedPlos, DistributedReport,
        FaultTolerance, PersonalizedModel, PlosConfig, RetryPolicy, RoundParticipation,
    };
    pub use plos_linalg::{Matrix, Vector};
    pub use plos_net::{DeadLink, FaultPlan};
    pub use plos_sensing::dataset::{LabelMask, MultiUserDataset, UserData};
    pub use plos_sensing::synthetic::{generate_synthetic, SyntheticSpec};
}
