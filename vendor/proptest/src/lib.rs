//! Offline, API-compatible subset of the `proptest` crate.
//!
//! Supports the slice of proptest the PLOS test-suite uses: the
//! [`proptest!`] macro (with an optional `#![proptest_config(..)]` header),
//! range and collection strategies, `prop_assert!`-style assertions, and
//! [`Strategy::prop_map`] / [`Strategy::prop_filter`] combinators.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports the sampled inputs via the
//!   panic message (every generated value is `Debug`-printed) but is not
//!   minimized.
//! * **Deterministic.** Each test function derives its RNG seed from its
//!   own name, so failures reproduce without a persistence file.
//!   `*.proptest-regressions` files are accepted but ignored.

use std::fmt;
use std::ops::Range;

/// Number of cases run per property when no config is given.
pub const DEFAULT_CASES: u32 = 64;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: DEFAULT_CASES }
    }
}

/// The PRNG driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03 }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `usize` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A generator of random values of type `Value`.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this subset samples directly.
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing `pred`, resampling up to a bounded number of
    /// times (mirrors upstream's rejection semantics without the global
    /// rejection budget).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, pred }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples: {}", self.whence)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

// Strategies must compose by reference too (`&strategy` in helper fns).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Strategy modules, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::fmt;
        use std::ops::Range;

        /// Size specification for [`vec`]: a fixed size or a half-open range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange { lo: r.start, hi: r.end }
            }
        }

        /// Strategy producing `Vec`s with element strategy `element` and a
        /// length drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        /// Strategy returned by [`vec`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S>
        where
            S::Value: fmt::Debug,
        {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.size.hi - self.size.lo;
                let len = self.size.lo + if span == 0 { 0 } else { rng.below(span) };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// `use proptest::prelude::*;` — everything a property test needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};

    /// Canonical strategy for a type. Only the handful of types the suite
    /// uses are supported; integers cover their full domain.
    pub fn any<T: crate::Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitive types (used via `any::<T>()`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullRange<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for FullRange<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = FullRange<$t>;

            fn arbitrary() -> Self::Strategy {
                FullRange(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl Strategy for FullRange<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = FullRange<bool>;

    fn arbitrary() -> Self::Strategy {
        FullRange(std::marker::PhantomData)
    }
}

/// Derives a stable 64-bit seed from a test's module path and name.
pub fn seed_from_name(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property; on failure the macro panics with
/// the formatted message (no shrinking in this subset).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its precondition fails. Upstream feeds the
/// rejection budget; this subset just moves to the next case.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Declares property tests. Each `fn name(pat in strategy, ..) { body }`
/// expands to a `#[test]` running `body` over sampled inputs; failures
/// print the sampled inputs. An optional leading
/// `#![proptest_config(expr)]` sets the case count for the whole block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg); $($rest)*);
    };
    (@block ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::new($crate::seed_from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            )));
            for _case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&$strat, &mut rng);)*
                // One immediately-invoked closure per case so
                // `prop_assume!`'s early return skips just this case, not
                // the whole test.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@block (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seed_is_stable() {
        assert_eq!(crate::seed_from_name("a::b"), crate::seed_from_name("a::b"));
        assert_ne!(crate::seed_from_name("a::b"), crate::seed_from_name("a::c"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0..3.0f64, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_size(v in prop::collection::vec(0.0..1.0f64, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in &v {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0usize..5, 4)) {
            prop_assert_eq!(v.len(), 4);
        }

        #[test]
        fn map_and_filter_compose(
            x in (0.0..10.0f64).prop_map(|v| v * 2.0),
            y in (0usize..100).prop_filter("even only", |n| n % 2 == 0),
        ) {
            prop_assert!((0.0..20.0).contains(&x));
            prop_assert_eq!(y % 2, 0);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(b in any::<bool>(), _x in 0u32..7) {
            prop_assert!(b == (b as u8 == 1));
        }
    }
}
