//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable, read-cursor byte
//! buffer), [`BytesMut`] (growable write buffer), and the [`Buf`] /
//! [`BufMut`] accessor traits — exactly the slice of `bytes` 1.x the PLOS
//! wire codec uses. All little-endian accessors match upstream semantics,
//! including panics on underflow (the codec guards every read with an
//! explicit length check first).

use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer with an internal read cursor.
///
/// Reads ([`Buf::get_u8`] etc.) advance the cursor; [`Bytes::slice`] and
/// `Clone` share the underlying allocation.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes { data: Arc::from(Vec::new()), start: 0, end: 0 }
    }

    /// Remaining (unread) length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` if no unread bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        self.data.get(self.start..self.end).unwrap_or(&[])
    }

    /// Copies the unread bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A sub-range view sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds of the unread region.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(range.end <= self.len(), "slice range out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn take_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        let src = self
            .as_slice()
            .get(..N)
            .unwrap_or_else(|| panic!("buffer underflow: need {N}, have {}", self.len()));
        out.copy_from_slice(src);
        self.start += N;
        out
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { data: Arc::from(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// A growable, writable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Written length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Appends raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Read accessors over a byte cursor (implemented by [`Bytes`]).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underflow; callers are expected to check [`Buf::remaining`].
    fn get_u8(&mut self) -> u8;

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u32_le(&mut self) -> u32;

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_u64_le(&mut self) -> u64;

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics on underflow.
    fn get_f64_le(&mut self) -> f64;
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }

    fn get_u8(&mut self) -> u8 {
        self.take_array::<1>()[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_array())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take_array())
    }
}

/// Write accessors (implemented by [`BytesMut`]).
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64);

    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = BytesMut::with_capacity(13);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f64_le(-1.5);
        assert_eq!(w.len(), 13);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 13);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_views_share_data() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(2..5);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        let nested = mid.slice(1..2);
        assert_eq!(nested.as_slice(), &[3]);
        assert_eq!(b.len(), 6, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1, 2]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn reads_advance_cursor_and_to_vec_sees_rest() {
        let mut b = Bytes::from(vec![9, 1, 0, 0, 0]);
        assert_eq!(b.get_u8(), 9);
        assert_eq!(b.to_vec(), vec![1, 0, 0, 0]);
        assert_eq!(b.get_u32_le(), 1);
        assert!(b.is_empty());
    }
}
